/* Reading an uninitialized scalar whose address is never taken:
 * definite undefined behaviour on every path (C11 §6.3.2.1p2).  The
 * definite-assignment dataflow in `cerberus-py lint` flags the read
 * with its source location; the constant out-of-bounds index below it
 * is flagged too. */
int main(void) {
    int x;
    int a[4];
    a[0] = x;          /* read of uninitialized x: definite */
    return a[7];       /* constant index past the array: definite */
}
