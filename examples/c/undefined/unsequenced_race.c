/* Two unsequenced writes to the same scalar: undefined behaviour in
 * every memory object model (C11 §6.5p2).  The static linter proves
 * the conflict without running a single path —
 * `cerberus-py lint` reports it as `definite` and exits nonzero. */
int main(void) {
    int x;
    int y = (x = 1) + (x = 2);
    return y - 3;
}
