/* Unsequenced stores to *distinct* objects: C leaves the evaluation
 * order open, but every order reaches the same state.  The static
 * footprint analysis proves the two sides commute, so
 * `cerberus-py --explore --static-prune` runs exactly one path where
 * plain enumeration walks hundreds of interleavings — and the linter
 * stays silent, because there is no conflict to report. */
int a, b;

int main(void) {
    (a = 1) + (b = 2);
    return a + b - 3;
}
