/* A well-defined tour of the pointer-provenance questions: adjacent
 * objects, one-past pointers, and round-trips through (char *) — all
 * behaviour every memory object model agrees on.  `cerberus-py lint`
 * reports nothing here; `cerberus-py --explore` shows one behaviour
 * under every model. */
#include <stdio.h>

int x = 1, y = 2;

int main(void) {
    int *p = &x;
    char *bytes = (char *)p;          /* char access is always fine */
    int back = *(int *)bytes;         /* round-trip keeps provenance */
    int *q = &y;
    if (p == q)                       /* distinct objects: unequal */
        return 1;
    printf("%d %d\n", back, y);
    return 0;
}
