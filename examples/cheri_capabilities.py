#!/usr/bin/env python3
"""CHERI C under the capability memory model (paper §4).

Reproduces the paper's findings on the pre-fix CHERI implementation:
the pointer-equality bug (addresses compared, metadata ignored), the
``(i & 3u)`` capability-offset masking bug, and the left-biased
provenance rule for integer arithmetic.
"""

from repro.pipeline import run_c

EQUALITY = r'''
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
    int *p = &x + 1;        /* one-past x: same address as &y */
    int *q = &y;
    if (p == q) printf("equal\n");
    else printf("unequal\n");
    return 0;
}
'''

MASKING = r'''
#include <stdio.h>
#include <stdint.h>
int main(void) {
    int x = 1;
    uintptr_t i = (uintptr_t)&x;
    /* Defensive alignment check: works everywhere... except CHERI
       pre-fix, where (i & 3u) is the fat pointer with offset&3 and a
       non-zero base. */
    if ((i & 3u) == 0u) printf("aligned: check passes\n");
    else printf("check FAILS despite zero low bits\n");
    return 0;
}
'''

BOUNDS = r'''
#include <stdio.h>
int main(void) {
    int a[4] = {1, 2, 3, 4};
    int *p = a + 7;         /* out of bounds: construction is fine */
    p = p - 5;              /* back in bounds */
    printf("%d\n", *p);     /* capability check passes */
    return 0;
}
'''

TRAP = r'''
int main(void) {
    int a[4] = {1, 2, 3, 4};
    int *p = a + 7;
    return *p;              /* capability bounds violation: trap */
}
'''


def main() -> None:
    print("1. Pointer equality (the paper's first finding):")
    pre = run_c(EQUALITY, model="cheri")
    fixed = run_c(EQUALITY, model="cheri", exact_equality=True)
    print(f"   pre-fix CHERI (address-only ==): "
          f"{pre.stdout.strip()}")
    print(f"   fixed (CExEq, address+metadata): "
          f"{fixed.stdout.strip()}")

    print("\n2. uintptr_t masking (the (i & 3u) == 0u finding):")
    lp64 = run_c(MASKING, model="provenance")
    cheri = run_c(MASKING, model="cheri")
    print(f"   LP64:  {lp64.stdout.strip()}")
    print(f"   CHERI: {cheri.stdout.strip()}")

    print("\n3. Capability bounds are checked at access, not "
          "construction:")
    ok = run_c(BOUNDS, model="cheri")
    print(f"   transient OOB then deref in-bounds: "
          f"{ok.stdout.strip()!r} (ok)")
    bad = run_c(TRAP, model="cheri")
    print(f"   deref out of bounds: {bad.ub} — {bad.ub_detail}")


if __name__ == "__main__":
    main()
