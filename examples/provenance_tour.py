#!/usr/bin/env python3
"""A tour of the de facto pointer-provenance questions (paper §2).

Runs the paper's flagship examples under the four memory object models
and prints the verdict matrix: where the concrete semantics computes
merrily along, the candidate de facto model applies the DR260
access-time check, and the strict ISO model rejects even more.
"""

from repro.pipeline import run_c
from repro.testsuite import TESTS

MODELS = ("concrete", "provenance", "strict")

SHOWCASE = [
    ("provenance_basic_global_yx",
     "DR260: one-past-the-end store into the adjacent object (§2.1)"),
    ("int_cast_roundtrip",
     "Q5/Q6: uintptr_t round trip keeps provenance"),
    ("inter_object_offset",
     "Q9: the Linux per-CPU-variable idiom (inter-object offset)"),
    ("oob_transient",
     "Q31: transiently out-of-bounds pointer, brought back (§2.2)"),
    ("ptr_copy_userbytes",
     "Q14: user code copies pointer bytes one by one (§2.3)"),
    ("relational_cross_object",
     "Q25: global lock ordering via < on unrelated objects"),
    ("uninit_read",
     "Q48: reading an uninitialised variable (§2.4)"),
    ("char_array_as_heap",
     "Q75: static char array used as an allocation (§2.6)"),
]


def verdict(source: str, model: str) -> str:
    out = run_c(source, model=model)
    if out.status == "ub":
        return f"UB:{out.ub.name}"
    if out.status in ("done", "exit"):
        return f"ok({out.exit_code})"
    return out.status


def main() -> None:
    width = 36
    header = f"{'test':34s}" + "".join(f"{m:>{width}}" for m in MODELS)
    print(header)
    print("-" * len(header))
    for name, blurb in SHOWCASE:
        test = TESTS[name]
        cells = [verdict(test.source, m) for m in MODELS]
        print(f"{name:34s}" + "".join(f"{c:>{width}}" for c in cells))
        print(f"    {blurb}")
    print()
    print("The DR260 example, in detail:")
    out = run_c(TESTS["provenance_basic_global_yx"].source,
                model="concrete")
    print(f"  concrete semantics prints: "
          f"{out.stdout.splitlines()[-1]!r}")
    out = run_c(TESTS["provenance_basic_global_yx"].source,
                model="provenance")
    print(f"  candidate de facto model: {out.ub.name} — "
          f"{out.ub_detail}")


if __name__ == "__main__":
    main()
