#!/usr/bin/env python3
"""Quickstart: run a C program through Cerberus-py.

The pipeline is the paper's Fig. 1: preprocess -> parse (Cabs) ->
desugar (Ail) -> typecheck (Typed Ail) -> elaborate (Core) -> execute
against a memory object model. ``run_c`` does all of it in one call;
``compile_c`` gives you the intermediate artefacts.
"""

from repro.pipeline import compile_c, run_c
from repro.core.pretty import pretty_program

SOURCE = r'''
#include <stdio.h>

int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main(void) {
    for (int i = 0; i < 10; i++)
        printf("%d ", fib(i));
    printf("\n");
    return 0;
}
'''


def main() -> None:
    # One-shot execution under the candidate de facto memory model.
    outcome = run_c(SOURCE, model="provenance")
    print("--- program output " + "-" * 40)
    print(outcome.stdout, end="")
    print(f"--- exit code: {outcome.exit_code}")

    # The same program, inspected mid-pipeline.
    pipeline = compile_c(SOURCE)
    print(f"\nAil functions: "
          f"{[s.name for s in pipeline.ail.functions]}")
    print(f"Core procedures: {list(pipeline.core.procs)}")

    # Undefined behaviour is reported with the ISO clause and source
    # location (paper §5.4).
    bad = run_c("int main(void) { int x = 2147483647; return x + 1; }")
    print(f"\nsigned overflow -> {bad.status}: {bad.ub} "
          f"[ISO {bad.ub.iso}] at {bad.loc}")

    # A slice of the elaborated Core, Fig. 2 concrete syntax.
    small = compile_c("int main(void) { return 1 << 2; }")
    print("\n--- elaborated Core (excerpt) " + "-" * 29)
    text = pretty_program(small.core)
    print("\n".join(text.split("\n")[:24]))


if __name__ == "__main__":
    main()
