#!/usr/bin/env python3
"""Differential validation with the Csmith-like generator (paper §6).

Generates defined-behaviour random C programs together with their
independently computed expected output (the "GCC side" of the paper's
comparison), runs them through Cerberus-py, and reports the agreement
statistics — the analogue of "556 of 561 agree; the other 5 time out".
"""

import time

from repro.csmith import generate_program, validate_programs
from repro.tvc import validate


def main() -> None:
    print("one generated program (seed 42):")
    program = generate_program(42, size=8)
    print("-" * 60)
    print(program.source)
    print("-" * 60)
    print(f"expected output: {program.expected_stdout!r}")

    print("\nvalidating 40 small programs "
          "(paper: 561 small Csmith tests)...")
    start = time.time()
    report = validate_programs(40, size=10, seed_base=100)
    print(f"  {report.summary()}  [{time.time() - start:.1f}s]")

    print("\nvalidating 10 larger programs "
          "(paper: 400 larger tests, with a timeout tail)...")
    start = time.time()
    report = validate_programs(10, size=45, max_steps=400_000,
                               seed_base=200)
    print(f"  {report.summary()}  [{time.time() - start:.1f}s]")

    print("\ncross-model validation (compile once, run every model):")
    start = time.time()
    report = validate_programs(
        10, size=10, seed_base=300,
        models=["concrete", "provenance", "gcc"])
    print(f"  {report.summary()}  [{time.time() - start:.1f}s]")

    print("\ntranslation validation (tvc, paper §6):")
    for src in [
        "int main(void){ int x = 6; int y = 7; return x * y; }",
        "int main(void){ int s = 0; int i = 0; "
        "while (i < 5) { s = s + i; i = i + 1; } return s; }",
        "int main(void){ int d = 0; return 1 / d; }",
    ]:
        r = validate(src)
        print(f"  IR {r.ir_result:24s} Cerberus "
              f"{r.cerberus_behaviours} -> "
              f"{'validated' if r.validated else 'REFUTED'}")


if __name__ == "__main__":
    main()
