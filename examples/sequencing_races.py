#!/usr/bin/env python3
"""Evaluation order, unsequenced races, and exhaustive exploration
(paper §5.6).

Shows the test-oracle mode: Cerberus-py enumerates *all* allowed
executions of an expression with unsequenced operands, and detects
unsequenced races as undefined behaviour.
"""

from repro.pipeline import explore_c, run_c

BOTH_ORDERS = r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) {
    pr('a') + pr('b');      /* indeterminately sequenced calls */
    putchar('\n');
    return 0;
}
'''

RACE = r'''
int main(void) {
    int x = 0;
    int y = (x = 1) + (x = 2);   /* two unsequenced stores: UB */
    return y;
}
'''

CLASSIC = "int main(void) { int x = 0; x = x++; return x; }"

PAPER_EXAMPLE = r'''
#include <stdio.h>
int f(int a, int b) { return a + b; }
int main(void) {
    int w, x = 1, z = 10;
    w = x++ + f(z, 2);      /* the worked example of §5.6 */
    printf("w=%d x=%d\n", w, x);
    return 0;
}
'''


def main() -> None:
    print("1. Exhaustive exploration of both evaluation orders:")
    result = explore_c(BOTH_ORDERS, max_paths=100)
    for behaviour in result.behaviours():
        print(f"   {behaviour}")

    print("\n2. Unsequenced race detection:")
    out = run_c(RACE)
    print(f"   (x=1)+(x=2)  ->  {out.ub} [{out.ub.iso}]")
    out = run_c(CLASSIC)
    print(f"   x = x++      ->  {out.ub} [{out.ub.iso}]")

    print("\n3. The paper's sequencing example w = x++ + f(z,2):")
    result = explore_c(PAPER_EXAMPLE, max_paths=200)
    print(f"   {result.paths_run} paths explored, behaviours: "
          f"{result.behaviours()}")
    print("   (the atomic load/store pair of x++ and the "
          "indeterminately sequenced call body leave the result "
          "deterministic)")


if __name__ == "__main__":
    main()
