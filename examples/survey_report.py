#!/usr/bin/env python3
"""Regenerate the paper's §2 survey and design-space tables."""

from repro.survey import (
    clarity_table, design_space_table, expertise_table,
    survey_question_table,
)
from repro.survey.report import all_survey_refs


def main() -> None:
    print("=" * 70)
    print("Respondent expertise (2015 survey)")
    print("=" * 70)
    print(expertise_table())

    print()
    print("=" * 70)
    print("The design space: 85 questions in 22 categories")
    print("=" * 70)
    print(design_space_table())
    print()
    print(clarity_table())

    for ref in all_survey_refs():
        print()
        print("=" * 70)
        print(survey_question_table(ref))


if __name__ == "__main__":
    main()
