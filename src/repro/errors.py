"""Diagnostics for every pipeline phase.

The paper stresses that the desugaring and typechecking phases "identify
exactly what part of the standard is violated" on failure (§5.1); every
static diagnostic here therefore carries an optional ISO C11 clause
citation (e.g. ``"6.5.7p2"``).
"""

from __future__ import annotations

from typing import Optional

from .source import Loc


class CerberusError(Exception):
    """Base class for all errors raised by the pipeline."""

    phase = "cerberus"

    def __init__(self, message: str, loc: Optional[Loc] = None,
                 iso: Optional[str] = None):
        self.message = message
        self.loc = loc if loc is not None else Loc.unknown()
        self.iso = iso
        super().__init__(self.render())

    def render(self) -> str:
        parts = [f"{self.loc}: {self.phase} error: {self.message}"]
        if self.iso:
            parts.append(f"[ISO C11 §{self.iso}]")
        return " ".join(parts)


class LexError(CerberusError):
    phase = "lexical"


class PreprocessorError(CerberusError):
    phase = "preprocessor"


class ParseError(CerberusError):
    phase = "parse"


class DesugarError(CerberusError):
    """A constraint violation detected while desugaring Cabs to Ail."""

    phase = "desugaring"


class TypeCheckError(CerberusError):
    """A constraint violation detected by the Ail type checker."""

    phase = "typing"


class CoreTypeError(CerberusError):
    """An ill-typed Core program (elaboration is meant to be total and
    well-typing-preserving, so this indicates an internal bug)."""

    phase = "core-typing"


class ElabError(CerberusError):
    phase = "elaboration"


class UnsupportedError(CerberusError):
    """A C feature that is out of Cerberus-py's supported fragment
    (bitfields, VLAs, `goto` into a nested block, ...)."""

    phase = "unsupported"


class InternalError(CerberusError):
    phase = "internal"


class StaticError(CerberusError):
    """An implementation-defined static error surfaced by Core ``error``."""

    phase = "static"
