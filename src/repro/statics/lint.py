"""The definite-UB linter: static diagnostics ahead of evaluation.

A thin client of :class:`.summary.AbsInterp` — the same abstract run
that computes footprint annotations surfaces, through the interpreter's
hooks, every undefined behaviour the analysis can witness statically:
uninitialized-scalar reads (definite-assignment dataflow), constant
out-of-bounds accesses and pointer arithmetic, over-wide/negative
shifts and other constant-foldable ``undef`` guards, null
dereferences, and unsequenced races between sibling ``unseq``
operands (the paper's §3 question).

Severity is ``definite`` — the abstract path to the fault involved no
approximation (every branch constant-resolved, every offset known), so
*every* execution reaching that point exhibits the behaviour — or
``possible`` otherwise.  Since the memory models disagree on which UB
name a given fault surfaces as (e.g. a constant OOB access is
``Access_out_of_bounds`` under concrete/CHERI but
``Access_wrong_provenance`` under the provenance models), a finding
carries the *candidate* name set; the conformance gate in
``tests/test_statics_lint.py`` checks each definite finding against
the golden verdicts of all five models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import ast as K
from ..source import Loc
from .. import ub as UB
from .summary import AbsInterp, AbsState, analyze_program

_SEV_RANK = {"possible": 0, "definite": 1}

# Candidate UB names for a statically-detected OOB access: the models
# disagree on classification (concrete/cheri report the access itself,
# provenance models a provenance violation, strict faults at the
# earlier out-of-bounds arithmetic).
_OOB_NAMES = (
    UB.ACCESS_OUT_OF_BOUNDS.name,
    UB.ACCESS_WRONG_PROVENANCE.name,
    UB.OUT_OF_BOUNDS_POINTER_ARITHMETIC.name,
)


@dataclass(frozen=True)
class Finding:
    """One source-located static diagnostic.

    ``names`` is the candidate UB-name set (any one of which a memory
    model may report for this fault); ``severity`` is ``"definite"``
    (every execution reaching this point exhibits the behaviour) or
    ``"possible"``."""

    kind: str
    names: Tuple[str, ...]
    loc: Loc
    severity: str
    detail: str

    @property
    def definite(self) -> bool:
        return self.severity == "definite"

    def format(self) -> str:
        names = "|".join(self.names)
        return f"{self.loc}: {self.severity}: {self.detail} [{names}]"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "names": list(self.names),
            "loc": str(self.loc),
            "severity": self.severity,
            "detail": self.detail,
        }


class LintInterp(AbsInterp):
    """The findings-collecting client of the summary framework."""

    def __init__(self, program: K.Program, impl=None) -> None:
        super().__init__(program, impl)
        self._found: Dict[tuple, Finding] = {}

    def _emit(self, kind: str, names: Tuple[str, ...], loc: Loc,
              definite: bool, detail: str) -> None:
        severity = "definite" if definite else "possible"
        key = (kind, names, loc)
        prev = self._found.get(key)
        if prev is None or _SEV_RANK[severity] > _SEV_RANK[prev.severity]:
            self._found[key] = Finding(kind, names, loc, severity,
                                       detail)

    def findings(self) -> List[Finding]:
        return sorted(
            self._found.values(),
            key=lambda f: (f.loc.file, f.loc.line, f.loc.col,
                           f.kind, f.names))

    # -- hooks -------------------------------------------------------------

    def on_undef(self, ub: UB.UBName, loc: Loc,
                 st: AbsState) -> None:
        self._emit("undef", (ub.name,), loc, st.definite,
                   ub.description)

    def on_uninit_load(self, base: str, loc: Loc, definite: bool,
                       st: AbsState) -> None:
        self._emit("uninit-read", (UB.READ_UNINITIALISED.name,), loc,
                   definite,
                   "read of an uninitialized object")

    def on_oob(self, base, off, size, loc: Loc, write: bool,
               st: AbsState) -> None:
        what = "store" if write else "load"
        self._emit("oob", _OOB_NAMES, loc, st.definite,
                   f"out-of-bounds {what} at constant offset {off} "
                   f"(object size {self._obj_size(base)})")

    def on_oob_shift(self, base, off, loc: Loc,
                     st: AbsState) -> None:
        self._emit("oob-arith", _OOB_NAMES, loc, st.definite,
                   f"pointer arithmetic to constant offset {off} "
                   f"outside the object (size {self._obj_size(base)})")

    def on_null_access(self, loc: Loc, st: AbsState) -> None:
        self._emit("null-deref", (UB.NULL_POINTER_DEREF.name,), loc,
                   st.definite, "null pointer dereference")

    def on_race(self, e: K.EUnseq, pair, definite: bool,
                st: AbsState) -> None:
        ra, rb = pair
        what = "write/write" if ra.write and rb.write \
            else "read/write"
        self._emit("unseq-race", (UB.UNSEQUENCED_RACE.name,), e.loc,
                   definite,
                   f"unsequenced {what} conflict on object "
                   f"'{ra.base}'")


def lint_program(program: K.Program, impl=None) -> List[Finding]:
    """All static findings for one elaborated Core program, sorted by
    source location.  Best-effort: analysis failure yields no
    findings, never an exception."""
    report = analyze_program(program, impl, interp_cls=LintInterp)
    return list(report.findings)
