"""Bottom-up static action summaries over elaborated Core.

One abstract interpretation of a Core program (entered at ``main``,
inlining direct calls to a bounded depth) drives both clients in this
package: per-``unseq`` footprint/purity annotations for the explorer's
static pre-pruning, and the definite-UB findings of :mod:`.lint`.

The abstract value domain mirrors the evaluator's value domain with a
flat ⊤: mathematical-integer/boolean/ctype constants, ``Specified`` /
``Unspecified`` wrappers, tuples, function designators, the null
pointer, and — the load-bearing case — *object-relative pointers*
``("ptr", base_sym, offset)`` whose base is the Core symbol an
``EScope`` create (or a global definition) bound.  Every memory action
whose target resolves to such a pointer contributes an
object-relative byte range to the enclosing summaries; everything
else degrades to ⊤ exactly where the dynamic machinery would treat it
as dependent-on-everything.

See the package docstring for the lattice, cache-keying and soundness
contract.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import ast as K
from ..ctypes.types import Array, CType, Floating, Integer, Pointer
from ..source import Loc
from .. import ub as UB
from ..ub import UndefinedBehaviour

# Bump when the analysis algorithm changes in a way that affects
# cached annotations or findings (part of the store record key).
STATICS_VERSION = 1

TOP = ("top",)
UNIT = ("unit",)
UNSPEC = ("unspec",)
NULL = ("null",)

# Native procedures that terminate the program: control never returns,
# so an opaque call to one ends the abstract path instead of
# havocking it.
_NORETURN = {"exit", "abort", "_Exit", "__cerberus_assert_fail"}


# --------------------------------------------------------------------------
# Summaries
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ARange:
    """One object-relative byte range touched by a subterm.

    ``base`` is the Core symbol of the object (an ``EScope`` create or
    a global); ``off``/``size`` are byte offsets within it, ``None``
    meaning statically unknown (⊤ — resolved to the whole object at
    run time).  ``definite`` says the access executes on every run
    that reaches the enclosing term; ``region`` says it happened
    inside an indeterminately-sequenced function call (exempt from
    the unsequenced-race UB, §5.6 point 6)."""

    base: Optional[str]
    off: Optional[int]
    size: Optional[int]
    write: bool
    definite: bool = True
    region: bool = False


@dataclass(frozen=True)
class StaticSummary:
    """The action summary of one subterm (see package docstring for
    the lattice)."""

    ranges: Tuple[ARange, ...] = ()
    barrier: bool = False
    fault: bool = False
    actions: bool = False


class _Sink:
    """A mutable summary under construction; every notification
    reaches all sinks on the stack, so summaries nest for free."""

    __slots__ = ("ranges", "barrier", "fault", "actions")

    def __init__(self) -> None:
        self.ranges: List[ARange] = []
        self.barrier = False
        self.fault = False
        self.actions = False

    def summary(self) -> StaticSummary:
        ranges = self.ranges
        if len(ranges) > 16:
            # Collapse pathological range lists per (base, write):
            # whole-object hulls keep the pairwise test linear.
            merged = {}
            for r in ranges:
                key = (r.base, r.write)
                prev = merged.get(key)
                merged[key] = ARange(
                    r.base, None, None, r.write,
                    r.definite and (prev is None or prev.definite),
                    r.region and (prev is None or prev.region))
            ranges = list(merged.values())
        return StaticSummary(tuple(ranges), self.barrier, self.fault,
                             self.actions)


def ranges_may_overlap(a: ARange, b: ARange) -> bool:
    """Whether two ranges may touch a common byte (⊤ components are
    assumed to overlap; distinct known bases never do)."""
    if a.base is None or b.base is None:
        return True
    if a.base != b.base:
        return False
    if a.off is None or a.size is None or b.off is None \
            or b.size is None:
        return True
    return a.off < b.off + b.size and b.off < a.off + a.size


def summaries_conflict(a: StaticSummary, b: StaticSummary) -> bool:
    """Whether two sibling summaries may contain a conflicting pair
    (overlapping ranges, at least one a write)."""
    for ra in a.ranges:
        for rb in b.ranges:
            if not (ra.write or rb.write):
                continue
            if ranges_may_overlap(ra, rb):
                return True
    return False


def _commutes(children: List[StaticSummary]) -> bool:
    """Whether all interleavings of the children are equivalent to the
    sequential order: no barrier child, pairwise non-conflicting, and
    at most one child that may fault (two possibly-faulting children
    could surface either UB depending on schedule)."""
    if len(children) < 2:
        return False
    if any(c.barrier for c in children):
        return False
    if sum(1 for c in children if c.fault) > 1:
        return False
    for i in range(len(children)):
        for j in range(i + 1, len(children)):
            if summaries_conflict(children[i], children[j]):
                return False
    return True


def _child_info(s: StaticSummary):
    """The runtime-facing classification of one unseq child:
    ``None`` (⊤ — trust nothing), ``"pure"`` (completes without an
    action), or a tuple of ``(base, off, size, write)`` ranges whose
    bases are all known."""
    if s.barrier or s.fault:
        return None
    if not s.actions:
        return "pure"
    out = []
    for r in s.ranges:
        if r.base is None:
            return None
        out.append((r.base, r.off, r.size, r.write))
    return tuple(out)


def _merge_child_info(a, b):
    if a is None or b is None:
        return None
    if a == "pure" and b == "pure":
        return "pure"
    if a == "pure" or b == "pure":
        # One context pure, another performing actions: keep the
        # union of ranges (a pure execution touches a subset).
        return a if b == "pure" else b
    return tuple(dict.fromkeys(a + b))


def _merge_unseq_info(a, b):
    """Join annotations of one ``unseq`` node reached in several
    calling contexts — the merged claim must hold for all of them."""
    if a is None or b is None:
        return None
    ac, ach = a
    bc, bch = b
    if len(ach) != len(bch):
        return None
    return (ac and bc,
            tuple(_merge_child_info(x, y) for x, y in zip(ach, bch)))


# --------------------------------------------------------------------------
# Runtime resolution (consumed by the evaluator / POR scheduler)
# --------------------------------------------------------------------------

def resolve_hull(info, env, global_env, model):
    """Resolve one annotated child classification against the live
    environment: ``(addr, size, is_write)`` — the convex hull over the
    child's ranges, a superset of its next action's footprint — or
    ``(0, 0, False)`` for a pure child, or ``None`` when any base
    fails to resolve.  A zero-size footprint conflicts with nothing
    (matching :data:`~repro.dynamics.explore.por.PURE`)."""
    if info is None:
        return None
    if info == "pure":
        return (0, 0, False)
    lo = None
    hi = None
    write = False
    for base, off, size, wr in info:
        v = env.get(base)
        if v is None:
            v = global_env.get(base)
        ptr = getattr(v, "ptr", None)
        if ptr is None:
            return None
        if off is None or size is None:
            alloc = model.allocations.get(ptr.prov)
            if alloc is None:
                return None
            a, s = alloc.base, alloc.size
        else:
            a, s = ptr.addr + off, size
        lo = a if lo is None else min(lo, a)
        hi = a + s if hi is None else max(hi, a + s)
        write = write or wr
    if lo is None:
        return (0, 0, False)
    return (lo, hi - lo, write)


# --------------------------------------------------------------------------
# Abstract state
# --------------------------------------------------------------------------

# Cell states: "uninit" | "partial" | "init" | "maybe" | ("val", av)
_CELL_RANK = {"uninit": 0, "partial": 1, "init": 2, "maybe": 3}


def _join_cell(a, b):
    if a == b:
        return a
    at = a if isinstance(a, str) else "val"
    bt = b if isinstance(b, str) else "val"
    if at == "val" and bt == "val":
        return "init"
    if "uninit" in (at, bt) or "maybe" in (at, bt):
        # Joining a possibly-uninitialized side with anything else
        # leaves the whole object possibly uninitialized.
        return "maybe" if at != bt else a
    if "partial" in (at, bt):
        return "partial"
    return "init"


def _join_av(a, b):
    if a == b:
        return a
    if isinstance(a, tuple) and isinstance(b, tuple) and a and b:
        if a[0] == "ptr" and b[0] == "ptr" and a[1] == b[1]:
            return ("ptr", a[1], a[2] if a[2] == b[2] else None)
        if a[0] == "spec" and b[0] == "spec":
            return ("spec", _join_av(a[1], b[1]))
        if a[0] == "tuple" and b[0] == "tuple" \
                and len(a[1]) == len(b[1]):
            return ("tuple", tuple(_join_av(x, y)
                                   for x, y in zip(a[1], b[1])))
    return TOP


class AbsState:
    """The threaded dataflow state: per-object cells, definiteness of
    the current path, reachability, seen-uninit flag, and pending
    ``run`` jumps (label -> joined (args, state))."""

    __slots__ = ("cells", "definite", "reachable", "uninit_seen",
                 "jumps")

    def __init__(self) -> None:
        self.cells: Dict[str, object] = {}
        self.definite = True
        self.reachable = True
        self.uninit_seen = False
        self.jumps: Dict[str, tuple] = {}

    def copy(self) -> "AbsState":
        st = AbsState.__new__(AbsState)
        st.cells = dict(self.cells)
        st.definite = self.definite
        st.reachable = self.reachable
        st.uninit_seen = self.uninit_seen
        st.jumps = dict(self.jumps)
        return st

    def absorb(self, other: "AbsState") -> None:
        """In-place join with a sibling branch's exit state."""
        self.uninit_seen = self.uninit_seen or other.uninit_seen
        for label, rec in other.jumps.items():
            self.jumps[label] = _join_jump(self.jumps.get(label), rec)
        if not other.reachable:
            return
        if not self.reachable:
            self.cells = other.cells
            self.definite = other.definite
            self.reachable = True
            return
        cells = {}
        for key in set(self.cells) | set(other.cells):
            a = self.cells.get(key)
            b = other.cells.get(key)
            if a is None or b is None:
                cells[key] = a if b is None else b
            else:
                cells[key] = _join_cell(a, b)
        self.cells = cells
        self.definite = self.definite and other.definite

    def havoc(self, readonly=()) -> None:
        for key, cell in list(self.cells.items()):
            if key in readonly:
                continue
            # An opaque callee may overwrite but cannot un-initialize.
            self.cells[key] = "init" if cell in ("init", "partial") \
                or not isinstance(cell, str) else _join_cell(cell,
                                                             "init")


def _join_jump(a, b):
    if a is None:
        return b
    if b is None:
        return a
    aargs, ast_ = a
    bargs, bst = b
    args = tuple(_join_av(x, y) for x, y in zip(aargs, bargs))
    st = ast_.copy()
    st.absorb(bst)
    return (args, st)


class _Budget(Exception):
    """Raised when the per-program analysis step budget is exhausted;
    findings so far are kept, annotations are discarded (a partial
    walk may have missed a context that would degrade a join)."""


@dataclass
class StaticsReport:
    """The result of one whole-program analysis."""

    findings: List[object] = field(default_factory=list)
    unseq_info: Dict[int, object] = field(default_factory=dict)
    annotated: int = 0
    complete: bool = True


# --------------------------------------------------------------------------
# The abstract interpreter
# --------------------------------------------------------------------------

class AbsInterp:
    """One abstract execution of a Core program from ``main``.

    Control flow mirrors the evaluator: sequencing threads the state,
    branches fork and join it, ``save``/``run`` iterate to a small
    bound then havoc, direct calls inline to a bounded depth and
    anything else is opaque (barrier + havoc).  Subclass hooks receive
    findings-grade events; the sink stack collects action summaries
    for every enclosing ``unseq`` child."""

    MAX_STEPS = 300_000
    CALL_DEPTH = 8
    LOOP_ITERS = 3

    def __init__(self, program: K.Program,
                 impl=None) -> None:
        from ..dynamics.evaluator import Evaluator   # lazy: no cycle
        self.program = program
        self.impl = impl if impl is not None else program.impl
        self.tags = program.tags
        native = Evaluator.__new__(Evaluator)
        native.program = program
        native.impl = self.impl
        native.tags = self.tags
        self._native = native
        self.obj_types: Dict[str, CType] = {}
        self._readonly: set = set()
        self._sinks: List[_Sink] = []
        self._region_depth = 0
        self._callstack: List[str] = []
        self._ret_stack: List[list] = []
        self._steps = self.MAX_STEPS
        self._unseq_info: Dict[int, object] = {}
        self._sizeof_cache: Dict[CType, Optional[int]] = {}

    # -- driving ----------------------------------------------------------

    def analyze(self) -> StaticsReport:
        report = StaticsReport()
        st = AbsState()
        try:
            self._setup_globals(st)
            main = self.program.procs.get(self.program.main)
            if main is not None:
                args = [TOP] * len(main.params)
                self._inline(main, args, st, region=False)
            report.unseq_info = dict(self._unseq_info)
            report.annotated = len(self._unseq_info)
        except _Budget:
            report.complete = False
            report.unseq_info = {}
        except Exception:
            # The analysis is best-effort: any internal surprise
            # yields an empty (sound) report, never a crash.
            report.complete = False
            report.unseq_info = {}
            report.findings = []
            return report
        report.findings = self.findings()
        return report

    def findings(self) -> List[object]:
        return []

    def _tick(self) -> None:
        self._steps -= 1
        if self._steps <= 0:
            raise _Budget()

    def _setup_globals(self, st: AbsState) -> None:
        for g in self.program.globs:
            ty = g.qty.ty
            self.obj_types[g.name] = ty
            if isinstance(ty, Integer):
                st.cells[g.name] = ("val", ("spec", ("int", 0)))
            else:
                st.cells[g.name] = "init"
        for g in self.program.globs:
            if g.init is not None:
                self.eval_expr(g.init, {}, st)
        for g in self.program.globs:
            if g.readonly:
                self._readonly.add(g.name)

    # -- hooks (overridden by the lint client) ----------------------------

    def on_undef(self, ub: UB.UBName, loc: Loc, st: AbsState) -> None:
        pass

    def on_uninit_load(self, base: str, loc: Loc, definite: bool,
                       st: AbsState) -> None:
        pass

    def on_oob(self, base, off, size, loc: Loc, write: bool,
               st: AbsState) -> None:
        pass

    def on_oob_shift(self, base, off, loc: Loc, st: AbsState) -> None:
        pass

    def on_null_access(self, loc: Loc, st: AbsState) -> None:
        pass

    def on_race(self, e: K.EUnseq, pair, definite: bool,
                st: AbsState) -> None:
        pass

    # -- sink notifications ----------------------------------------------

    def _note_range(self, base, off, size, write, st) -> None:
        if self._sinks:
            r = ARange(base, off, size, write,
                       definite=st.definite,
                       region=self._region_depth > 0)
            for s in self._sinks:
                s.ranges.append(r)
                s.actions = True

    def _note_barrier(self) -> None:
        for s in self._sinks:
            s.barrier = True
            s.actions = True

    def _note_fault(self) -> None:
        for s in self._sinks:
            s.fault = True

    # -- helpers ----------------------------------------------------------

    def _sizeof(self, ty) -> Optional[int]:
        if not isinstance(ty, CType):
            return None
        if ty not in self._sizeof_cache:
            try:
                self._sizeof_cache[ty] = self.impl.sizeof(ty, self.tags)
            except Exception:
                self._sizeof_cache[ty] = None
        return self._sizeof_cache[ty]

    def _obj_size(self, base: Optional[str]) -> Optional[int]:
        if base is None:
            return None
        return self._sizeof(self.obj_types.get(base))

    @staticmethod
    def _ptr_parts(av):
        """``(base, off)`` of a (possibly Specified-wrapped) abstract
        pointer, ``("null", None)`` for null, else ``(None, None)``."""
        if isinstance(av, tuple):
            if av[0] == "spec":
                return AbsInterp._ptr_parts(av[1])
            if av[0] == "ptr":
                return av[1], av[2]
            if av[0] == "null":
                return "null", None
        return None, None

    @contextmanager
    def _possible(self, st: AbsState):
        saved = st.definite
        st.definite = False
        try:
            yield
        finally:
            st.definite = saved and st.definite

    # -- abstract values of runtime constants -----------------------------

    def absof(self, value) -> tuple:
        from ..dynamics import values as V
        if isinstance(value, V.VInteger):
            return ("int", value.ival.value)
        if isinstance(value, V.VBool):
            return ("bool", value.b)
        if isinstance(value, V.VCtype):
            return ("ctype", value.ty)
        if isinstance(value, V.VSpecified):
            return ("spec", self.absof(value.value))
        if isinstance(value, V.VUnspecified):
            return UNSPEC
        if isinstance(value, V.VTuple):
            return ("tuple", tuple(self.absof(v)
                                   for v in value.items))
        if isinstance(value, V.VUnit):
            return UNIT
        if isinstance(value, V.VFunction):
            return ("fn", value.name)
        if isinstance(value, V.VPointer):
            if value.ptr.addr == 0:
                return NULL
            meta = value.ptr.meta
            if isinstance(meta, tuple) and meta \
                    and meta[0] == "func":
                return ("fn", meta[1])
            return TOP
        return TOP

    def concretize(self, av):
        from ..dynamics import values as V
        from ..memory.values import IntegerValue
        if not isinstance(av, tuple):
            return None
        if av[0] == "int":
            return V.VInteger(IntegerValue(av[1]))
        if av[0] == "bool":
            return V.TRUE if av[1] else V.FALSE
        if av[0] == "ctype":
            return V.VCtype(av[1])
        if av[0] == "spec":
            inner = self.concretize(av[1])
            return None if inner is None else V.VSpecified(inner)
        if av[0] == "tuple":
            items = [self.concretize(x) for x in av[1]]
            if any(i is None for i in items):
                return None
            return V.VTuple(tuple(items))
        if av[0] == "unit":
            return V.UNIT
        return None

    # -- pattern matching --------------------------------------------------

    def match_abs(self, pat: K.Pattern, av):
        """Three-valued abstract match: ``("yes"|"no"|"maybe",
        bindings)``."""
        if isinstance(pat, K.PatWild):
            return "yes", {}
        if isinstance(pat, K.PatSym):
            return "yes", {pat.name: av}
        assert isinstance(pat, K.PatCtor)
        ctor = pat.ctor
        known = isinstance(av, tuple) and av[0] != "top"
        if ctor == "Specified":
            if known and av[0] == "spec":
                return self.match_abs(pat.args[0], av[1])
            if known and av[0] in ("unspec",):
                return "no", {}
            if known and av[0] in ("ptr", "null", "fn", "int",
                                   "bool"):
                # A bare (unwrapped) value never matches Specified
                # patterns in elaborated code; be conservative.
                return "maybe", self._top_bindings(pat)
            return "maybe", self._top_bindings(pat)
        if ctor == "Unspecified":
            if known and av[0] == "unspec":
                return "yes", self._top_bindings(pat)
            if known and av[0] == "spec":
                return "no", {}
            return "maybe", self._top_bindings(pat)
        if ctor == "Tuple":
            if known and av[0] == "tuple" \
                    and len(av[1]) == len(pat.args):
                kind = "yes"
                bindings: Dict[str, object] = {}
                for sub, sav in zip(pat.args, av[1]):
                    k, b = self.match_abs(sub, sav)
                    if k == "no":
                        return "no", {}
                    if k == "maybe":
                        kind = "maybe"
                    bindings.update(b)
                return kind, bindings
            return "maybe", self._top_bindings(pat)
        if ctor in ("True", "False"):
            if known and av[0] == "bool":
                return ("yes", {}) if av[1] == (ctor == "True") \
                    else ("no", {})
            return "maybe", {}
        if ctor == "Unit":
            return "yes", {}
        return "maybe", self._top_bindings(pat)

    def _top_bindings(self, pat: K.Pattern) -> Dict[str, object]:
        out: Dict[str, object] = {}

        def walk(p):
            if isinstance(p, K.PatSym):
                out[p.name] = TOP
            elif isinstance(p, K.PatCtor):
                for sub in p.args:
                    walk(sub)
        walk(pat)
        return out

    # -- pure evaluation ---------------------------------------------------

    def eval_pure(self, pe: K.Pexpr, env: Dict[str, object],
                  st: AbsState):
        self._tick()
        if isinstance(pe, K.PSym):
            v = env.get(pe.name)
            if v is not None:
                return v
            if pe.name in self.obj_types:
                return ("ptr", pe.name, 0)
            if pe.name in self.program.procs:
                return ("fn", pe.name)
            return TOP
        if isinstance(pe, K.PVal):
            return self.absof(pe.value)
        if isinstance(pe, K.PImpl):
            value = self.program.impl_constants.get(pe.name)
            return TOP if value is None else self.absof(value)
        if isinstance(pe, K.PUndef):
            self._note_fault()
            self.on_undef(pe.ub, pe.loc, st)
            if st.definite:
                st.reachable = False
            return TOP
        if isinstance(pe, K.PError):
            self._note_fault()
            if st.definite:
                st.reachable = False
            return TOP
        if isinstance(pe, K.PCtor):
            return self._ctor(pe, env, st)
        if isinstance(pe, K.PCase):
            return self._case(pe.scrutinee, pe.branches, env, st,
                              self.eval_pure)
        if isinstance(pe, K.PArrayShift):
            return self._array_shift(pe, env, st)
        if isinstance(pe, K.PMemberShift):
            return self._member_shift(pe, env, st)
        if isinstance(pe, K.PNot):
            v = self.eval_pure(pe.operand, env, st)
            if isinstance(v, tuple) and v[0] == "bool":
                return ("bool", not v[1])
            return TOP
        if isinstance(pe, K.PBinop):
            return self._binop(pe, env, st)
        if isinstance(pe, K.PLet):
            bound = self.eval_pure(pe.bound, env, st)
            _, bindings = self.match_abs(pe.pat, bound)
            env2 = dict(env)
            env2.update(bindings)
            return self.eval_pure(pe.body, env2, st)
        if isinstance(pe, K.PIf):
            cond = self.eval_pure(pe.cond, env, st)
            if isinstance(cond, tuple) and cond[0] == "bool":
                return self.eval_pure(pe.then if cond[1] else pe.els,
                                      env, st)
            with self._possible(st):
                a = self.eval_pure(pe.then, env, st)
                b = self.eval_pure(pe.els, env, st)
            return _join_av(a, b)
        if isinstance(pe, K.PCall):
            return self._pure_call(pe, env, st)
        return TOP

    def _ctor(self, pe: K.PCtor, env, st):
        ctor = pe.ctor
        if ctor == "Specified":
            return ("spec", self.eval_pure(pe.args[0], env, st))
        if ctor == "Unspecified":
            self.eval_pure(pe.args[0], env, st)
            return UNSPEC
        if ctor == "Tuple":
            return ("tuple", tuple(self.eval_pure(a, env, st)
                                   for a in pe.args))
        for a in pe.args:
            self.eval_pure(a, env, st)
        if ctor == "True":
            return ("bool", True)
        if ctor == "False":
            return ("bool", False)
        if ctor == "Unit":
            return UNIT
        return TOP

    def _case(self, scrutinee, branches, env, st, eval_branch):
        scrut = self.eval_pure(scrutinee, env, st)
        live = []
        for pat, body in branches:
            kind, bindings = self.match_abs(pat, scrut)
            if kind == "no":
                continue
            live.append((kind, bindings, body))
            if kind == "yes":
                break
        if not live:
            return TOP
        if len(live) == 1 and live[0][0] == "yes":
            _, bindings, body = live[0]
            env2 = dict(env)
            env2.update(bindings)
            return eval_branch(body, env2, st)
        result = None
        exits = []
        base_st = st
        for _, bindings, body in live:
            env2 = dict(env)
            env2.update(bindings)
            branch_st = base_st.copy()
            branch_st.definite = False
            v = eval_branch(body, env2, branch_st)
            result = v if result is None else _join_av(result, v)
            exits.append(branch_st)
        merged = exits[0]
        for other in exits[1:]:
            merged.absorb(other)
        st.cells = merged.cells
        st.reachable = merged.reachable
        st.uninit_seen = merged.uninit_seen
        st.jumps = merged.jumps
        # A forked branch can never make the path *more* definite.
        st.definite = st.definite and merged.definite
        return result if result is not None else TOP

    def _array_shift(self, pe: K.PArrayShift, env, st):
        ptr = self.eval_pure(pe.ptr, env, st)
        idx = self.eval_pure(pe.index, env, st)
        base, off = self._ptr_parts(ptr)
        elem = self._sizeof(pe.elem_ty)
        if base is None or base == "null":
            self._note_fault()
            return TOP
        if off is None or elem is None or not (
                isinstance(idx, tuple) and idx[0] == "int"):
            self._note_fault()
            return ("ptr", base, None)
        new_off = off + idx[1] * elem
        objsize = self._obj_size(base)
        if objsize is None:
            self._note_fault()
        elif not (0 <= new_off <= objsize):
            # One-past-the-end is fine for the shift itself; beyond
            # it the strict model faults at the shift (§6.5.6).
            self._note_fault()
            self.on_oob_shift(base, new_off, pe.loc, st)
        return ("ptr", base, new_off)

    def _member_shift(self, pe: K.PMemberShift, env, st):
        ptr = self.eval_pure(pe.ptr, env, st)
        base, off = self._ptr_parts(ptr)
        if base is None or base == "null":
            self._note_fault()
            return TOP
        delta: Optional[int]
        try:
            # field_layout resolves the tag's own kind (struct members
            # at their laid-out offsets, union members all at 0).
            delta = self.impl.field_layout(pe.tag, pe.member,
                                           self.tags).offset
        except Exception:
            delta = None
        if off is None or delta is None:
            return ("ptr", base, None)
        return ("ptr", base, off + delta)

    def _binop(self, pe: K.PBinop, env, st):
        op = pe.op
        a = self.eval_pure(pe.lhs, env, st)
        if op in ("/\\", "\\/"):
            if isinstance(a, tuple) and a[0] == "bool":
                if op == "/\\" and not a[1]:
                    return ("bool", False)
                if op == "\\/" and a[1]:
                    return ("bool", True)
                return self.eval_pure(pe.rhs, env, st)
            self.eval_pure(pe.rhs, env, st)
            return TOP
        b = self.eval_pure(pe.rhs, env, st)
        if isinstance(a, tuple) and isinstance(b, tuple):
            if a[0] == "int" and b[0] == "int":
                ia, ib = a[1], b[1]
                if op in ("==", "!=", "<", "<=", ">", ">="):
                    table = {"==": ia == ib, "!=": ia != ib,
                             "<": ia < ib, "<=": ia <= ib,
                             ">": ia > ib, ">=": ia >= ib}
                    return ("bool", table[op])
                try:
                    return ("int", self._native._int_math(op, ia, ib,
                                                          pe.loc))
                except UndefinedBehaviour as exc:
                    self._note_fault()
                    self.on_undef(exc.ub, pe.loc, st)
                    if st.definite:
                        st.reachable = False
                    return TOP
                except Exception:
                    return TOP
            if a[0] == "bool" and b[0] == "bool":
                if op == "==":
                    return ("bool", a[1] == b[1])
                if op == "!=":
                    return ("bool", a[1] != b[1])
        return TOP

    def _pure_call(self, pe: K.PCall, env, st):
        name = pe.name
        fun = self.program.funs.get(name)
        args = [self.eval_pure(a, env, st) for a in pe.args]
        if fun is not None:
            if name in self._callstack \
                    or len(self._callstack) >= self.CALL_DEPTH:
                return TOP
            self._callstack.append(name)
            try:
                env2 = dict(zip(fun.params, args))
                return self.eval_pure(fun.body, env2, st)
            finally:
                self._callstack.pop()
        values = [self.concretize(a) for a in args]
        if any(v is None for v in values):
            return TOP
        try:
            return self.absof(self._native._native_pure(name, values,
                                                        pe))
        except UndefinedBehaviour as exc:
            self._note_fault()
            self.on_undef(exc.ub, pe.loc, st)
            if st.definite:
                st.reachable = False
            return TOP
        except Exception:
            return TOP

    # -- effectful evaluation ----------------------------------------------

    def eval_expr(self, e: K.Expr, env: Dict[str, object],
                  st: AbsState):
        self._tick()
        if not st.reachable:
            return TOP
        if isinstance(e, K.EPure):
            return self.eval_pure(e.pe, env, st)
        if isinstance(e, K.EAction):
            return self._do_action(e.action, env, st)
        if isinstance(e, K.ECase):
            return self._case(e.scrutinee, e.branches, env, st,
                              self.eval_expr)
        if isinstance(e, K.ELet):
            bound = self.eval_pure(e.bound, env, st)
            _, bindings = self.match_abs(e.pat, bound)
            env2 = dict(env)
            env2.update(bindings)
            return self.eval_expr(e.body, env2, st)
        if isinstance(e, K.EIf):
            cond = self.eval_pure(e.cond, env, st)
            if isinstance(cond, tuple) and cond[0] == "bool":
                return self.eval_expr(e.then if cond[1] else e.els,
                                      env, st)
            a_st = st.copy()
            a_st.definite = False
            b_st = st.copy()
            b_st.definite = False
            a = self.eval_expr(e.then, env, a_st)
            b = self.eval_expr(e.els, env, b_st)
            a_st.absorb(b_st)
            st.cells = a_st.cells
            st.reachable = a_st.reachable
            st.uninit_seen = a_st.uninit_seen
            st.jumps = a_st.jumps
            st.definite = st.definite and a_st.definite
            return _join_av(a, b)
        if isinstance(e, K.ESkip):
            return UNIT
        if isinstance(e, K.EProc):
            args = [self.eval_pure(a, env, st) for a in e.args]
            return self._call(e.name, args, st, region=False)
        if isinstance(e, K.ECcall):
            fn = self.eval_pure(e.fn, env, st)
            args = [self.eval_pure(a, env, st) for a in e.args]
            if isinstance(fn, tuple) and fn[0] == "spec":
                fn = fn[1]
            if isinstance(fn, tuple) and fn[0] == "fn":
                return self._call(fn[1], args, st, region=True)
            return self._opaque("<indirect>", st)
        if isinstance(e, K.EUnseq):
            return self._unseq(e, env, st)
        if isinstance(e, (K.EWseq, K.ESseq)):
            v1 = self.eval_expr(e.first, env, st)
            _, bindings = self.match_abs(e.pat, v1)
            env2 = dict(env)
            env2.update(bindings)
            return self.eval_expr(e.second, env2, st)
        if isinstance(e, K.EAtomicSeq):
            v1 = self._do_action(e.first, env, st)
            env2 = dict(env)
            env2[e.sym] = v1
            self._do_action(e.second, env2, st)
            return v1
        if isinstance(e, (K.EIndet, K.EBound)):
            return self.eval_expr(e.body, env, st)
        if isinstance(e, K.ENd):
            return self._nd(e, env, st)
        if isinstance(e, K.ESave):
            return self._save(e, env, st)
        if isinstance(e, K.ERun):
            args = tuple(self.eval_pure(a, env, st) for a in e.args)
            snap = st.copy()
            snap.jumps = {}
            st.jumps[e.label] = _join_jump(st.jumps.get(e.label),
                                           (args, snap))
            st.reachable = False
            return TOP
        if isinstance(e, K.EPar):
            self._note_barrier()
            for sub in e.exprs:
                branch = st.copy()
                branch.definite = False
                self.eval_expr(sub, env, branch)
                st.uninit_seen = st.uninit_seen or branch.uninit_seen
            st.havoc(self._readonly)
            return TOP
        if isinstance(e, K.EWait):
            self.eval_pure(e.thread, env, st)
            self._note_barrier()
            st.havoc(self._readonly)
            return TOP
        if isinstance(e, K.EReturn):
            v = self.eval_pure(e.pe, env, st)
            if self._ret_stack:
                snap = st.copy()
                snap.jumps = {}
                self._ret_stack[-1].append((v, snap))
            st.reachable = False
            return TOP
        if isinstance(e, K.EScope):
            return self._scope(e, env, st)
        if isinstance(e, K.EVlaCreate):
            self.eval_pure(e.size, env, st)
            self._note_barrier()
            return TOP
        return TOP

    # -- memory actions ----------------------------------------------------

    def _const_ctype(self, pe, env, st) -> Optional[CType]:
        av = self.eval_pure(pe, env, st)
        if isinstance(av, tuple) and av[0] == "ctype":
            return av[1]
        return None

    def _do_action(self, a: K.Action, env, st):
        kind = a.kind
        if kind in ("create", "alloc"):
            for arg in a.args:
                self.eval_pure(arg, env, st)
            self._note_barrier()
            return TOP
        if kind == "kill":
            base, _ = self._ptr_parts(
                self.eval_pure(a.args[0], env, st))
            if base not in (None, "null"):
                st.cells.pop(base, None)
            self._note_barrier()
            return UNIT
        if kind == "store":
            cty = self._const_ctype(a.args[0], env, st)
            ptr = self.eval_pure(a.args[1], env, st)
            value = self.eval_pure(a.args[2], env, st)
            size = self._sizeof(cty)
            self._access(ptr, size, True, a.loc, st, value)
            return UNIT
        if kind == "load":
            cty = self._const_ctype(a.args[0], env, st)
            ptr = self.eval_pure(a.args[1], env, st)
            size = self._sizeof(cty)
            return self._access(ptr, size, False, a.loc, st, None)
        if kind == "rmw":
            cty = self._const_ctype(a.args[0], env, st) \
                if a.args else None
            ptr = self.eval_pure(a.args[1], env, st) \
                if len(a.args) > 1 else TOP
            size = self._sizeof(cty)
            v = self._access(ptr, size, False, a.loc, st, None)
            self._access(ptr, size, True, a.loc, st, TOP)
            return v
        if kind == "fence":
            self._note_barrier()
            return UNIT
        self._note_barrier()
        return TOP

    def _access(self, ptr_av, size, write, loc, st, value):
        """One load/store: range note, bounds/null/uninit checks and
        cell updates.  Returns the loaded abstract value."""
        base, off = self._ptr_parts(ptr_av)
        if base == "null":
            self._note_fault()
            self.on_null_access(loc, st)
            if st.definite:
                st.reachable = False
            return TOP
        objsize = self._obj_size(base)
        in_bounds = False
        if off is not None and size is not None \
                and objsize is not None:
            if 0 <= off and off + size <= objsize:
                in_bounds = True
            else:
                self._note_fault()
                self.on_oob(base, off, size, loc, write, st)
                self._note_range(base, off, size, write, st)
                if st.definite:
                    st.reachable = False
                return TOP
        if base is None or not in_bounds:
            self._note_fault()
        self._note_range(base, off, size, write, st)
        if write:
            self._store_cell(base, off, size, objsize, value, st)
            return UNIT
        return self._load_cell(base, off, size, objsize, in_bounds,
                               loc, st)

    def _store_cell(self, base, off, size, objsize, value, st):
        if base is None:
            st.havoc(self._readonly)
            return
        cell = st.cells.get(base)
        if off == 0 and size is not None and size == objsize:
            st.cells[base] = ("val", value)
        elif cell in ("uninit", "partial"):
            st.cells[base] = "partial"
        elif cell == "maybe":
            st.cells[base] = "maybe"
        else:
            st.cells[base] = "init"

    def _load_cell(self, base, off, size, objsize, in_bounds, loc,
                   st):
        if base is None:
            self._note_fault()
            return TOP
        cell = st.cells.get(base, "init")
        if cell == "uninit":
            self._note_fault()
            self.on_uninit_load(base, loc, st.definite
                                and not st.uninit_seen, st)
            st.uninit_seen = True
            return UNSPEC
        if cell in ("partial", "maybe"):
            self._note_fault()
            self.on_uninit_load(base, loc, False, st)
            return TOP
        if not in_bounds:
            self._note_fault()
        if isinstance(cell, tuple) and cell[0] == "val" \
                and off == 0 and size is not None \
                and size == objsize:
            return cell[1]
        return TOP

    # -- structured control ------------------------------------------------

    def _scope(self, e: K.EScope, env, st):
        env2 = dict(env)
        for sc in e.creates:
            self.obj_types[sc.sym] = sc.ty
            st.cells[sc.sym] = "uninit"
            if sc.readonly:
                self._readonly.add(sc.sym)
            env2[sc.sym] = ("ptr", sc.sym, 0)
            self._note_barrier()
        v = self.eval_expr(e.body, env2, st)
        for sc in e.creates:
            st.cells.pop(sc.sym, None)
            self._note_barrier()
        return v

    def _nd(self, e: K.ENd, env, st):
        result = None
        exits = []
        for sub in e.exprs:
            branch = st.copy()
            branch.definite = False
            v = self.eval_expr(sub, env, branch)
            result = v if result is None else _join_av(result, v)
            exits.append(branch)
        merged = exits[0]
        for other in exits[1:]:
            merged.absorb(other)
        st.cells = merged.cells
        st.reachable = merged.reachable
        st.uninit_seen = merged.uninit_seen
        st.jumps = merged.jumps
        st.definite = st.definite and merged.definite
        return result if result is not None else TOP

    def _save(self, e: K.ESave, env, st):
        names = [name for name, _ in e.params]
        params = tuple(self.eval_pure(d, env, st)
                       for _, d in e.params)
        result = None
        for iteration in range(self.LOOP_ITERS + 1):
            env2 = dict(env)
            env2.update(zip(names, params))
            if iteration > 0:
                st.definite = False
            v = self.eval_expr(e.body, env2, st)
            if st.reachable:
                result = v if result is None else _join_av(result, v)
            jump = st.jumps.pop(e.label, None)
            if jump is None:
                if not st.reachable and result is None:
                    # Every path left via an outer label or return.
                    return TOP
                st.reachable = st.reachable or result is not None
                return result if result is not None else TOP
            args, jst = jump
            jst.jumps = dict(st.jumps)
            jst.uninit_seen = jst.uninit_seen or st.uninit_seen
            st.cells = jst.cells
            st.reachable = True
            st.uninit_seen = jst.uninit_seen
            st.jumps = jst.jumps
            st.definite = st.definite and jst.definite
            new_params = tuple(_join_av(p, a)
                               for p, a in zip(params, args))
            if iteration >= self.LOOP_ITERS:
                st.havoc(self._readonly)
                st.definite = False
                params = tuple(TOP for _ in params)
            elif new_params == params and iteration > 0:
                st.havoc(self._readonly)
                st.definite = False
                params = new_params
            else:
                params = new_params
        # Bounded iteration exhausted without quiescing: give up on
        # precision for whatever follows.
        st.jumps.pop(e.label, None)
        st.havoc(self._readonly)
        st.definite = False
        st.reachable = True
        return TOP

    # -- calls -------------------------------------------------------------

    def _call(self, name: str, args, st, region: bool):
        proc = self.program.procs.get(name)
        if proc is None or proc.variadic \
                or name in self._callstack \
                or len(self._callstack) >= self.CALL_DEPTH:
            return self._opaque(name, st)
        return self._inline(proc, args, st, region)

    def _inline(self, proc: K.ProcDef, args, st, region: bool):
        self._callstack.append(proc.name)
        self._ret_stack.append([])
        if region:
            self._region_depth += 1
        try:
            env = dict(zip(proc.params, args))
            v = self.eval_expr(proc.body, env, st)
        finally:
            if region:
                self._region_depth -= 1
            rets = self._ret_stack.pop()
            self._callstack.pop()
        result = v if st.reachable else None
        for rv, rst in rets:
            result = rv if result is None else _join_av(result, rv)
            st.absorb(rst)
        return result if result is not None else TOP

    def _opaque(self, name: str, st: AbsState):
        self._note_barrier()
        self._note_fault()
        if name in _NORETURN:
            st.reachable = False
            return TOP
        st.havoc(self._readonly)
        return TOP

    # -- unseq -------------------------------------------------------------

    def _unseq(self, e: K.EUnseq, env, st):
        vals = []
        childs: List[StaticSummary] = []
        for child in e.exprs:
            sink = _Sink()
            self._sinks.append(sink)
            try:
                vals.append(self.eval_expr(child, env, st))
            finally:
                self._sinks.pop()
            summary = sink.summary()
            childs.append(summary)
            # Propagate into enclosing sinks (nested unseqs).
            for outer in self._sinks:
                outer.ranges.extend(summary.ranges)
                outer.barrier = outer.barrier or summary.barrier
                outer.fault = outer.fault or summary.fault
                outer.actions = outer.actions or summary.actions
        info = (_commutes(childs),
                tuple(_child_info(c) for c in childs))
        key = id(e)
        if key in self._unseq_info:
            info = _merge_unseq_info(self._unseq_info[key], info)
        self._unseq_info[key] = info
        self._check_race(e, childs, st)
        return ("tuple", tuple(vals))

    def _check_race(self, e: K.EUnseq, childs, st):
        best = None     # (definite, pair)
        for i in range(len(childs)):
            for j in range(i + 1, len(childs)):
                for ra in childs[i].ranges:
                    for rb in childs[j].ranges:
                        if not (ra.write or rb.write):
                            continue
                        if ra.region or rb.region:
                            continue    # indet-sequenced: exempt
                        if ra.base is None or rb.base is None:
                            continue    # too weak a claim to report
                        if ra.base != rb.base:
                            continue
                        precise = (ra.off is not None
                                   and rb.off is not None
                                   and ra.size is not None
                                   and rb.size is not None)
                        if precise and not (
                                ra.off < rb.off + rb.size
                                and rb.off < ra.off + ra.size):
                            continue
                        definite = (precise and ra.definite
                                    and rb.definite and st.definite)
                        if best is None or (definite
                                            and not best[0]):
                            best = (definite, (ra, rb))
        if best is not None:
            self.on_race(e, best[1], best[0], st)
            if best[0]:
                st.reachable = False


# --------------------------------------------------------------------------
# Whole-program entry points
# --------------------------------------------------------------------------

def _walk_exprs(e: K.Expr, out: List[K.EUnseq]) -> None:
    stack = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, K.EUnseq):
            out.append(node)
            stack.extend(reversed(node.exprs))
        elif isinstance(node, (K.ECase,)):
            for _, body in reversed(node.branches):
                stack.append(body)
        elif isinstance(node, (K.ELet, K.EIf)):
            if isinstance(node, K.EIf):
                stack.append(node.els)
                stack.append(node.then)
            else:
                stack.append(node.body)
        elif isinstance(node, (K.EWseq, K.ESseq)):
            stack.append(node.second)
            stack.append(node.first)
        elif isinstance(node, (K.EIndet, K.EBound, K.ESave,
                               K.EScope)):
            stack.append(node.body)
        elif isinstance(node, (K.ENd, K.EPar)):
            stack.extend(reversed(node.exprs))


def collect_unseqs(program: K.Program) -> List[K.EUnseq]:
    """Every ``unseq`` node of a program in one deterministic DFS
    order — the positional basis for serialized annotation tables."""
    out: List[K.EUnseq] = []
    for g in program.globs:
        if g.init is not None:
            _walk_exprs(g.init, out)
    for proc in program.procs.values():
        _walk_exprs(proc.body, out)
    return out


def analyze_program(program: K.Program, impl=None,
                    interp_cls=None) -> StaticsReport:
    """Run the abstract interpretation once and attach the resulting
    ``_static_unseq`` annotations to the program's ``unseq`` nodes."""
    cls = interp_cls if interp_cls is not None else AbsInterp
    report = cls(program, impl).analyze()
    for node in collect_unseqs(program):
        info = report.unseq_info.get(id(node))
        if info is not None:
            node._static_unseq = info           # type: ignore[attr-defined]
    program._statics_annotated = True           # type: ignore[attr-defined]
    return report


def annotate_program(program: K.Program, impl=None) -> StaticsReport:
    """Public alias of :func:`analyze_program` (footprint client)."""
    return analyze_program(program, impl)


def ensure_annotated(program: K.Program) -> None:
    """Annotate once per program object (the explorer's entry)."""
    if not getattr(program, "_statics_annotated", False):
        analyze_program(program)


def serialize_unseq_info(program: K.Program,
                         report: StaticsReport) -> List[object]:
    """The positional annotation table for store caching."""
    return [report.unseq_info.get(id(node))
            for node in collect_unseqs(program)]


def apply_annotations(program: K.Program,
                      table: List[object]) -> bool:
    """Re-attach a cached annotation table; ``False`` (and no-op) on
    shape mismatch (stale cache)."""
    nodes = collect_unseqs(program)
    if len(nodes) != len(table):
        return False
    for node, info in zip(nodes, table):
        if info is not None:
            node._static_unseq = (
                info[0], tuple(
                    c if c in (None, "pure")
                    else tuple(tuple(r) for r in c)
                    for c in info[1]))          # type: ignore[attr-defined]
    program._statics_annotated = True           # type: ignore[attr-defined]
    return True
