"""Static analyses over elaborated Core terms (a new layer between
elaboration and dynamics).

The paper's elaboration was designed so that semantic questions about C
become questions about a small typed IR; until now this repo only ever
*executed* Core.  This package adds a bottom-up **summary framework**
(:mod:`.summary`) — one abstract interpretation of a Core program that
produces per-subterm *action summaries* — and two clients:

1. **Footprint/purity analysis** (:func:`summary.annotate_program`):
   every ``unseq`` node is annotated with a per-child classification —
   ``pure`` (completes without performing a memory action), a tuple of
   object-relative byte ranges ``(base_sym, offset, size, is_write)``
   with ``None`` standing for ⊤ (statically unknown offset/extent), or
   ``None`` for ⊤ outright (barrier or possibly-faulting child).  The
   explorer consumes these annotations (``static_prune=True``): a
   choice point whose candidates are statically pure or pairwise
   non-conflicting is *never branched at all* — the evaluator runs the
   children sequentially — and where branching remains, the oracle's
   sleep sets are seeded from the precomputed footprints instead of
   being derived post hoc from the event log.

2. **Definite-UB linter** (:mod:`.lint`, ``cerberus-py lint``):
   definite-assignment dataflow for uninitialized-scalar reads,
   constant out-of-bounds and over-wide-shift detection (the
   elaboration's own constant-foldable ``undef`` guards make the
   latter free), and static unsequenced-race detection, each emitted
   as a source-located diagnostic with ``definite``/``possible``
   severity.

**Summary lattice.**  A child summary is ``(ranges, barrier, fault,
actions)`` ordered by component-wise inclusion: the bottom element is
the pure summary (no ranges, no flags); adding a range, or raising
``barrier`` (allocation lifetime change, I/O, opaque call — anything
observably ordered) or ``fault`` (a reachable ``undef``, an
uninitialized or unprovably in-bounds access), moves strictly up; ⊤ is
``barrier`` (trusted for nothing).  Range offsets form the usual flat
constant lattice (``None`` = ⊤, resolved at run time to the whole
object via the live allocation).  Joins happen at control-flow merges
and when the same ``unseq`` node is reached in several calling
contexts.

**Cache keying.**  Analysis results (the per-``unseq`` annotation
table, serialized positionally over a deterministic DFS enumeration of
``unseq`` nodes, plus the lint findings) are cached in the
:class:`~repro.farm.store.ArtifactStore` under the ``"statics"``
record kind, keyed alongside compiled artifacts by ``(source,
repr(impl), name, STATICS_VERSION)`` — the same content-addressing
discipline as compiled Core, so a stale analysis can never outlive the
artifact it describes.

**Soundness contract.**  Static pre-pruning only ever *removes*
interleavings that the dynamic sleep-set machinery would also have had
to recognise as covered re-orderings: a statically-commuting ``unseq``
satisfies pairwise non-conflict of over-approximated footprints, has
no barrier child and at most one possibly-faulting child, so every
interleaving is Mazurkiewicz-equivalent to the sequential order the
evaluator picks; a static sleep seed uses a convex hull ⊇ the child's
next action, so wake-ups fire no later than with exact footprints.
Hence *static prune ⊆ dynamic sleep-set prune* extended with
statically-certain knowledge, and ``distinct()`` behaviour sets are
byte-identical with the feature on or off (asserted over the full
golden suite in ``tests/test_statics_lint.py``), with equal-or-fewer
paths explored.
"""

from .summary import (          # noqa: F401
    ARange, StaticSummary, StaticsReport, STATICS_VERSION,
    analyze_program, annotate_program, apply_annotations,
    collect_unseqs, ensure_annotated, resolve_hull, serialize_unseq_info,
)
from .lint import Finding, lint_program     # noqa: F401

__all__ = [
    "ARange", "StaticSummary", "StaticsReport", "STATICS_VERSION",
    "Finding", "analyze_program", "annotate_program",
    "apply_annotations", "collect_unseqs", "ensure_annotated",
    "lint_program", "resolve_hull", "serialize_unseq_info",
]
