"""Csmith-like differential testing (paper §6 validation)."""

from .generator import GeneratedProgram, generate_program
from .reference import validate_programs, ValidationReport

__all__ = ["GeneratedProgram", "generate_program", "validate_programs",
           "ValidationReport"]
