"""A Csmith-style random generator of *defined-behaviour* C programs
(paper §6: validation against Csmith tests).

Like Csmith, the generator only emits programs free of undefined and
unspecified behaviour: all arithmetic is unsigned or guarded, shifts are
masked, divisions guarded against zero, array indices reduced modulo the
array length, and loops strictly bounded. Unlike Csmith, it *executes
the program as it generates it* against a Python mirror state, so every
generated program comes with its independently computed expected output
— the role GCC plays in the paper's comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


@dataclass
class GeneratedProgram:
    seed: int
    source: str
    expected_stdout: str
    statements: int


class _Gen:
    """Generates statements while mirroring their effect in Python."""

    def __init__(self, rng: random.Random, size: int):
        self.rng = rng
        self.size = size
        self.lines: List[str] = []
        self.globals: Dict[str, int] = {}
        self.global_arrays: Dict[str, List[int]] = {}
        self.locals: Dict[str, int] = {}
        self.out: List[str] = []
        self.checksum = 0
        self._tmp = 0

    # -- helpers ------------------------------------------------------------

    def fresh(self, base: str) -> str:
        self._tmp += 1
        return f"{base}{self._tmp}"

    def all_scalars(self) -> List[str]:
        return list(self.globals) + list(self.locals)

    def read(self, name: str) -> int:
        if name in self.locals:
            return self.locals[name]
        return self.globals[name]

    def write(self, name: str, value: int) -> None:
        value &= _MASK32
        if name in self.locals:
            self.locals[name] = value
        else:
            self.globals[name] = value

    # -- expressions -----------------------------------------------------------

    def expr(self, depth: int = 0) -> Tuple[str, int]:
        """Generate an unsigned-int expression; returns (text, value)."""
        rng = self.rng
        choice = rng.random()
        if depth > 3 or choice < 0.25:
            value = rng.randrange(0, 1 << 31)
            return f"{value}u", value
        if choice < 0.5 and self.all_scalars():
            name = rng.choice(self.all_scalars())
            return name, self.read(name)
        if choice < 0.6 and self.global_arrays:
            name = rng.choice(list(self.global_arrays))
            arr = self.global_arrays[name]
            idx_text, idx = self.expr(depth + 1)
            reduced = idx % len(arr)
            return (f"{name}[({idx_text}) % {len(arr)}u]",
                    arr[reduced])
        a_text, a = self.expr(depth + 1)
        b_text, b = self.expr(depth + 1)
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>",
                         "/", "%"])
        if op == "+":
            return f"({a_text} + {b_text})", (a + b) & _MASK32
        if op == "-":
            return f"({a_text} - {b_text})", (a - b) & _MASK32
        if op == "*":
            return f"({a_text} * {b_text})", (a * b) & _MASK32
        if op == "&":
            return f"({a_text} & {b_text})", a & b
        if op == "|":
            return f"({a_text} | {b_text})", a | b
        if op == "^":
            return f"({a_text} ^ {b_text})", a ^ b
        if op == "<<":
            return (f"({a_text} << (({b_text}) & 31u))",
                    (a << (b & 31)) & _MASK32)
        if op == ">>":
            return (f"({a_text} >> (({b_text}) & 31u))",
                    a >> (b & 31))
        if op == "/":
            return (f"(({b_text}) != 0u ? ({a_text}) / ({b_text}) "
                    f": 1u)", (a // b) if b else 1)
        return (f"(({b_text}) != 0u ? ({a_text}) % ({b_text}) : "
                f"({a_text}))", (a % b) if b else a)

    def condition(self) -> Tuple[str, bool]:
        a_text, a = self.expr(2)
        b_text, b = self.expr(2)
        op = self.rng.choice(["<", ">", "<=", ">=", "==", "!="])
        table = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b,
                 "==": a == b, "!=": a != b}
        return f"({a_text}) {op} ({b_text})", table[op]

    # -- statements ---------------------------------------------------------------

    def emit(self, text: str, indent: int) -> None:
        self.lines.append("    " * indent + text)

    def statement(self, indent: int, budget: int) -> int:
        """Generate one statement; returns remaining budget."""
        rng = self.rng
        kind = rng.random()
        if kind < 0.40 or budget <= 1:
            # assignment
            if not self.all_scalars():
                return budget
            name = rng.choice(self.all_scalars())
            text, value = self.expr()
            self.emit(f"{name} = {text};", indent)
            self.write(name, value)
            return budget - 1
        if kind < 0.55 and self.global_arrays:
            name = rng.choice(list(self.global_arrays))
            arr = self.global_arrays[name]
            idx_text, idx = self.expr(2)
            val_text, val = self.expr()
            reduced = idx % len(arr)
            self.emit(f"{name}[({idx_text}) % {len(arr)}u] = "
                      f"{val_text};", indent)
            arr[reduced] = val & _MASK32
            return budget - 1
        if kind < 0.75:
            # if/else: both branches generated; mirror follows the
            # actually-taken branch by re-simulating (we generate the
            # not-taken branch against a scratch copy of the state).
            cond_text, taken = self.condition()
            self.emit(f"if ({cond_text}) {{", indent)
            budget -= 1
            saved = (dict(self.globals),
                     {k: list(v) for k, v in
                      self.global_arrays.items()},
                     dict(self.locals), self.checksum, list(self.out))
            n = rng.randint(1, 2)
            for _ in range(n):
                budget = self.statement(indent + 1, budget)
            then_state = (dict(self.globals),
                          {k: list(v) for k, v in
                           self.global_arrays.items()},
                          dict(self.locals), self.checksum,
                          list(self.out))
            # restore, generate else against real-or-scratch
            (self.globals, self.global_arrays, self.locals,
             self.checksum, self.out) = \
                (dict(saved[0]), {k: list(v) for k, v in
                                  saved[1].items()}, dict(saved[2]),
                 saved[3], list(saved[4]))
            self.emit("} else {", indent)
            for _ in range(rng.randint(1, 2)):
                budget = self.statement(indent + 1, budget)
            self.emit("}", indent)
            if taken:
                (self.globals, self.global_arrays, self.locals,
                 self.checksum, self.out) = \
                    (then_state[0], then_state[1], then_state[2],
                     then_state[3], then_state[4])
            return budget
        if kind < 0.9:
            # bounded for loop over a fresh counter
            name = self.fresh("i")
            count = rng.randint(1, 6)
            target = rng.choice(self.all_scalars()) \
                if self.all_scalars() else None
            if target is None:
                return budget
            text, value = self.expr(2)
            # Hoist the step expression: inside the loop it would be
            # re-evaluated against mutated state, desynchronising the
            # mirror.
            step = self.fresh("step")
            self.emit(f"unsigned int {step} = {text};", indent)
            self.emit(f"for (unsigned int {name} = 0u; {name} < "
                      f"{count}u; {name}++) {{", indent)
            self.emit(f"{target} = {target} + {step} + {name};",
                      indent + 1)
            self.emit("}", indent)
            acc = self.read(target)
            for i in range(count):
                acc = (acc + value + i) & _MASK32
            self.write(target, acc)
            return budget - 1
        # checksum print
        if self.all_scalars():
            name = rng.choice(self.all_scalars())
            self.emit(f'printf("%u\\n", {name});', indent)
            self.out.append(f"{self.read(name)}\n")
        return budget - 1

    # -- whole program ----------------------------------------------------------------

    def program(self) -> Tuple[str, str]:
        rng = self.rng
        header = ["#include <stdio.h>", ""]
        for i in range(rng.randint(2, 5)):
            name = f"g{i}"
            value = rng.randrange(0, 1 << 31)
            self.globals[name] = value
            header.append(f"unsigned int {name} = {value}u;")
        for i in range(rng.randint(0, 2)):
            name = f"arr{i}"
            length = rng.randint(2, 8)
            values = [rng.randrange(0, 1 << 31) for _ in range(length)]
            self.global_arrays[name] = values
            vals = ", ".join(f"{v}u" for v in values)
            header.append(f"unsigned int {name}[{length}] = "
                          f"{{ {vals} }};")
        header.append("")
        header.append("int main(void) {")
        for i in range(rng.randint(1, 3)):
            name = f"l{i}"
            value = rng.randrange(0, 1 << 31)
            self.locals[name] = value
            self.lines.append(f"    unsigned int {name} = {value}u;")
        budget = self.size
        while budget > 0:
            budget = self.statement(1, budget)
        # final checksum over everything
        acc_terms = []
        acc = 0
        for name in sorted(self.globals):
            acc_terms.append(name)
            acc = (acc + self.globals[name]) & _MASK32
        for name in sorted(self.locals):
            acc_terms.append(name)
            acc = (acc + self.locals[name]) & _MASK32
        for name, arr in sorted(self.global_arrays.items()):
            for i, v in enumerate(arr):
                acc_terms.append(f"{name}[{i}]")
                acc = (acc + v) & _MASK32
        expr = " + ".join(acc_terms) if acc_terms else "0u"
        self.lines.append(f'    printf("checksum = %u\\n", {expr});')
        self.out.append(f"checksum = {acc}\n")
        self.lines.append("    return 0;")
        self.lines.append("}")
        return ("\n".join(header + self.lines) + "\n",
                "".join(self.out))


def generate_program(seed: int, size: int = 12) -> GeneratedProgram:
    """Generate a (program, expected output) pair.

    ``size`` is a statement budget; the paper's "small tests" map to
    the default, its 40-600-line "larger tests" to sizes of 40+.
    """
    rng = random.Random(seed)
    gen = _Gen(rng, size)
    source, expected = gen.program()
    return GeneratedProgram(seed, source, expected,
                            statements=size)
