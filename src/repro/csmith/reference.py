"""Differential validation harness (paper §6).

Runs generated programs through the full Cerberus-py pipeline and
compares against the generator's independently computed expected output
— the analogue of the paper's GCC comparison ("Of their 561 Csmith
tests, Cerberus currently gives the same result as GCC for 556; the
other 5 time-out").

The corpus is reproducible by construction — an explicit ``seeds``
list, or ``range(seed_base, seed_base + count)`` — so sharded farm
campaign workers (``jobs=``/``store=``/``shard=``, backed by
:mod:`repro.farm.campaign`) partition exactly the same programs
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CerberusError
from ..pipeline import run_many
from .generator import GeneratedProgram, generate_program


@dataclass
class ValidationReport:
    total: int = 0
    agree: int = 0
    disagree: int = 0
    timeout: int = 0
    failed: int = 0
    disagreements: List[int] = field(default_factory=list)  # seeds
    failures: List[int] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.total} tests: {self.agree} agree, "
                f"{self.timeout} time out, {self.disagree} disagree, "
                f"{self.failed} fail")


def classify_outcomes(program: GeneratedProgram,
                      outcomes: Dict[str, object]) -> str:
    """Compare one program's per-model outcomes against the
    generator's mirror: ``"agree"`` | ``"timeout"`` | ``"disagree"``.
    Every model must reproduce the expected output to count as
    agreement (the cross-model differential mode)."""
    if any(o.status == "timeout" for o in outcomes.values()):
        return "timeout"
    if all(o.status in ("done", "exit") and
           o.stdout == program.expected_stdout and
           (o.exit_code or 0) == 0
           for o in outcomes.values()):
        return "agree"
    return "disagree"


def resolve_seeds(count: Optional[int],
                  seeds: Optional[Sequence[int]],
                  seed_base: int) -> List[int]:
    """The corpus as an explicit, reproducible seed list."""
    if seeds is not None:
        return list(seeds)
    if count is None:
        raise ValueError("validate_programs needs count or seeds=")
    return [seed_base + i for i in range(count)]


def validate_programs(count: Optional[int] = None, size: int = 12,
                      model: str = "concrete",
                      max_steps: int = 300_000,
                      seed_base: int = 1000,
                      models: Optional[List[str]] = None,
                      seeds: Optional[Sequence[int]] = None,
                      jobs: int = 1,
                      store=None,
                      shard: Optional[Tuple[int, int]] = None
                      ) -> ValidationReport:
    """Generate the corpus and compare Cerberus-py's output against
    the reference.

    With ``models`` (a list of memory object models) each program is
    translated once and the compiled artifact executed under every
    model — all must reproduce the reference output to count as
    agreement.  ``seeds`` names the corpus explicitly (otherwise
    ``seed_base``/``count``); ``jobs``, ``store``, and ``shard`` route
    the sweep through the farm (parallel workers, persistent artifact
    store, deterministic corpus partitioning)."""
    model_list = list(models) if models else [model]
    seed_list = resolve_seeds(count, seeds, seed_base)
    if jobs > 1 or store is not None or shard is not None:
        from ..farm.campaign import csmith_campaign
        report, _ = csmith_campaign(
            seeds=seed_list, size=size, models=model_list, jobs=jobs,
            store=store, shard=shard or (0, 1), max_steps=max_steps)
        return report
    report = ValidationReport()
    for seed in seed_list:
        program = generate_program(seed, size)
        report.total += 1
        try:
            outcomes = run_many(program.source, models=model_list,
                                max_steps=max_steps)
        except CerberusError:
            report.failed += 1
            report.failures.append(seed)
            continue
        category = classify_outcomes(program, outcomes)
        if category == "timeout":
            report.timeout += 1
        elif category == "agree":
            report.agree += 1
        else:
            report.disagree += 1
            report.disagreements.append(seed)
    return report
