"""Differential validation harness (paper §6).

Runs generated programs through the full Cerberus-py pipeline and
compares against the generator's independently computed expected output
— the analogue of the paper's GCC comparison ("Of their 561 Csmith
tests, Cerberus currently gives the same result as GCC for 556; the
other 5 time-out").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import CerberusError
from ..pipeline import run_many
from .generator import GeneratedProgram, generate_program


@dataclass
class ValidationReport:
    total: int = 0
    agree: int = 0
    disagree: int = 0
    timeout: int = 0
    failed: int = 0
    disagreements: List[int] = field(default_factory=list)  # seeds
    failures: List[int] = field(default_factory=list)

    def summary(self) -> str:
        return (f"{self.total} tests: {self.agree} agree, "
                f"{self.timeout} time out, {self.disagree} disagree, "
                f"{self.failed} fail")


def validate_programs(count: int, size: int = 12,
                      model: str = "concrete",
                      max_steps: int = 300_000,
                      seed_base: int = 1000,
                      models: Optional[List[str]] = None
                      ) -> ValidationReport:
    """Generate ``count`` programs and compare Cerberus-py's output
    against the reference.

    With ``models`` (a list of memory object models) each program is
    translated once and the compiled artifact executed under every
    model — all must reproduce the reference output to count as
    agreement (the cross-model differential mode)."""
    model_list = list(models) if models else [model]
    report = ValidationReport()
    for i in range(count):
        seed = seed_base + i
        program = generate_program(seed, size)
        report.total += 1
        try:
            outcomes = run_many(program.source, models=model_list,
                                max_steps=max_steps)
        except CerberusError:
            report.failed += 1
            report.failures.append(seed)
            continue
        if any(o.status == "timeout" for o in outcomes.values()):
            report.timeout += 1
        elif all(o.status in ("done", "exit") and
                 o.stdout == program.expected_stdout and
                 (o.exit_code or 0) == 0
                 for o in outcomes.values()):
            report.agree += 1
        else:
            report.disagree += 1
            report.disagreements.append(seed)
    return report
