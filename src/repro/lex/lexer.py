"""The clean-slate C lexer (translation phases 1-3 of ISO C11 §5.1.1.2).

Handles line splicing (backslash-newline), comment removal, and the
production of preprocessing tokens: identifiers, pp-numbers, character
constants, string literals and punctuators (including digraphs).
"""

from __future__ import annotations

from typing import List

from ..errors import LexError
from ..source import Loc, SourceFile
from .tokens import DIGRAPHS, PUNCTUATORS, Token, TokenKind

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

_SIMPLE_ESCAPES = {
    "'": 0x27, '"': 0x22, "?": 0x3F, "\\": 0x5C,
    "a": 0x07, "b": 0x08, "f": 0x0C, "n": 0x0A,
    "r": 0x0D, "t": 0x09, "v": 0x0B,
}


class Lexer:
    """Lexes one :class:`SourceFile` into a list of pp-tokens.

    Line splices are resolved by tracking a parallel "offset map" so
    locations still point into the original text.
    """

    def __init__(self, source: SourceFile):
        self.source = source
        # Phase 2: delete backslash-newline pairs, keeping an offset map.
        chars: List[str] = []
        offsets: List[int] = []
        text = source.text
        i = 0
        n = len(text)
        while i < n:
            if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                i += 2
                continue
            if (text[i] == "\\" and i + 2 < n and text[i + 1] == "\r"
                    and text[i + 2] == "\n"):
                i += 3
                continue
            chars.append(text[i])
            offsets.append(i)
            i += 1
        self.text = "".join(chars)
        self._offsets = offsets
        self.pos = 0

    # -- helpers ------------------------------------------------------------

    def _loc(self, pos: int) -> Loc:
        if pos >= len(self._offsets):
            return self.source.loc_of_offset(len(self.source.text))
        return self.source.loc_of_offset(self._offsets[pos])

    def _error(self, message: str, pos: int, iso: str = "6.4") -> LexError:
        return LexError(message, self._loc(pos), iso=iso)

    def _peek(self, ahead: int = 0) -> str:
        p = self.pos + ahead
        return self.text[p] if p < len(self.text) else ""

    # -- tokenisation --------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Produce the pp-token stream, with NEWLINE tokens retained (the
        preprocessor is line-oriented) and a final EOF token."""
        out: List[Token] = []
        at_line_start = True
        had_space = False
        text = self.text
        n = len(text)
        while self.pos < n:
            ch = text[self.pos]
            start = self.pos
            if ch == "\n":
                out.append(Token(TokenKind.NEWLINE, "\n", self._loc(start)))
                self.pos += 1
                at_line_start = True
                had_space = False
                continue
            if ch in " \t\r\f\v":
                self.pos += 1
                had_space = True
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.pos < n and text[self.pos] != "\n":
                    self.pos += 1
                had_space = True
                continue
            if ch == "/" and self._peek(1) == "*":
                self.pos += 2
                while self.pos < n:
                    if text[self.pos] == "*" and self._peek(1) == "/":
                        self.pos += 2
                        break
                    self.pos += 1
                else:
                    raise self._error("unterminated /* comment */", start,
                                      iso="6.4.9")
                had_space = True
                continue
            tok = self._lex_one(start)
            tok.at_line_start = at_line_start
            tok.preceded_by_space = had_space
            out.append(tok)
            at_line_start = False
            had_space = False
        out.append(Token(TokenKind.EOF, "", self._loc(self.pos),
                         at_line_start=at_line_start))
        return out

    def _lex_one(self, start: int) -> Token:
        ch = self.text[self.pos]
        loc = self._loc(start)
        if ch in _IDENT_START:
            return self._lex_ident_or_prefixed_literal(loc)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_pp_number(loc)
        if ch == "'":
            return self._lex_char_const(loc, wide=False)
        if ch == '"':
            return self._lex_string(loc, prefix="")
        return self._lex_punct(loc)

    def _lex_ident_or_prefixed_literal(self, loc: Loc) -> Token:
        text = self.text
        start = self.pos
        while self.pos < len(text) and text[self.pos] in _IDENT_CONT:
            self.pos += 1
        spelling = text[start:self.pos]
        # Wide / unicode literal prefixes (§6.4.4.4, §6.4.5).
        if spelling in ("L", "u", "U", "u8"):
            if self._peek() == "'" and spelling != "u8":
                return self._lex_char_const(loc, wide=True)
            if self._peek() == '"':
                return self._lex_string(loc, prefix=spelling)
        return Token(TokenKind.IDENT, spelling, loc)

    def _lex_pp_number(self, loc: Loc) -> Token:
        """pp-number (§6.4.8): digits, '.', identifier chars, and
        exponent sign pairs e+/e-/E+/E-/p+/p-/P+/P-."""
        text = self.text
        start = self.pos
        self.pos += 1
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in _IDENT_CONT or ch == ".":
                if (ch in "eEpP" and self.pos + 1 < len(text)
                        and text[self.pos + 1] in "+-"):
                    self.pos += 2
                else:
                    self.pos += 1
                continue
            break
        return Token(TokenKind.NUMBER, text[start:self.pos], loc)

    def _lex_escape(self, quote_pos: int) -> int:
        """Consume one escape sequence (after the backslash); returns its
        character value (§6.4.4.4p4-7)."""
        ch = self._peek()
        if ch == "":
            raise self._error("unterminated escape sequence", quote_pos)
        if ch in _SIMPLE_ESCAPES:
            self.pos += 1
            return _SIMPLE_ESCAPES[ch]
        if ch == "x":
            self.pos += 1
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self.pos += 1
            if not digits:
                raise self._error("\\x with no hex digits", quote_pos,
                                  iso="6.4.4.4p7")
            return int(digits, 16)
        if ch in "01234567":
            digits = ""
            while len(digits) < 3 and self._peek() in "01234567":
                digits += self._peek()
                self.pos += 1
            return int(digits, 8)
        if ch in ("u", "U"):
            self.pos += 1
            want = 4 if ch == "u" else 8
            digits = ""
            while (len(digits) < want
                   and self._peek() in "0123456789abcdefABCDEF"):
                digits += self._peek()
                self.pos += 1
            if len(digits) != want:
                raise self._error("incomplete universal character name",
                                  quote_pos, iso="6.4.3")
            return int(digits, 16)
        raise self._error(f"unknown escape sequence '\\{ch}'", quote_pos,
                          iso="6.4.4.4")

    def _lex_char_const(self, loc: Loc, wide: bool) -> Token:
        start = self.pos
        assert self.text[self.pos] == "'"
        self.pos += 1
        values: List[int] = []
        while True:
            ch = self._peek()
            if ch == "" or ch == "\n":
                raise self._error("unterminated character constant", start,
                                  iso="6.4.4.4")
            if ch == "'":
                self.pos += 1
                break
            if ch == "\\":
                self.pos += 1
                values.append(self._lex_escape(start))
            else:
                values.append(ord(ch))
                self.pos += 1
        if not values:
            raise self._error("empty character constant", start,
                              iso="6.4.4.4")
        # Multi-character constants have an implementation-defined value;
        # we follow GCC: big-endian packing of the bytes (§6.4.4.4p10).
        value = 0
        for v in values:
            value = (value << 8) | (v & 0xFF)
        if len(values) == 1:
            value = values[0]
        spelling = self.text[start:self.pos]
        if wide:
            spelling = "L" + spelling
        return Token(TokenKind.CHAR_CONST, spelling, loc, value=value)

    def _lex_string(self, loc: Loc, prefix: str) -> Token:
        start = self.pos
        assert self.text[self.pos] == '"'
        self.pos += 1
        values: List[int] = []
        while True:
            ch = self._peek()
            if ch == "" or ch == "\n":
                raise self._error("unterminated string literal", start,
                                  iso="6.4.5")
            if ch == '"':
                self.pos += 1
                break
            if ch == "\\":
                self.pos += 1
                values.append(self._lex_escape(start))
            else:
                values.append(ord(ch))
                self.pos += 1
        spelling = prefix + self.text[start:self.pos]
        encoded = bytes(v & 0xFF if v < 0x80 else v & 0xFF for v in values) \
            if all(v < 0x100 for v in values) else \
            "".join(chr(v) for v in values).encode("utf-8")
        return Token(TokenKind.STRING, spelling, loc, value=encoded)

    def _lex_punct(self, loc: Loc) -> Token:
        text = self.text
        for p in PUNCTUATORS:
            if text.startswith(p, self.pos):
                self.pos += len(p)
                return Token(TokenKind.PUNCT, DIGRAPHS.get(p, p), loc)
        ch = text[self.pos]
        self.pos += 1
        return Token(TokenKind.OTHER, ch, loc)


def lex_text(text: str, name: str = "<string>") -> List[Token]:
    """Convenience: lex a string into pp-tokens (incl. NEWLINE and EOF)."""
    return Lexer(SourceFile(name, text)).tokens()
