"""Lexical analysis (ISO C11 §6.4): pp-tokens and C tokens."""

from .tokens import Token, TokenKind, KEYWORDS, PUNCTUATORS
from .lexer import Lexer, lex_text

__all__ = [
    "Token", "TokenKind", "KEYWORDS", "PUNCTUATORS", "Lexer", "lex_text",
]
