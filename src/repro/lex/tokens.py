"""Token definitions for the C lexer (ISO C11 §6.4).

The lexer produces *preprocessing tokens* (§6.4p1); the preprocessor then
converts surviving pp-tokens into proper C tokens (keywords are separated
from identifiers, constants get parsed) before parsing — translation
phase 7 of §5.1.1.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..source import Loc


class TokenKind(enum.Enum):
    """Preprocessing-token / token kinds."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    NUMBER = "pp-number"
    CHAR_CONST = "character-constant"
    STRING = "string-literal"
    PUNCT = "punctuator"
    NEWLINE = "new-line"          # significant only to the preprocessor
    EOF = "end-of-file"
    OTHER = "non-whitespace-other"  # a pp-token that matches nothing else


# ISO C11 §6.4.1 keyword list (we lex all of them; unsupported ones are
# rejected later with an `UnsupportedError` naming the construct).
KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while",
    "_Alignas", "_Alignof", "_Atomic", "_Bool", "_Complex", "_Generic",
    "_Imaginary", "_Noreturn", "_Static_assert", "_Thread_local",
})

# §6.4.6 punctuators, longest-match-first.
PUNCTUATORS = sorted({
    "[", "]", "(", ")", "{", "}", ".", "->",
    "++", "--", "&", "*", "+", "-", "~", "!",
    "/", "%", "<<", ">>", "<", ">", "<=", ">=", "==", "!=", "^", "|",
    "&&", "||", "?", ":", ";", "...",
    "=", "*=", "/=", "%=", "+=", "-=", "<<=", ">>=", "&=", "^=", "|=",
    ",", "#", "##",
    "<:", ":>", "<%", "%>", "%:", "%:%:",
}, key=len, reverse=True)

# Digraph canonicalisation (§6.4.6p3).
DIGRAPHS = {"<:": "[", ":>": "]", "<%": "{", "%>": "}",
            "%:": "#", "%:%:": "##"}


@dataclass
class Token:
    """One pp-token or C token.

    ``text`` is the exact spelling; ``value`` is filled in for parsed
    constants (int / float / str / bytes depending on kind);
    ``at_line_start`` and ``preceded_by_space`` drive the preprocessor.
    """

    kind: TokenKind
    text: str
    loc: Loc = field(default_factory=Loc.unknown)
    value: Optional[object] = None
    at_line_start: bool = False
    preceded_by_space: bool = False
    # Macro names already expanded on the path to this token (blue paint).
    no_expand: frozenset = frozenset()

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_ident(self, name: Optional[str] = None) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return name is None or self.text == name

    def __repr__(self) -> str:  # compact, for test failure messages
        return f"Token({self.kind.name}, {self.text!r})"
