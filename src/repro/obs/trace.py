"""The tracing half of the observability layer: span-based JSON-lines
traces with a deterministic, content-derived run id.

A trace file is a sequence of JSON objects, one per line (see the
schema documented in :mod:`repro.obs`).  The tracer records *spans* —
named, nested regions measured in monotonic wall-clock
(``time.perf_counter``) and CPU time (``time.process_time``) — plus
free-form auxiliary records (e.g. the explorer's paths/sec timeline)
and a final metrics snapshot.

The run id is derived by hashing a caller-supplied *identity* string
(source text + the semantic flags of the invocation), never from the
clock or a RNG: two identical invocations produce traces that differ
only in their timing fields, so traces are diffable."""

from __future__ import annotations

import hashlib
import json
import time
from typing import Optional

#: Bump when the trace record layout changes incompatibly.
TRACE_SCHEMA = 1


def run_id_for(identity: str) -> str:
    """The deterministic run id of one invocation: a short
    content-derived hash of the identity string (never wall-clock or
    randomness — identical runs must produce diffable traces)."""
    return hashlib.sha256(
        identity.encode("utf-8", "surrogateescape")).hexdigest()[:16]


class Tracer:
    """Writes one JSON-lines trace file.

    Spans are opened/closed by :meth:`ObsContext.span
    <repro.obs.ObsContext.span>`; every emitted record carries the
    deterministic run id and (for spans) the nesting depth and a
    start offset relative to the start of the trace."""

    def __init__(self, path, identity: str = ""):
        self.path = str(path)
        self.run_id = run_id_for(identity)
        self._f = open(self.path, "w")
        self._t0 = time.perf_counter()
        self.depth = 0
        self.emit({"type": "meta", "schema": TRACE_SCHEMA,
                   "tool": "cerberus-py"})

    # -- raw record emission --------------------------------------------------

    def emit(self, record: dict) -> None:
        """Write one trace record (the run id is added here)."""
        record.setdefault("run", self.run_id)
        self._f.write(json.dumps(record, sort_keys=True) + "\n")

    def now(self) -> float:
        """Seconds since the trace started (monotonic)."""
        return time.perf_counter() - self._t0

    def emit_span(self, name: str, t0: float, wall_s: float,
                  cpu_s: float, depth: int, attrs: Optional[dict]
                  ) -> None:
        record = {"type": "span", "name": name, "depth": depth,
                  "t0": round(t0, 6), "wall_s": round(wall_s, 6),
                  "cpu_s": round(cpu_s, 6)}
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def emit_timeline(self, name: str, points) -> None:
        """An auxiliary timeline record: ``points`` is a list of
        ``[t_offset_s, value]`` pairs (e.g. cumulative paths over
        time, from which a paths/sec curve is read)."""
        self.emit({"type": "timeline", "name": name,
                   "points": [[round(t, 4), v] for t, v in points]})

    def close(self, metrics: Optional[dict] = None) -> None:
        """Emit the final metrics snapshot and close the file."""
        if metrics is not None:
            self.emit({"type": "metrics", "metrics": metrics})
        self._f.close()


def read_trace(path):
    """Parse a JSON-lines trace back into a list of record dicts
    (damaged lines are skipped, never fatal — a truncated trace from
    a killed run should still summarise)."""
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records
