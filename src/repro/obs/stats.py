"""Render a trace file into a summary: ``cerberus-py stats FILE``.

The summary answers the three questions the ROADMAP perf work keeps
asking — where does wall-clock go (per-phase timings), how warm are
the caches (per-kind store hit rates), and how fast is the explorer
(paths/sec, steps/sec) — from nothing but the JSON-lines trace
written by :func:`repro.obs.tracing` / ``--trace``."""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .trace import read_trace

#: Record kinds the store families report under ``store.<kind>.*``.
#: ``warm_closures`` is the process-local rebuilt-lowering cache
#: layered over the persisted ``lowered`` layout records.
STORE_KINDS = ("compiled", "exploration", "statics", "lowered",
               "warm_closures", "record")


def summarize_trace(path) -> dict:
    """Digest one trace file into a JSON-able summary dict."""
    records = read_trace(path)
    meta = next((r for r in records if r.get("type") == "meta"), {})
    spans = [r for r in records if r.get("type") == "span"]
    timelines = [r for r in records if r.get("type") == "timeline"]

    # The final metrics record is authoritative for aggregates: it
    # contains every span the tracer saw *plus* the worker-side
    # metrics the farm merged in (workers collect metrics but do not
    # write trace files).  Span records remain the per-instance
    # detail.  A truncated trace (killed run) may have no metrics
    # record — then the spans alone are aggregated.
    merged = MetricsRegistry()
    for r in records:
        if r.get("type") == "metrics":
            merged.merge_dict(r.get("metrics"))
    metrics = merged.to_dict()
    counters = metrics["counters"]
    hists = metrics["histograms"]

    phases: Dict[str, dict] = {}
    for name, h in sorted(hists.items()):
        if not name.startswith("span.") or name.endswith(".cpu"):
            continue
        phase = name[len("span."):]
        cpu = hists.get(name + ".cpu", {})
        phases[phase] = {
            "count": h["count"],
            "wall_s": round(h["total"], 6),
            "mean_s": round(h["total"] / h["count"], 6),
            "max_s": round(h["max"], 6),
            "cpu_s": round(cpu.get("total", 0.0), 6),
        }
    if not phases:
        for s in spans:
            p = phases.setdefault(s["name"], {
                "count": 0, "wall_s": 0.0, "max_s": 0.0, "cpu_s": 0.0})
            p["count"] += 1
            p["wall_s"] = round(p["wall_s"] + s["wall_s"], 6)
            p["max_s"] = round(max(p["max_s"], s["wall_s"]), 6)
            p["cpu_s"] = round(p["cpu_s"] + s["cpu_s"], 6)
        for p in phases.values():
            p["mean_s"] = round(p["wall_s"] / p["count"], 6) \
                if p["count"] else 0.0

    def rate(hits, misses) -> Optional[float]:
        total = hits + misses
        return round(hits / total, 4) if total else None

    stores: Dict[str, dict] = {}
    for kind in STORE_KINDS:
        hits = counters.get(f"store.{kind}.hits", 0)
        misses = counters.get(f"store.{kind}.misses", 0)
        puts = counters.get(f"store.{kind}.stores", 0)
        corrupt = counters.get(f"store.{kind}.corrupt", 0)
        if hits or misses or puts or corrupt:
            stores[kind] = {"hits": hits, "misses": misses,
                            "stores": puts, "corrupt": corrupt,
                            "hit_rate": rate(hits, misses)}
    if counters.get("store.evictions"):
        stores["evictions"] = counters["store.evictions"]

    paths = counters.get("explore.paths", 0)
    explore_wall = hists.get("span.explore", {}).get("total", 0.0)
    steps = counters.get("driver.steps", 0)
    run_wall = hists.get("driver.run_s", {}).get("total", 0.0)
    explorer = {
        "paths": paths,
        "pruned": counters.get("explore.pruned", 0),
        "diverged": counters.get("explore.diverged", 0),
        "abandoned": counters.get("explore.abandoned", 0),
        "requeued": counters.get("explore.requeued", 0),
        "choice_points": counters.get("explore.choice_points", 0),
        "static_prune_skips":
            counters.get("explore.static_prune_skips", 0),
        "record_resumes": counters.get("explore.resumes", 0),
        "live_paths": counters.get("explore.live_paths", 0),
        "paths_per_s": round(paths / explore_wall, 1)
            if explore_wall > 0 else None,
        "steps": steps,
        "steps_per_s": round(steps / run_wall, 1)
            if run_wall > 0 else None,
    }

    pipeline = {
        "translations": counters.get("pipeline.translations", 0),
        "cache_hits": counters.get("pipeline.cache_hits", 0),
        "cache_misses": counters.get("pipeline.cache_misses", 0),
    }

    # The compiled back end's specialized-call-protocol hit rates and
    # lower-time fusion counts (compile.call_* / compile.fused.*).
    call_fast = counters.get("compile.call_fast", 0)
    call_generic = counters.get("compile.call_generic", 0)
    compiled = {
        "call_fast": call_fast,
        "call_generic": call_generic,
        "call_fast_rate": rate(call_fast, call_generic),
        "fused": {k.split(".", 2)[2]: v
                  for k, v in sorted(counters.items())
                  if k.startswith("compile.fused.")},
    }

    farm = {k.split(".", 1)[1]: v for k, v in sorted(counters.items())
            if k.startswith("farm.")}

    return {
        "trace": str(path),
        "run": meta.get("run") or (spans[0]["run"] if spans else None),
        "schema": meta.get("schema"),
        "spans": len(spans),
        "phases": phases,
        "stores": stores,
        "explorer": explorer,
        "pipeline": pipeline,
        "compiled": compiled,
        "farm": farm,
        "timelines": [{"name": t["name"], "points": t["points"]}
                      for t in timelines],
        "metrics": metrics,
    }


def render_text(summary: dict) -> str:
    """The human-readable form of :func:`summarize_trace`."""
    lines: List[str] = []
    lines.append(f"trace {summary['trace']}  run={summary['run']}  "
                 f"spans={summary['spans']}")
    if summary["phases"]:
        lines.append("")
        lines.append(f"{'phase':<24} {'count':>6} {'wall_s':>10} "
                     f"{'mean_s':>10} {'max_s':>10} {'cpu_s':>10}")
        for name, p in sorted(summary["phases"].items(),
                              key=lambda kv: -kv[1]["wall_s"]):
            lines.append(f"{name:<24} {p['count']:>6} "
                         f"{p['wall_s']:>10.4f} {p['mean_s']:>10.4f} "
                         f"{p['max_s']:>10.4f} {p['cpu_s']:>10.4f}")
    stores = summary["stores"]
    if stores:
        lines.append("")
        lines.append(f"{'store kind':<24} {'hits':>6} {'misses':>7} "
                     f"{'stores':>7} {'corrupt':>8} {'hit rate':>9}")
        for kind, s in sorted(stores.items()):
            if kind == "evictions":
                continue
            r = s["hit_rate"]
            lines.append(f"{kind:<24} {s['hits']:>6} {s['misses']:>7} "
                         f"{s['stores']:>7} {s['corrupt']:>8} "
                         f"{(f'{r:.2%}' if r is not None else '-'):>9}")
        if "evictions" in stores:
            lines.append(f"{'(evictions)':<24} {stores['evictions']:>6}")
    ex = summary["explorer"]
    if ex["paths"] or ex["steps"]:
        lines.append("")
        lines.append(
            f"explorer: {ex['paths']} paths "
            f"({ex['pruned']} pruned, {ex['diverged']} diverged, "
            f"{ex['abandoned']} abandoned, {ex['requeued']} requeued), "
            f"{ex['choice_points']} choice points, "
            f"{ex['static_prune_skips']} static-prune skips")
        pps = ex["paths_per_s"]
        sps = ex["steps_per_s"]
        lines.append(
            f"throughput: "
            f"{(f'{pps} paths/s' if pps is not None else 'paths/s -')}"
            f", {ex['steps']} steps"
            f"{f' ({sps} steps/s)' if sps is not None else ''}")
        if ex["record_resumes"] or ex["live_paths"]:
            lines.append(f"records: resumes={ex['record_resumes']} "
                         f"live paths={ex['live_paths']}")
    pl = summary["pipeline"]
    if any(pl.values()):
        lines.append("")
        lines.append(f"pipeline: translations={pl['translations']} "
                     f"cache hits={pl['cache_hits']} "
                     f"misses={pl['cache_misses']}")
    co = summary.get("compiled") or {}
    if co.get("call_fast") or co.get("call_generic") or co.get("fused"):
        lines.append("")
        r = co.get("call_fast_rate")
        lines.append(
            f"compiled: call fast={co['call_fast']} "
            f"generic={co['call_generic']}"
            f"{f' ({r:.2%} fast)' if r is not None else ''}")
        if co.get("fused"):
            lines.append("fused: " + "  ".join(
                f"{k}={v}" for k, v in sorted(co["fused"].items())))
    if summary["farm"]:
        lines.append("")
        lines.append("farm: " + "  ".join(
            f"{k}={v}" for k, v in summary["farm"].items()))
    for t in summary["timelines"]:
        if t["points"]:
            t_last, n_last = t["points"][-1]
            lines.append("")
            lines.append(f"timeline {t['name']}: {len(t['points'])} "
                         f"samples, {n_last} at t={t_last:.2f}s")
    return "\n".join(lines)
