"""``repro.obs`` — the observability spine: metrics, tracing, and
profiling hooks across the pipeline, the explorer, the stores, and
the farm.

The ROADMAP's next perf items (an order-of-magnitude step-loop
speedup, a long-lived farm server) need measurement the repo did not
have: where wall-clock goes per pipeline phase, what the store hit
rates are, how many paths/sec the explorer sustains.  This module is
that measurement layer, built on PR 6's proven zero-cost gating
pattern: every instrumented site decides *once* whether anyone is
listening (:func:`active` returning ``None``) and does no other work
when nobody is — ``benchmarks/bench_obs_overhead.py`` pins the
disabled-mode overhead at <= 5% and trips a tripwire if any
instrumentation site records while disabled.

Usage::

    import repro.obs as obs

    with obs.tracing("run.jsonl", identity=source) as ctx:
        repro.run_c(source)          # spans + metrics recorded
    # => run.jsonl (JSON lines), summarise with `cerberus-py stats`

    with obs.collecting() as registry:   # metrics only, no file
        repro.explore_c(source)
    registry.to_dict()

CLI seams: ``cerberus-py file.c --trace FILE --metrics``,
``cerberus-py farm sweep ... --trace FILE``, ``--profile DIR`` (per-
phase cProfile captures), and ``cerberus-py stats FILE`` to render a
trace.  Campaign JSON reports carry the same data as a unified
``metrics`` block.

Trace schema (one JSON object per line, ``"run"`` on every record —
a deterministic hash of the invocation's *identity*, never clock or
RNG, so identical runs produce diffable traces):

* ``{"type": "meta", "schema": 1, "tool": "cerberus-py", "run": R}``
  — first line;
* ``{"type": "span", "name": N, "depth": D, "t0": T, "wall_s": W,
  "cpu_s": C, "attrs": {...}, "run": R}`` — one closed span: ``t0``
  is the start offset from trace start (monotonic), ``wall_s`` /
  ``cpu_s`` the elapsed wall and CPU time, ``depth`` the nesting
  level.  Span names: ``pipeline.lex`` / ``pipeline.parse`` /
  ``pipeline.desugar`` / ``pipeline.typecheck`` /
  ``pipeline.elaborate`` / ``pipeline.check_core`` /
  ``pipeline.statics`` (front-end phases), ``explore`` (one
  state-space enumeration; attrs carry strategy/por/paths/pruned),
  ``explore_farm`` (a farm-sharded enumeration), ``campaign`` (a
  whole farm campaign);
* ``{"type": "timeline", "name": "explore.paths", "points":
  [[t, n], ...], "run": R}`` — cumulative paths over time, sampled
  while exploring (the paths/sec curve);
* ``{"type": "metrics", "metrics": {"counters": ..., "gauges": ...,
  "histograms": ...}, "run": R}`` — final snapshot, including
  worker-side metrics the farm merged in.  Counter families:
  ``driver.*`` (runs, steps), ``explore.*`` (paths, pruned,
  diverged, abandoned, requeued, choice_points,
  static_prune_skips, resumes, live_paths, shards),
  ``store.<kind>.*`` (hits/misses/stores/corrupt per record kind:
  compiled / exploration / statics), ``store.evictions``,
  ``pipeline.*`` (translations, cache_hits, cache_misses),
  ``farm.*`` (tasks, timeouts, failures).  Histograms named
  ``span.<name>`` aggregate span wall-clock (``.cpu`` suffix for CPU
  time) — they carry phase timings across the farm's process
  boundary, where workers collect metrics but do not write trace
  files.

Reading ``cerberus-py stats FILE``: the *phases* table aggregates
span records and ``span.*`` histograms (count / total / mean / max
wall seconds per phase — the biggest ``total`` is where the
wall-clock goes); *stores* shows per-kind hit rates and corruption
counts (a warm campaign shows ``compiled`` and ``exploration`` hit
rates near 1.0); *explorer* shows paths, pruned/diverged/abandoned
accounting, and sustained paths/sec and steps/sec (the step-loop
optimisation target); *timeline* (with ``--json``) is the raw
paths-over-time curve."""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Optional

from .metrics import MetricsRegistry, merge_metric_dicts
from .trace import TRACE_SCHEMA, Tracer, read_trace, run_id_for

__all__ = [
    "MetricsRegistry", "ObsContext", "Tracer", "TRACE_SCHEMA",
    "active", "collecting", "maybe_span", "merge_metric_dicts",
    "read_trace", "run_id_for", "tracing",
]

#: The active observability context, or ``None`` (the default:
#: instrumentation sites must do no work beyond observing the None).
_ACTIVE: Optional["ObsContext"] = None


def active() -> Optional["ObsContext"]:
    """The installed :class:`ObsContext`, or ``None`` when
    observability is off.  Instrumented sites call this once per
    *coarse* unit of work (a compile phase, a driver run, an
    exploration) — never per step — and bail on ``None``; that check
    is the whole disabled-mode cost."""
    return _ACTIVE


class ObsContext:
    """One observability scope: a metrics registry, optionally a
    tracer (JSON-lines file) and a cProfile capture directory.

    Contexts nest: metric writes propagate to the ``parent`` chain,
    so a farm task's scoped registry feeds the campaign-level
    context too (and the campaign's trace file sees the totals)."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profile_dir=None,
                 parent: Optional["ObsContext"] = None):
        self.tracer = tracer
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.profile_dir = str(profile_dir) \
            if profile_dir is not None else None
        self.parent = parent
        self._profile_seq = 0

    # -- metric emission (propagates up the parent chain) ---------------------

    def inc(self, name: str, n: int = 1) -> None:
        ctx = self
        while ctx is not None:
            ctx.metrics.inc(name, n)
            ctx = ctx.parent

    def gauge(self, name: str, value: float) -> None:
        ctx = self
        while ctx is not None:
            ctx.metrics.gauge(name, value)
            ctx = ctx.parent

    def observe(self, name: str, value: float) -> None:
        ctx = self
        while ctx is not None:
            ctx.metrics.observe(name, value)
            ctx = ctx.parent

    def merge(self, metric_dict: Optional[dict]) -> None:
        """Fold a worker's metrics snapshot into this scope (and its
        parents): the farm's worker-to-parent merge."""
        if not metric_dict:
            return
        ctx = self
        while ctx is not None:
            ctx.metrics.merge_dict(metric_dict)
            ctx = ctx.parent

    # -- spans ----------------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, profile: bool = False, **attrs):
        """Measure a named region: wall (``perf_counter``) + CPU
        (``process_time``), recorded as a trace span (when tracing)
        and a ``span.<name>`` histogram (always).  ``profile=True``
        additionally captures a cProfile of the region when the
        context has a ``profile_dir`` — the opt-in per-phase
        profiling hook (``--profile DIR``)."""
        prof = None
        if profile and self.profile_dir is not None:
            import cProfile
            prof = cProfile.Profile()
        depth = None
        t0_rel = 0.0
        if self.tracer is not None:
            depth = self.tracer.depth
            self.tracer.depth += 1
            t0_rel = self.tracer.now()
        w0 = time.perf_counter()
        c0 = time.process_time()
        if prof is not None:
            prof.enable()
        try:
            yield self
        finally:
            if prof is not None:
                prof.disable()
            wall = time.perf_counter() - w0
            cpu = time.process_time() - c0
            self.observe(f"span.{name}", wall)
            self.observe(f"span.{name}.cpu", cpu)
            if self.tracer is not None:
                self.tracer.depth = depth
                self.tracer.emit_span(name, t0_rel, wall, cpu, depth,
                                      attrs or None)
            if prof is not None:
                self._dump_profile(name, prof)

    def _dump_profile(self, name: str, prof) -> None:
        """Persist one phase capture: binary ``.pstats`` (load with
        :mod:`pstats`) plus a human-readable top-25-by-cumulative
        ``.txt`` next to it."""
        import io
        import pstats
        from pathlib import Path
        directory = Path(self.profile_dir)
        directory.mkdir(parents=True, exist_ok=True)
        self._profile_seq += 1
        safe = "".join(c if c.isalnum() or c in "._-" else "_"
                       for c in name)
        base = directory / f"{self._profile_seq:03d}-{safe}"
        prof.dump_stats(str(base) + ".pstats")
        out = io.StringIO()
        stats = pstats.Stats(prof, stream=out)
        stats.sort_stats("cumulative").print_stats(25)
        (Path(str(base) + ".txt")).write_text(out.getvalue())


@contextlib.contextmanager
def _install(ctx: ObsContext) -> Iterator[ObsContext]:
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = previous


@contextlib.contextmanager
def tracing(path=None, identity: str = "",
            profile_dir=None,
            metrics: Optional[MetricsRegistry] = None
            ) -> Iterator[ObsContext]:
    """Install an observability context for the duration of the
    ``with`` block: metrics always collected; ``path`` additionally
    writes a JSON-lines trace there (closed with a final metrics
    record); ``profile_dir`` turns on per-phase cProfile captures.
    ``identity`` should name the invocation's *content* (source text
    + semantic flags) — the trace run id is a hash of it, so
    identical invocations produce diffable traces.  Nested uses chain
    (metrics propagate to the outer scope)."""
    tracer = Tracer(path, identity) if path is not None else None
    ctx = ObsContext(tracer=tracer, metrics=metrics,
                     profile_dir=profile_dir, parent=_ACTIVE)
    try:
        with _install(ctx):
            yield ctx
    finally:
        if tracer is not None:
            tracer.close(ctx.metrics.to_dict())


@contextlib.contextmanager
def collecting(registry: Optional[MetricsRegistry] = None
               ) -> Iterator[MetricsRegistry]:
    """Install a metrics-only scope (no trace file) and yield its
    registry — the farm uses this around each worker task to collect
    the per-task metrics it ships back to the parent.  The scope is
    *isolated* (writes do not propagate to any enclosing context):
    the snapshot travels to the parent explicitly — over IPC for farm
    workers, via :meth:`ObsContext.merge` in the campaign — so serial
    and forked execution produce identical totals, counted once."""
    registry = registry if registry is not None else MetricsRegistry()
    ctx = ObsContext(metrics=registry)
    with _install(ctx):
        yield registry


def reset() -> None:
    """Drop any installed context (forked farm workers call this so a
    child never inherits — and double-writes — the parent's trace)."""
    global _ACTIVE
    _ACTIVE = None


def maybe_span(ctx: Optional[ObsContext], name: str,
               profile: bool = False, **attrs):
    """``ctx.span(...)`` when observability is on, a no-op context
    otherwise — lets instrumentation sites stay one-liners."""
    if ctx is None:
        return contextlib.nullcontext()
    return ctx.span(name, profile=profile, **attrs)
