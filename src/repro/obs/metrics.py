"""The metrics half of the observability layer: a tiny process-local
registry of counters, gauges, and scalar histograms.

Metric values are plain numbers under dotted string names
(``"driver.steps"``, ``"store.compiled.hits"``, ``"span.explore"``),
so a registry serialises to one JSON-able dict and two registries
merge by summation — which is exactly what the farm needs: each
worker task collects into its own registry, ships the dict over IPC,
and the parent folds every worker's dict into the campaign report
(:func:`merge_metric_dicts`), making a parallel sweep's metrics equal
a serial sweep's.

Histograms are deliberately *scalar* summaries (count / total / min /
max), not bucketed distributions: they are cheap to update, exact
under merging, and sufficient for the questions the ROADMAP perf work
asks (where does wall-clock go, what does a phase cost on average /
at worst)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class MetricsRegistry:
    """Counters, gauges, and scalar histograms under dotted names."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self.histograms: Dict[str, list] = {}

    # -- write side -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-able snapshot: ``{"counters": .., "gauges": ..,
        "histograms": {name: {count, total, min, max}}}``."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {"count": h[0], "total": h[1],
                       "min": h[2], "max": h[3]}
                for name, h in self.histograms.items()},
        }

    def merge_dict(self, d: Optional[dict]) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. one farm worker's)
        into this registry: counters and histogram counts/totals sum,
        histogram min/max widen, gauges last-write-wins."""
        if not d:
            return
        for name, n in d.get("counters", {}).items():
            self.inc(name, n)
        for name, v in d.get("gauges", {}).items():
            self.gauge(name, v)
        for name, h in d.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = [h["count"], h["total"],
                                         h["min"], h["max"]]
            else:
                mine[0] += h["count"]
                mine[1] += h["total"]
                mine[2] = min(mine[2], h["min"])
                mine[3] = max(mine[3], h["max"])


def merge_metric_dicts(dicts: Iterable[Optional[dict]]) -> dict:
    """Merge many :meth:`MetricsRegistry.to_dict` snapshots into one
    (the farm's worker-to-parent aggregation)."""
    merged = MetricsRegistry()
    for d in dicts:
        merged.merge_dict(d)
    return merged.to_dict()
