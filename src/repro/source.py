"""Source locations and source-file bookkeeping.

Every token, AST node and diagnostic carries a :class:`Loc` so that errors
and undefined-behaviour reports can point back at the offending C source,
mirroring Cerberus's C-source location annotations (paper, Fig. 2 caption).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Loc:
    """A half-open source region ``[line:col, ...)`` in a named file."""

    file: str = "<unknown>"
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        if self.line <= 0:
            return self.file
        return f"{self.file}:{self.line}:{self.col}"

    @staticmethod
    def unknown() -> "Loc":
        return _UNKNOWN


_UNKNOWN = Loc()


@dataclass
class SourceFile:
    """A source buffer plus the machinery to map offsets to line/column."""

    name: str
    text: str

    def __post_init__(self) -> None:
        self._line_starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def loc_of_offset(self, offset: int) -> Loc:
        """Binary-search the line table for the location of ``offset``."""
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return Loc(self.name, lo + 1, offset - self._line_starts[lo] + 1)

    def line_text(self, line: int) -> str:
        """Return the text of 1-based ``line`` (without the newline)."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]
