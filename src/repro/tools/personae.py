"""Tool personae: semantic configurations modelling the three tool
families of paper §3, which "gave radically different results" on the
de facto test suite.

* **sanitizers** (Clang ASan/MSan/UBSan-like): a liberal semantics that
  checks address validity and arithmetic UB but, like the real
  sanitisers, lets all the structure-padding and most unspecified-value
  tests run without warnings (it flags a *control-flow* use of an
  unspecified value — the one case the paper notes MSan detects, Q50).
* **tis** (tis-interpreter-like): a tight deterministic semantics —
  uninitialised reads are errors, pointer-representation comparison is
  not permitted, but null pointers are assumed all-zero (stricter than
  our candidate model in some places, de-facto-agreeing in others).
* **kcc** (KCC/RV-Match-like): a strict-ISO semantics with deliberate
  implementation gaps: tests exercising certain features simply fail
  with 'Execution failed' (the paper saw this for tests of 20 of the
  questions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..memory.base import MemoryOptions
from ..testsuite.programs import TESTS, TestCase
from ..testsuite.runner import TestResult, _matches, _verdict_of
from ..errors import CerberusError
from ..pipeline import run_c


@dataclass(frozen=True)
class Persona:
    name: str
    model: str
    options: Optional[MemoryOptions]
    # Feature tags this tool cannot execute ('Execution failed').
    unsupported_features: frozenset = frozenset()
    description: str = ""


PERSONAE: Dict[str, Persona] = {
    "sanitizers": Persona(
        name="sanitizers",
        model="concrete",
        options=MemoryOptions(
            uninit_read="stable",          # values flow silently
            padding_on_member_store="keep",
            allow_inter_object_relational=True,
            allow_inter_object_ptrdiff=True,
            allow_oob_construction=True,
            track_int_provenance=False,
            check_provenance=False,
            check_effective_types=False,
        ),
        description="Clang ASan+MSan+UBSan-like: address validity and "
                    "arithmetic UB only; padding/unspecified tests run "
                    "silently (paper §3)"),
    "tis": Persona(
        name="tis",
        model="strict",
        options=MemoryOptions(
            uninit_read="ub",
            padding_on_member_store="unspec",
            allow_inter_object_relational=False,
            allow_inter_object_ptrdiff=False,
            allow_oob_construction=False,
            track_int_provenance=True,
            check_provenance=True,
            reject_empty_provenance=True,
            check_effective_types=False,   # tis is not TBAA-strict
        ),
        description="tis-interpreter-like: deterministic tight "
                    "semantics; flags most unspecified-value tests"),
    "kcc": Persona(
        name="kcc",
        model="strict",
        options=MemoryOptions(
            uninit_read="ub",
            padding_on_member_store="keep",  # 'but not padding bytes'
            allow_inter_object_relational=False,
            allow_inter_object_ptrdiff=False,
            allow_oob_construction=False,
            track_int_provenance=True,
            check_provenance=True,
            reject_empty_provenance=True,
            check_effective_types=True,
        ),
        unsupported_features=frozenset({
            # Feature tags whose tests 'Execution failed' under KCC.
            "ptr-bytes", "bit-stash", "inter-object", "container-of",
            "dangling", "one-past", "union-pun",
        }),
        description="KCC-like: strict ISO with execution gaps "
                    "('Execution failed' on many pointer tests)"),
}


@dataclass
class PersonaResult:
    test: str
    persona: str
    verdict: str    # ok:... | ub:... | failed (unsupported)


def run_persona_suite(persona_name: str,
                      names: Optional[List[str]] = None,
                      max_steps: int = 400_000) -> List[PersonaResult]:
    persona = PERSONAE[persona_name]
    out: List[PersonaResult] = []
    for name in (names or sorted(TESTS)):
        test = TESTS[name]
        if set(test.features) & persona.unsupported_features:
            out.append(PersonaResult(name, persona_name,
                                     "failed:Execution failed"))
            continue
        try:
            outcome = run_c(test.source, model=persona.model,
                            options=persona.options,
                            max_steps=max_steps)
            out.append(PersonaResult(name, persona_name,
                                     _verdict_of(outcome)))
        except CerberusError as exc:
            out.append(PersonaResult(
                name, persona_name, f"failed:{type(exc).__name__}"))
    return out


def comparison_table(names: Optional[List[str]] = None) -> str:
    """The §3-style comparison: one row per test, one column per
    persona."""
    rows = {}
    for pname in PERSONAE:
        for r in run_persona_suite(pname, names):
            rows.setdefault(r.test, {})[pname] = r.verdict
    lines = [f"{'test':32s} {'sanitizers':14s} {'tis':14s} {'kcc':14s}"]
    for test in sorted(rows):
        cells = rows[test]

        def short(v: str) -> str:
            if v.startswith("ok"):
                return "ok"
            if v.startswith("ub"):
                return "flagged"
            return "failed"

        lines.append(f"{test:32s} "
                     f"{short(cells.get('sanitizers', '?')):14s} "
                     f"{short(cells.get('tis', '?')):14s} "
                     f"{short(cells.get('kcc', '?')):14s}")
    return "\n".join(lines)
