"""Analysis-tool personae reproducing the §3 comparison."""

from .personae import PERSONAE, Persona, run_persona_suite

__all__ = ["PERSONAE", "Persona", "run_persona_suite"]
