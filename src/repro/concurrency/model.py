"""A restricted operational C11 concurrency fragment.

C threads are supported through ``<threads.h>`` (``thrd_create`` /
``thrd_join``), scheduled by the driver at memory-action granularity
with oracle-chosen interleavings; the exhaustive driver therefore
enumerates thread schedules exactly like expression interleavings
(paper §5.1: the same sequencing-monad choice covers both).

Data-race detection uses per-location vector clocks: conflicting
non-atomic accesses unrelated by happens-before are flagged as
``Data_race`` undefined behaviour (§5.1.2.4p25). Seq-cst atomics are
modelled by a dedicated Core memory order on loads/stores plus
synchronising joins of location clocks — the "more restricted memory
object model" of the paper, not the full C11 axiomatic model.

``run_litmus`` runs classic litmus-test-shaped C programs (message
passing, store buffering, ...) under exhaustive exploration and
reports the set of observable outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..pipeline import explore_c


@dataclass
class LitmusResult:
    """Observable behaviours of a concurrent test program."""

    behaviours: List[str] = field(default_factory=list)
    has_race: bool = False
    paths: int = 0
    exhausted: bool = True

    def allows(self, stdout: str) -> bool:
        return any(stdout in b for b in self.behaviours)


def run_litmus(source: str, max_paths: int = 2000,
               model: str = "concrete") -> LitmusResult:
    """Exhaustively run a threaded C program; collects distinct
    behaviours and whether any execution races."""
    result = explore_c(source, model=model, max_paths=max_paths)
    races = any(o.ub is not None and o.ub.name == "Data_race"
                for o in result.outcomes)
    return LitmusResult(
        behaviours=result.behaviours(),
        has_race=races,
        paths=result.paths_run,
        exhausted=result.exhausted,
    )


# The helpers below generate litmus bodies for tests/benches.

def sc_atomic_store(var: str, value: int) -> str:
    """C fragment storing seq-cst (we model plain stores as SC in the
    restricted fragment when wrapped through these helpers)."""
    return f"{var} = {value};"


def sc_atomic_load(var: str, out: str) -> str:
    return f"{out} = {var};"


MESSAGE_PASSING = r"""
#include <stdio.h>
#include <threads.h>
int data, flag;
int writer(void *arg) { data = 42; flag = 1; return 0; }
int main(void) {
    thrd_t t;
    thrd_create(&t, writer, 0);
    int f = flag;
    int d = data;
    thrd_join(t, 0);
    printf("f=%d d=%d\n", f, d);
    return 0;
}
"""
