"""The restricted operational concurrency fragment (paper §1: "Threads,
atomic types, and atomic operations are supported only with a more
restricted memory object model")."""

from .model import (
    run_litmus, LitmusResult, sc_atomic_store, sc_atomic_load,
)

__all__ = ["run_litmus", "LitmusResult", "sc_atomic_store",
           "sc_atomic_load"]
