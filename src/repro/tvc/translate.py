"""The compiler-front-end proxy: Typed Ail -> mini IR.

Supports only the tvc program class of paper §6: a single function
``main`` of type ``int(void)``, no I/O, no calls, ``int`` locals,
assignments, arithmetic, if/while, return. Anything else raises
:class:`TvcUnsupported` — mirroring tvc's "extremely limited" scope.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..ail import ast as A
from ..ctypes.types import Function, Integer, IntKind, QualType
from .minir import IRBlock, IRFunction, IRInstr


class TvcUnsupported(Exception):
    pass


class _Translator:
    def __init__(self) -> None:
        self.fn = IRFunction("main")
        self.current = self.fn.block("entry")
        self.counter = itertools.count(1)
        self.slots: Dict[str, str] = {}   # C symbol -> slot name

    def fresh(self, base: str = "t") -> str:
        return f"{base}{next(self.counter)}"

    def emit(self, instr: IRInstr) -> None:
        self.current.instrs.append(instr)

    def new_block(self, base: str) -> IRBlock:
        return self.fn.block(f"{base}{next(self.counter)}")

    # -- expressions ------------------------------------------------------------

    def expr(self, e: A.Expr) -> str:
        if isinstance(e, A.EConv):
            if e.kind == "lvalue":
                slot = self.lvalue_slot(e.operand)
                dest = self.fresh()
                self.emit(IRInstr("load", dest, [slot]))
                return dest
            if e.kind == "assign":
                return self.expr(e.operand)
            raise TvcUnsupported(f"conversion {e.kind}")
        if isinstance(e, A.EConstInt):
            dest = self.fresh()
            self.emit(IRInstr("const", dest, [e.value]))
            return dest
        if isinstance(e, A.EBinary):
            return self.binary(e)
        if isinstance(e, A.EUnary):
            if e.op == "-":
                zero = self.fresh()
                self.emit(IRInstr("const", zero, [0]))
                operand = self.expr(e.operand)
                dest = self.fresh()
                self.emit(IRInstr("sub", dest, [zero, operand]))
                return dest
            if e.op == "+":
                return self.expr(e.operand)
            if e.op == "!":
                operand = self.expr(e.operand)
                zero = self.fresh()
                self.emit(IRInstr("const", zero, [0]))
                dest = self.fresh()
                self.emit(IRInstr("icmp", dest, [operand, zero],
                                  pred="eq"))
                return dest
            raise TvcUnsupported(f"unary {e.op}")
        if isinstance(e, A.EAssign):
            if e.op != "=":
                raise TvcUnsupported("compound assignment")
            value = self.expr(e.rhs)
            slot = self.lvalue_slot(e.lhs)
            self.emit(IRInstr("store", None, [value, slot]))
            return value
        if isinstance(e, A.ECond):
            raise TvcUnsupported("?:")
        raise TvcUnsupported(type(e).__name__)

    def binary(self, e: A.EBinary) -> str:
        ops = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
               "%": "srem", "&": "and", "|": "or", "^": "xor",
               "<<": "shl", ">>": "ashr"}
        preds = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                 ">": "sgt", ">=": "sge"}
        if e.op in ops:
            a = self.expr(e.lhs)
            b = self.expr(e.rhs)
            dest = self.fresh()
            self.emit(IRInstr(ops[e.op], dest, [a, b]))
            return dest
        if e.op in preds:
            a = self.expr(e.lhs)
            b = self.expr(e.rhs)
            dest = self.fresh()
            self.emit(IRInstr("icmp", dest, [a, b], pred=preds[e.op]))
            return dest
        raise TvcUnsupported(f"binary {e.op}")

    def lvalue_slot(self, e: A.Expr) -> str:
        if isinstance(e, A.EId):
            slot = self.slots.get(str(e.sym))
            if slot is None:
                raise TvcUnsupported(f"unknown variable {e.sym}")
            return slot
        raise TvcUnsupported("non-variable lvalue")

    # -- statements ---------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> bool:
        """Translate; returns True if the statement always transfers
        control (so the block is terminated)."""
        if isinstance(s, A.SBlock):
            for item in s.items:
                if self.stmt(item):
                    return True
            return False
        if isinstance(s, A.SDecl):
            ty = s.qty.ty
            if not (isinstance(ty, Integer) and ty.kind is IntKind.INT):
                raise TvcUnsupported("non-int local")
            slot = self.fresh("slot")
            self.slots[str(s.sym)] = slot
            self.emit(IRInstr("alloca", slot, []))
            if s.init is not None:
                if not isinstance(s.init, A.InitScalar):
                    raise TvcUnsupported("aggregate init")
                value = self.expr(s.init.expr)
                self.emit(IRInstr("store", None, [value, slot]))
            return False
        if isinstance(s, A.SExpr):
            if s.expr is not None:
                self.expr(s.expr)
            return False
        if isinstance(s, A.SReturn):
            if s.expr is None:
                raise TvcUnsupported("return without value")
            value = self.expr(s.expr)
            self.emit(IRInstr("ret", None, [value]))
            return True
        if isinstance(s, A.SIf):
            cond = self.expr(s.cond)
            then_b = self.new_block("then")
            else_b = self.new_block("else")
            join_b = self.new_block("join")
            self.emit(IRInstr("condbr", None,
                              [cond, then_b.label, else_b.label]))
            self.current = then_b
            done_then = self.stmt(s.then)
            if not done_then:
                self.emit(IRInstr("br", None, [join_b.label]))
            self.current = else_b
            done_else = self.stmt(s.els) if s.els is not None else False
            if not done_else:
                self.emit(IRInstr("br", None, [join_b.label]))
            self.current = join_b
            return False
        if isinstance(s, A.SWhile):
            if s.loc_hint == "do" or s.step is not None:
                raise TvcUnsupported("do/for loop")
            head = self.new_block("head")
            body = self.new_block("body")
            exit_b = self.new_block("exit")
            self.emit(IRInstr("br", None, [head.label]))
            self.current = head
            cond = self.expr(s.cond)
            self.emit(IRInstr("condbr", None,
                              [cond, body.label, exit_b.label]))
            self.current = body
            if not self.stmt(s.body):
                self.emit(IRInstr("br", None, [head.label]))
            self.current = exit_b
            return False
        raise TvcUnsupported(type(s).__name__)


def translate_main(program: A.Program) -> IRFunction:
    """Translate the ``main`` of a Typed Ail program (tvc class)."""
    if program.main is None:
        raise TvcUnsupported("no main")
    if len(program.functions) != \
            len([f for f in program.functions.values()
                 if f.body is None]) + 1:
        raise TvcUnsupported("more than one defined function")
    if any(obj for obj in program.objects):
        raise TvcUnsupported("global objects")
    main = program.functions[program.main]
    fty = main.qty.ty
    assert isinstance(fty, Function)
    if fty.params or not isinstance(fty.ret.ty, Integer):
        raise TvcUnsupported("main must be int(void)")
    tr = _Translator()
    assert main.body is not None
    if not tr.stmt(main.body):
        zero = tr.fresh()
        tr.emit(IRInstr("const", zero, [0]))
        tr.emit(IRInstr("ret", None, [zero]))
    return tr.fn
