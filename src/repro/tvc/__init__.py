"""tvc: a prototype translation validator (paper §6).

The paper's tvc produces Coq proofs that the LLVM IR emitted by Clang's
front end (under the Vellvm semantics) refines Cerberus, for extremely
simple single-function programs. Here the "compiler front end" is a
proxy translator from Typed Ail to a small Vellvm-flavoured SSA-ish IR,
the IR has its own independent operational semantics, and the validator
checks behaviour inclusion (IR behaviours are a subset of the Cerberus
behaviours) instead of emitting a proof term.
"""

from .minir import IRFunction, IRInstr, run_ir
from .translate import translate_main, TvcUnsupported
from .validate import validate, TvcReport

__all__ = ["IRFunction", "IRInstr", "run_ir", "translate_main",
           "TvcUnsupported", "validate", "TvcReport"]
