"""A small Vellvm-flavoured IR with an independent operational
semantics.

Instructions operate on virtual registers and a set of stack slots
(alloca), in basic blocks ended by branches or ``ret``. Signed 32-bit
arithmetic traps on the same conditions LLVM marks poison/UB (signed
overflow with nsw semantics, division by zero, oversized shifts), so
refinement against Cerberus is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1


class IRTrap(Exception):
    """The IR execution reached undefined behaviour."""


@dataclass
class IRInstr:
    op: str                  # const/add/sub/mul/sdiv/srem/icmp/and/or/
    #                          xor/shl/ashr/alloca/load/store/br/condbr/
    #                          ret
    dest: Optional[str] = None
    args: List[Union[str, int]] = field(default_factory=list)
    pred: Optional[str] = None     # icmp predicate

    def __repr__(self) -> str:
        head = f"%{self.dest} = " if self.dest else ""
        pred = f" {self.pred}" if self.pred else ""
        return f"{head}{self.op}{pred} " + \
            ", ".join(str(a) for a in self.args)


@dataclass
class IRBlock:
    label: str
    instrs: List[IRInstr] = field(default_factory=list)


@dataclass
class IRFunction:
    name: str
    blocks: Dict[str, IRBlock] = field(default_factory=dict)
    entry: str = "entry"

    def block(self, label: str) -> IRBlock:
        if label not in self.blocks:
            self.blocks[label] = IRBlock(label)
        return self.blocks[label]

    def pretty(self) -> str:
        out = [f"define i32 @{self.name}() {{"]
        for block in self.blocks.values():
            out.append(f"{block.label}:")
            for instr in block.instrs:
                out.append(f"  {instr!r}")
        out.append("}")
        return "\n".join(out)


def _wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >= (1 << 31) else v


def run_ir(fn: IRFunction, max_steps: int = 200_000) -> int:
    """Execute; returns the i32 return value. Raises IRTrap on UB."""
    regs: Dict[str, int] = {}
    slots: Dict[str, Optional[int]] = {}
    label = fn.entry
    steps = 0

    def val(x: Union[str, int]) -> int:
        if isinstance(x, int):
            return x
        if x not in regs:
            raise IRTrap(f"use of undefined register %{x}")
        return regs[x]

    while True:
        block = fn.blocks.get(label)
        if block is None:
            raise IRTrap(f"branch to unknown block {label}")
        for instr in block.instrs:
            steps += 1
            if steps > max_steps:
                raise IRTrap("step limit")
            op = instr.op
            if op == "const":
                regs[instr.dest] = _wrap32(val(instr.args[0]))
            elif op in ("add", "sub", "mul"):
                a, b = val(instr.args[0]), val(instr.args[1])
                raw = {"add": a + b, "sub": a - b,
                       "mul": a * b}[op]
                if not (_INT_MIN <= raw <= _INT_MAX):
                    raise IRTrap(f"nsw {op} overflow")
                regs[instr.dest] = raw
            elif op == "sdiv":
                a, b = val(instr.args[0]), val(instr.args[1])
                if b == 0 or (a == _INT_MIN and b == -1):
                    raise IRTrap("sdiv UB")
                q = abs(a) // abs(b)
                regs[instr.dest] = q if (a < 0) == (b < 0) else -q
            elif op == "srem":
                a, b = val(instr.args[0]), val(instr.args[1])
                if b == 0 or (a == _INT_MIN and b == -1):
                    raise IRTrap("srem UB")
                q = abs(a) // abs(b)
                q = q if (a < 0) == (b < 0) else -q
                regs[instr.dest] = a - b * q
            elif op in ("and", "or", "xor"):
                a, b = val(instr.args[0]), val(instr.args[1])
                regs[instr.dest] = _wrap32(
                    {"and": a & b, "or": a | b, "xor": a ^ b}[op])
            elif op in ("shl", "ashr"):
                a, b = val(instr.args[0]), val(instr.args[1])
                if b < 0 or b >= 32:
                    raise IRTrap("shift amount out of range")
                if op == "shl":
                    raw = a << b
                    if not (_INT_MIN <= raw <= _INT_MAX):
                        raise IRTrap("nsw shl overflow")
                    regs[instr.dest] = raw
                else:
                    regs[instr.dest] = a >> b
            elif op == "icmp":
                a, b = val(instr.args[0]), val(instr.args[1])
                table = {"eq": a == b, "ne": a != b, "slt": a < b,
                         "sle": a <= b, "sgt": a > b, "sge": a >= b}
                regs[instr.dest] = int(table[instr.pred])
            elif op == "alloca":
                slots[instr.dest] = None
                regs[instr.dest] = 0  # opaque slot handle
            elif op == "load":
                slot = instr.args[0]
                if slot not in slots:
                    raise IRTrap(f"load from unknown slot {slot}")
                stored = slots[slot]
                if stored is None:
                    raise IRTrap(f"load of uninitialised slot {slot}")
                regs[instr.dest] = stored
            elif op == "store":
                slot = instr.args[1]
                if slot not in slots:
                    raise IRTrap(f"store to unknown slot {slot}")
                slots[slot] = val(instr.args[0])
            elif op == "br":
                label = instr.args[0]
                break
            elif op == "condbr":
                cond = val(instr.args[0])
                label = instr.args[1] if cond else instr.args[2]
                break
            elif op == "ret":
                return val(instr.args[0])
            else:
                raise IRTrap(f"unknown opcode {op}")
        else:
            raise IRTrap(f"block {block.label} falls through")
