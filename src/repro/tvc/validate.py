"""Behaviour-inclusion validation (paper §6: "the behaviours of the IR
produced by the compiler are a subset of those allowed by Cerberus")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ctypes.implementation import LP64
from ..pipeline import compile_c
from .minir import IRFunction, IRTrap, run_ir
from .translate import translate_main, TvcUnsupported


@dataclass
class TvcReport:
    source: str
    supported: bool
    validated: Optional[bool] = None
    ir_result: Optional[str] = None        # "ret:<n>" or "trap:<why>"
    cerberus_behaviours: List[str] = field(default_factory=list)
    reason: str = ""
    ir_text: str = ""


def validate(source: str, max_paths: int = 64) -> TvcReport:
    """Translate ``source``'s main to IR, run both semantics, and check
    that the IR behaviour is included in Cerberus's behaviour set.

    Undefined behaviour on the Cerberus side licenses anything on the
    IR side (refinement), so a Cerberus-UB program always validates.
    """
    pipeline = compile_c(source, LP64)
    try:
        ir = translate_main(pipeline.ail)
    except TvcUnsupported as exc:
        return TvcReport(source, supported=False, reason=str(exc))
    try:
        ret = run_ir(ir)
        ir_result = f"ret:{ret & 0xFF}"
    except IRTrap as exc:
        ir_result = f"trap:{exc}"
    exploration = pipeline.explore("provenance", max_paths=max_paths)
    behaviours = []
    ub = False
    for outcome in exploration.distinct():
        if outcome.is_ub:
            ub = True
            behaviours.append(f"ub:{outcome.ub.name}")
        elif outcome.status in ("done", "exit"):
            behaviours.append(f"ret:{(outcome.exit_code or 0) & 0xFF}")
        else:
            behaviours.append(outcome.status)
    if ub:
        validated = True   # UB licenses any IR behaviour
    else:
        validated = ir_result in behaviours
    return TvcReport(source, supported=True, validated=validated,
                     ir_result=ir_result,
                     cerberus_behaviours=sorted(behaviours),
                     ir_text=ir.pretty())
