"""The Core evaluator (paper §5.2).

``eval_pure`` is a big-step evaluator for pure Core expressions; it may
raise :class:`UndefinedBehaviour` (reaching ``undef``) but touches no
memory state.

``eval_expr`` is a Python *generator*: every interaction with the memory
object model (actions, ptrops), every nondeterministic choice, and every
I/O is yielded as a request to the driver, which owns the memory model
and the oracle. Scheduling of ``unseq`` interleavings happens inside the
``EUnseq`` frame itself by advancing child generators one request at a
time, with oracle-chosen orders; atomic pairs and indeterminately
sequenced function bodies temporarily lock scheduling to one child
(paper §5.6: "let atomic ... prevents indeterminate sequencing putting
other memory actions between them").

Evaluation of every effectful sub-expression returns ``(value,
ActionSummary)``; the sequencing combinators compose the summaries and
detect unsequenced races (§6.5p2) as described in
:mod:`repro.dynamics.actions`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from ..core import ast as K
from ..ctypes import convert
from ..ctypes.types import (
    CType, Floating, Integer, IntKind, Pointer, QualType,
)
from ..errors import InternalError, StaticError
from ..memory.base import MemoryError_, MemoryModel
from ..memory.values import (
    FloatingValue, IntegerValue, PointerValue, combine_provenance,
)
from .. import ub as UB
from ..ub import UndefinedBehaviour
from .actions import ActionSummary, find_unsequenced_race
from .values import (
    FALSE, TRUE, UNIT, Value, VBool, VCtype, VFloating, VFunction,
    VInteger, VList, VPointer, VScopeList, VSpecified, VTuple, VUnit,
    VUnspecified, match_pattern, truthy,
)

# The Core-environment key under which the innermost EScope exposes its
# created-object list (VLA creates register for scope-exit kills).
_SCOPE_CREATED = "__scope.created__"

_region_counter = itertools.count(1)


class RunSignal(Exception):
    """Control transfer to a dynamically enclosing ``save``.

    (Note: ``run_args``, not ``args`` — the latter is Exception's own.)
    """

    def __init__(self, label: str, run_args: List[Value]):
        super().__init__(label)
        self.label = label
        self.run_args = run_args


class ProcReturn(Exception):
    """Core ``return(pe)`` unwinding to the procedure-call boundary."""

    def __init__(self, value: Value):
        self.value = value
        super().__init__("return")


class ProgramExit(Exception):
    """C ``exit()`` / ``abort()``."""

    def __init__(self, code: int, aborted: bool = False):
        self.code = code
        self.aborted = aborted
        super().__init__(f"exit({code})")


EffGen = Generator[tuple, object, Tuple[Value, ActionSummary]]


class Evaluator:
    def __init__(self, program: K.Program, model: MemoryModel,
                 static_prune: bool = False):
        self.program = program
        self.model = model
        self.impl = program.impl
        self.tags = program.tags
        self.static_prune = static_prune
        # Unseq nodes executed sequentially because static analysis
        # proved every interleaving equivalent — read by the driver's
        # obs wrapper after each run (never reported per step).
        self.static_unseq_skips = 0
        self.global_env: Dict[str, Value] = {}
        # Unseq frames are numbered so scheduling choices and the
        # actions they schedule can be attributed to (frame, child)
        # pairs — the metadata channel partial-order reduction feeds
        # on.  The counter is per-evaluator (not global) so that a
        # deterministic replay reproduces identical frame ids.
        self._unseq_counter = itertools.count(1)
        from ..libc.builtins import NATIVE_PROCS
        self.native_procs = dict(NATIVE_PROCS)

    # ==================== pure evaluation ==================================

    def eval_pure(self, pe: K.Pexpr, env: Dict[str, Value]) -> Value:
        if isinstance(pe, K.PSym):
            if pe.name in env:
                return env[pe.name]
            if pe.name in self.global_env:
                return self.global_env[pe.name]
            raise InternalError(f"unbound Core symbol {pe.name}", pe.loc)
        if isinstance(pe, K.PVal):
            return pe.value  # type: ignore[return-value]
        if isinstance(pe, K.PImpl):
            value = self.program.impl_constants.get(pe.name)
            if value is None:
                raise InternalError(f"unknown impl constant {pe.name}",
                                    pe.loc)
            return value  # type: ignore[return-value]
        if isinstance(pe, K.PUndef):
            raise UndefinedBehaviour(pe.ub, pe.loc)
        if isinstance(pe, K.PError):
            raise StaticError(pe.msg, pe.loc)
        if isinstance(pe, K.PCtor):
            return self._ctor(pe, env)
        if isinstance(pe, K.PCase):
            scrut = self.eval_pure(pe.scrutinee, env)
            for pat, body in pe.branches:
                bindings = match_pattern(pat, scrut)
                if bindings is not None:
                    env2 = dict(env)
                    env2.update(bindings)
                    return self.eval_pure(body, env2)
            raise InternalError(f"no matching case branch for {scrut!r}",
                                pe.loc)
        if isinstance(pe, K.PArrayShift):
            ptr = self._as_pointer(self.eval_pure(pe.ptr, env), pe.loc)
            idx = self._as_integer(self.eval_pure(pe.index, env), pe.loc)
            try:
                return VPointer(self.model.array_shift(ptr, pe.elem_ty,
                                                       idx))
            except MemoryError_ as me:
                raise UndefinedBehaviour(me.entry, pe.loc,
                                         me.detail) from None
        if isinstance(pe, K.PMemberShift):
            ptr = self._as_pointer(self.eval_pure(pe.ptr, env), pe.loc)
            try:
                return VPointer(self.model.member_shift(ptr, pe.tag,
                                                        pe.member))
            except MemoryError_ as me:
                raise UndefinedBehaviour(me.entry, pe.loc,
                                         me.detail) from None
        if isinstance(pe, K.PNot):
            return VBool(not truthy(self.eval_pure(pe.operand, env)))
        if isinstance(pe, K.PBinop):
            return self._binop(pe, env)
        if isinstance(pe, K.PLet):
            bound = self.eval_pure(pe.bound, env)
            bindings = match_pattern(pe.pat, bound)
            if bindings is None:
                raise InternalError("refutable pure let pattern", pe.loc)
            env2 = dict(env)
            env2.update(bindings)
            return self.eval_pure(pe.body, env2)
        if isinstance(pe, K.PIf):
            cond = self.eval_pure(pe.cond, env)
            branch = pe.then if truthy(cond) else pe.els
            return self.eval_pure(branch, env)
        if isinstance(pe, K.PCall):
            return self._pure_call(pe, env)
        if isinstance(pe, K.PStruct):
            from ..memory.values import MVStruct
            from .values import VMemStruct, core_to_mem
            members = []
            defn = self.tags.require(pe.tag)
            for name, sub in pe.members:
                v = self.eval_pure(sub, env)
                m = defn.member(name)
                members.append((name, core_to_mem(m.qty.ty, v)))
            return VMemStruct(MVStruct(pe.tag, tuple(members)))
        if isinstance(pe, K.PUnion):
            from ..memory.values import MVUnion
            from .values import VMemStruct, core_to_mem
            defn = self.tags.require(pe.tag)
            m = defn.member(pe.member)
            v = self.eval_pure(pe.value, env)
            return VMemStruct(MVUnion(pe.tag, pe.member,
                                      core_to_mem(m.qty.ty, v)))
        raise InternalError(f"eval_pure: unhandled {type(pe).__name__}",
                            pe.loc)

    def _ctor(self, pe: K.PCtor, env: Dict[str, Value]) -> Value:
        args = [self.eval_pure(a, env) for a in pe.args]
        ctor = pe.ctor
        if ctor == "Specified":
            return VSpecified(args[0])
        if ctor == "Unspecified":
            ty = args[0]
            assert isinstance(ty, VCtype)
            return VUnspecified(ty.ty)
        if ctor == "Tuple":
            return VTuple(tuple(args))
        if ctor == "Nil":
            return VList(())
        if ctor == "Cons":
            tail = args[1]
            assert isinstance(tail, VList)
            return VList((args[0],) + tail.items)
        if ctor == "Unit":
            return UNIT
        if ctor == "True":
            return TRUE
        if ctor == "False":
            return FALSE
        raise InternalError(f"unknown constructor {ctor}", pe.loc)

    # ---- integer / boolean binops ---------------------------------------------

    def _binop(self, pe: K.PBinop, env: Dict[str, Value]) -> Value:
        op = pe.op
        a = self.eval_pure(pe.lhs, env)
        if op == "/\\":
            if not truthy(a):
                return FALSE
            return VBool(truthy(self.eval_pure(pe.rhs, env)))
        if op == "\\/":
            if truthy(a):
                return TRUE
            return VBool(truthy(self.eval_pure(pe.rhs, env)))
        b = self.eval_pure(pe.rhs, env)
        if isinstance(a, VBool) or isinstance(b, VBool):
            if op == "==":
                return VBool(a == b)
            if op == "!=":
                return VBool(a != b)
            raise InternalError(f"boolean binop {op}", pe.loc)
        if isinstance(a, VFloating) or isinstance(b, VFloating):
            return self._float_binop(op, a, b, pe)
        ia = self._as_integer(a, pe.loc)
        ib = self._as_integer(b, pe.loc)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            table = {
                "==": ia.value == ib.value, "!=": ia.value != ib.value,
                "<": ia.value < ib.value, "<=": ia.value <= ib.value,
                ">": ia.value > ib.value, ">=": ia.value >= ib.value,
            }
            return VBool(table[op])
        math = self._int_math(op, ia.value, ib.value, pe.loc)
        # Model hook (CHERI capability-offset arithmetic, §4).
        hooked = getattr(self.model, "int_binop", None)
        if hooked is not None:
            special = self.model.int_binop(op, ia, ib, math)
            if special is not None:
                return VInteger(special)
        prov = combine_provenance(ia.prov, ib.prov)
        if op == "-" and ia.prov is not None and ia.prov == ib.prov:
            prov = None  # intra-object difference is a pure offset (§5.9)
        return VInteger(IntegerValue(math, prov))

    def _int_math(self, op: str, a: int, b: int, loc) -> int:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "^":
            return a ** b
        if op in ("/", "rem_t"):
            if b == 0:
                raise UndefinedBehaviour(UB.DIVISION_BY_ZERO, loc)
            q = abs(a) // abs(b)
            q = q if (a < 0) == (b < 0) else -q
            return q if op == "/" else a - b * q
        if op == "rem_f":
            if b == 0:
                raise UndefinedBehaviour(UB.DIVISION_BY_ZERO, loc)
            return a % b
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        raise InternalError(f"unknown integer binop {op}", loc)

    def _float_binop(self, op: str, a: Value, b: Value,
                     pe: K.PBinop) -> Value:
        fa = a.fval.value if isinstance(a, VFloating) else \
            float(self._as_integer(a, pe.loc).value)
        fb = b.fval.value if isinstance(b, VFloating) else \
            float(self._as_integer(b, pe.loc).value)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            table = {"==": fa == fb, "!=": fa != fb, "<": fa < fb,
                     "<=": fa <= fb, ">": fa > fb, ">=": fa >= fb}
            return VBool(table[op])
        try:
            table = {"+": fa + fb, "-": fa - fb, "*": fa * fb,
                     "/": fa / fb if fb != 0.0 else _float_div(fa, fb)}
            return VFloating(FloatingValue(table[op]))
        except KeyError:
            raise InternalError(f"float binop {op}", pe.loc) from None

    # ---- native pure auxiliary functions (Fig. 3's helpers) ----------------------

    def _pure_call(self, pe: K.PCall, env: Dict[str, Value]) -> Value:
        name = pe.name
        fun = self.program.funs.get(name)
        if fun is not None:
            args = [self.eval_pure(a, env) for a in pe.args]
            env2 = dict(zip(fun.params, args))
            return self.eval_pure(fun.body, env2)
        args = [self.eval_pure(a, env) for a in pe.args]
        return self._native_pure(name, args, pe)

    def _native_pure(self, name: str, args: List[Value],
                     pe: K.PCall) -> Value:
        impl = self.impl
        if name == "conv_int":
            ty = self._as_ctype(args[0], pe.loc)
            assert isinstance(ty, Integer)
            iv = self._as_integer(args[1], pe.loc)
            converted, _ = convert.convert_integer_value(iv.value, ty,
                                                         impl)
            return VInteger(IntegerValue(converted, iv.prov, iv.meta))
        if name == "wrapI":
            ty = self._as_ctype(args[0], pe.loc)
            assert isinstance(ty, Integer)
            iv = self._as_integer(args[1], pe.loc)
            w = impl.width(ty.kind)
            return VInteger(IntegerValue(iv.value & ((1 << w) - 1),
                                         iv.prov, iv.meta))
        if name == "is_representable":
            iv = self._as_integer(args[0], pe.loc)
            ty = self._as_ctype(args[1], pe.loc)
            assert isinstance(ty, Integer)
            return VBool(convert.is_representable(iv.value, ty, impl))
        if name == "ctype_width":
            ty = self._as_ctype(args[0], pe.loc)
            assert isinstance(ty, Integer)
            return VInteger(IntegerValue(impl.width(ty.kind)))
        if name == "ivmax":
            ty = self._as_ctype(args[0], pe.loc)
            assert isinstance(ty, Integer)
            return VInteger(IntegerValue(impl.int_max(ty.kind)))
        if name == "ivmin":
            ty = self._as_ctype(args[0], pe.loc)
            assert isinstance(ty, Integer)
            return VInteger(IntegerValue(impl.int_min(ty.kind)))
        if name == "is_unsigned":
            ty = self._as_ctype(args[0], pe.loc)
            return VBool(isinstance(ty, Integer)
                         and not impl.is_signed(ty.kind))
        if name == "is_signed":
            ty = self._as_ctype(args[0], pe.loc)
            return VBool(isinstance(ty, Integer)
                         and impl.is_signed(ty.kind))
        if name == "sizeof":
            ty = self._as_ctype(args[0], pe.loc)
            return VInteger(IntegerValue(impl.sizeof(ty, self.tags)))
        if name == "alignof":
            ty = self._as_ctype(args[0], pe.loc)
            return VInteger(IntegerValue(impl.alignof(ty, self.tags)))
        if name == "int_to_float":
            iv = self._as_integer(args[0], pe.loc)
            return VFloating(FloatingValue(float(iv.value)))
        if name == "float_to_int":
            fv = args[0]
            assert isinstance(fv, VFloating)
            return VInteger(IntegerValue(int(fv.fval.value)))
        if name == "float_of":
            v = args[0]
            if isinstance(v, VFloating):
                return v
            return VFloating(FloatingValue(
                float(self._as_integer(v, pe.loc).value)))
        if name == "conv_bits":
            # The value a bit-field holds after a store: truncate the
            # loaded value to the field width, sign-extending when the
            # declared type is signed (GCC/Clang semantics for the
            # implementation-defined signed case, §6.3.1.3p3).
            ty = self._as_ctype(args[0], pe.loc)
            assert isinstance(ty, Integer)
            width = self._as_integer(args[1], pe.loc).value
            loaded = args[2]
            if isinstance(loaded, VUnspecified):
                return loaded
            iv = self._as_integer(loaded, pe.loc)
            raw = iv.value & ((1 << width) - 1)
            if impl.is_signed(ty.kind) and ty.kind is not IntKind.BOOL \
                    and (raw >> (width - 1)) & 1:
                raw -= 1 << width
            return VSpecified(VInteger(IntegerValue(raw, iv.prov)))
        if name == "not_bool":
            return VBool(not truthy(args[0]))
        if name == "ptr_nonnull":
            ptr = self._as_pointer(args[0], pe.loc)
            return VBool(ptr.addr != 0)
        if name == "mem_array":
            from ..memory.values import MVArray
            from .values import VMemStruct, core_to_mem
            elem_ty = self._as_ctype(args[0], pe.loc)
            elems = tuple(core_to_mem(elem_ty, a) for a in args[1:])
            return VMemStruct(MVArray(elem_ty, elems))
        raise InternalError(f"unknown pure function {name}", pe.loc)

    # ---- coercions --------------------------------------------------------------

    @staticmethod
    def _as_integer(v: Value, loc) -> IntegerValue:
        if isinstance(v, VInteger):
            return v.ival
        if isinstance(v, VSpecified):
            return Evaluator._as_integer(v.value, loc)
        raise InternalError(f"expected integer value, got {v!r}", loc)

    @staticmethod
    def _as_pointer(v: Value, loc) -> PointerValue:
        if isinstance(v, VPointer):
            return v.ptr
        if isinstance(v, VSpecified):
            return Evaluator._as_pointer(v.value, loc)
        raise InternalError(f"expected pointer value, got {v!r}", loc)

    @staticmethod
    def _as_ctype(v: Value, loc) -> CType:
        if isinstance(v, VCtype):
            return v.ty
        raise InternalError(f"expected ctype value, got {v!r}", loc)

    # ==================== effectful evaluation ================================

    def eval_expr(self, e: K.Expr, env: Dict[str, Value]) -> EffGen:
        if isinstance(e, K.EPure):
            return (self.eval_pure(e.pe, env), ActionSummary.empty())
        if isinstance(e, K.EPtrOp):
            return (yield from self._ptrop(e, env))
        if isinstance(e, K.EAction):
            value, record = yield from self._action(e.action, env)
            return value, ActionSummary.single(record)
        if isinstance(e, K.ECase):
            scrut = self.eval_pure(e.scrutinee, env)
            for pat, body in e.branches:
                bindings = match_pattern(pat, scrut)
                if bindings is not None:
                    env2 = dict(env)
                    env2.update(bindings)
                    return (yield from self.eval_expr(body, env2))
            raise InternalError(f"no matching case branch for {scrut!r}",
                                e.loc)
        if isinstance(e, K.ELet):
            bound = self.eval_pure(e.bound, env)
            bindings = match_pattern(e.pat, bound)
            if bindings is None:
                raise InternalError("refutable let pattern", e.loc)
            env2 = dict(env)
            env2.update(bindings)
            return (yield from self.eval_expr(e.body, env2))
        if isinstance(e, K.EIf):
            cond = self.eval_pure(e.cond, env)
            branch = e.then if truthy(cond) else e.els
            return (yield from self.eval_expr(branch, env))
        if isinstance(e, K.ESkip):
            return UNIT, ActionSummary.empty()
        if isinstance(e, K.EProc):
            return (yield from self._proc_call(e, env))
        if isinstance(e, K.ECcall):
            return (yield from self._ccall(e, env))
        if isinstance(e, K.EUnseq):
            return (yield from self._unseq(e, env))
        if isinstance(e, K.EWseq):
            return (yield from self._wseq(e, env))
        if isinstance(e, K.ESseq):
            v1, s1 = yield from self.eval_expr(e.first, env)
            bindings = match_pattern(e.pat, v1)
            if bindings is None:
                raise InternalError("refutable strong-let pattern", e.loc)
            env2 = dict(env)
            env2.update(bindings)
            v2, s2 = yield from self.eval_expr(e.second, env2)
            return v2, s1.union(s2)
        if isinstance(e, K.EAtomicSeq):
            return (yield from self._atomic_seq(e, env))
        if isinstance(e, (K.EIndet, K.EBound)):
            return (yield from self.eval_expr(e.body, env))
        if isinstance(e, K.ENd):
            idx = 0
            if len(e.exprs) > 1:
                idx = yield ("choose", "nd", len(e.exprs))
            return (yield from self.eval_expr(e.exprs[idx], env))
        if isinstance(e, K.ESave):
            return (yield from self._save(e, env))
        if isinstance(e, K.ERun):
            args = [self.eval_pure(a, env) for a in e.args]
            raise RunSignal(e.label, args)
        if isinstance(e, K.EReturn):
            raise ProcReturn(self.eval_pure(e.pe, env))
        if isinstance(e, K.EScope):
            return (yield from self._scope(e, env))
        if isinstance(e, K.EVlaCreate):
            return (yield from self._vla_create(e, env))
        if isinstance(e, K.EPar):
            return (yield from self._par(e, env))
        if isinstance(e, K.EWait):
            tid = self._as_integer(self.eval_pure(e.thread, env),
                                   e.loc).value
            value = yield ("wait", tid)
            return value, ActionSummary.empty()
        raise InternalError(f"eval_expr: unhandled {type(e).__name__}",
                            e.loc)

    # ---- actions and ptrops -----------------------------------------------------

    def _action(self, action: K.Action, env: Dict[str, Value]):
        args = [self.eval_pure(a, env) for a in action.args]
        # The trailing () is the scheduling chain: each enclosing unseq
        # frame appends its (frame, child) pair as the request bubbles
        # up, so the driver can attribute the action for POR.
        result = yield ("action", action.kind, args, action.polarity,
                        action.order, action.loc, ())
        return result  # (value, ActionRecord)

    def _ptrop(self, e: K.EPtrOp, env: Dict[str, Value]) -> EffGen:
        args = [self.eval_pure(a, env) for a in e.args]
        value = yield ("ptrop", e.op, args, e.aux, e.loc)
        return value, ActionSummary.empty()

    # ---- procedure and C function calls --------------------------------------------

    def _proc_call(self, e: K.EProc, env: Dict[str, Value]) -> EffGen:
        args = [self.eval_pure(a, env) for a in e.args]
        return (yield from self.call_proc(e.name, args, e.loc))

    def call_proc(self, name: str, args: List[Value], loc) -> EffGen:
        proc = self.program.procs.get(name)
        if proc is None:
            native = self.native_procs.get(name)
            if native is None:
                raise InternalError(f"unknown procedure {name}", loc)
            value = yield from native(self, args, loc)
            return value, ActionSummary.empty()
        env = dict(self.global_env)
        if len(proc.params) != len(args) and not proc.variadic:
            raise InternalError(
                f"arity mismatch calling {name}: {len(args)} args for "
                f"{len(proc.params)} params", loc)
        env.update(zip(proc.params, args))
        if proc.variadic:
            env["__varargs__"] = VList(tuple(args[len(proc.params):]))
        try:
            value, summary = yield from self.eval_expr(proc.body, env)
        except ProcReturn as r:
            return r.value, ActionSummary.empty()
        return value, summary

    def run_glob_init(self, g: K.GlobDef) -> EffGen:
        """The generator evaluating one global's initialiser (the
        backend-neutral entry point the driver drains at startup)."""
        return self.eval_expr(g.init, {})

    def _ccall(self, e: K.ECcall, env: Dict[str, Value]) -> EffGen:
        fn = self.eval_pure(e.fn, env)
        args = [self.eval_pure(a, env) for a in e.args]
        name = self._function_name(fn, e.loc)
        region = next(_region_counter)
        yield ("lock", 1)
        # No unlock on exception: an exception here is a whole-execution
        # teardown (UB/exit) or a generator close — yielding during
        # either is illegal.
        value, summary = yield from self.call_proc(name, args, e.loc)
        yield ("lock", -1)
        return value, summary.tag_region(region)

    def _function_name(self, fn: Value, loc) -> str:
        if isinstance(fn, VFunction):
            return fn.name
        if isinstance(fn, VSpecified):
            return self._function_name(fn.value, loc)
        if isinstance(fn, VPointer):
            meta = fn.ptr.meta
            if isinstance(meta, tuple) and meta and meta[0] == "func":
                return meta[1]
            raise UndefinedBehaviour(
                UB.INDIRECTION_INVALID_FUNCTION_POINTER, loc,
                f"call through {fn.ptr!r}")
        raise UndefinedBehaviour(UB.INDIRECTION_INVALID_FUNCTION_POINTER,
                                 loc, f"call of non-function {fn!r}")

    # ---- sequencing ------------------------------------------------------------------

    def _unseq(self, e: K.EUnseq, env: Dict[str, Value]) -> EffGen:
        """Interleave the children at action granularity (§5.6).

        Scheduling decisions are made only at *action* boundaries: all
        other requests (nested choices, locks, raw services) commute,
        so re-choosing after each of them would multiply choice points
        exponentially in nested unseqs without adding behaviours.

        Every scheduling choice (even arity-1, which the sleep-set
        scheduler may still need to veto) is yielded with a metadata
        channel ``(frame, candidates)``, and every action request is
        annotated with this frame's ``(frame, child)`` pair on its way
        up — together they let the explorer recover each candidate's
        pending action footprint for partial-order reduction.

        With ``static_prune`` on and a ``_static_unseq`` annotation
        present (:mod:`repro.statics`), two refinements apply ahead of
        the dynamic machinery: a statically-commuting node is not a
        choice point at all (children run in program order — every
        interleaving is equivalent), and otherwise each child's
        statically-resolved footprint hull rides along as a third
        metadata component, from which the POR scheduler seeds sleep
        decisions when the event log has no exact footprint yet.
        """
        static = getattr(e, "_static_unseq", None) \
            if self.static_prune else None
        if static is not None and static[0]:
            self.static_unseq_skips += 1
            results = []
            summaries = []
            for child in e.exprs:
                value, summary = yield from self.eval_expr(child, env)
                results.append(value)
                summaries.append(summary)
            # Safety net: the commuting claim promises equivalence of
            # interleavings, not absence of races — a race here would
            # mean an analysis bug, but must still surface as UB.
            race = find_unsequenced_race(
                [s.records for s in summaries])
            if race is not None:
                a, b = race
                raise UndefinedBehaviour(
                    UB.UNSEQUENCED_RACE, e.loc,
                    f"unsequenced {a.kind} and {b.kind} on "
                    f"overlapping footprints at "
                    f"0x{a.footprint.addr:x}")
            total = ActionSummary.empty().union(*summaries)
            return VTuple(tuple(results)), total
        hulls = None
        if static is not None:
            from ..statics import resolve_hull
            hulls = tuple(
                resolve_hull(info, env, self.global_env, self.model)
                for info in static[1])
        gens = [self.eval_expr(c, env) for c in e.exprs]
        n = len(gens)
        frame = next(self._unseq_counter)
        done: List[bool] = [False] * n
        started: List[bool] = [False] * n
        results: List[Optional[Value]] = [None] * n
        summaries: List[ActionSummary] = [ActionSummary.empty()] * n
        responses: List[object] = [None] * n
        locks: List[int] = [0] * n
        current: Optional[int] = None
        while not all(done):
            locked = [i for i in range(n) if locks[i] > 0]
            if locked:
                candidates = locked
            else:
                candidates = [i for i in range(n) if not done[i]]
            if current is None or done[current] or \
                    current not in candidates:
                cand = tuple(candidates)
                meta = (frame, cand) if hulls is None else \
                    (frame, cand, tuple(hulls[i] for i in cand))
                pick = yield ("choose", "unseq", len(candidates),
                              meta)
                current = candidates[pick]
            idx = current
            gen = gens[idx]
            try:
                if not started[idx]:
                    started[idx] = True
                    request = next(gen)
                else:
                    request = gen.send(responses[idx])
            except StopIteration as stop:
                done[idx] = True
                current = None
                value, summary = stop.value
                results[idx] = value
                summaries[idx] = summary
                continue
            if request[0] == "lock":
                locks[idx] += request[1]
            elif request[0] == "action":
                chain = request[6] if len(request) > 6 else ()
                request = request[:6] + (chain + ((frame, idx),),)
            responses[idx] = yield request
            if request[0] in ("action", "raw", "stdout") and \
                    locks[idx] == 0:
                current = None  # scheduling point after each action
        race = find_unsequenced_race([s.records for s in summaries])
        if race is not None:
            a, b = race
            raise UndefinedBehaviour(
                UB.UNSEQUENCED_RACE, e.loc,
                f"unsequenced {a.kind} and {b.kind} on overlapping "
                f"footprints at 0x{a.footprint.addr:x}")
        total = ActionSummary.empty().union(*summaries)
        return VTuple(tuple(results)), total  # type: ignore[arg-type]

    def _wseq(self, e: K.EWseq, env: Dict[str, Value]) -> EffGen:
        v1, s1 = yield from self.eval_expr(e.first, env)
        bindings = match_pattern(e.pat, v1)
        if bindings is None:
            raise InternalError("refutable weak-let pattern", e.loc)
        env2 = dict(env)
        env2.update(bindings)
        v2, s2 = yield from self.eval_expr(e.second, env2)
        # Negative actions of e1 are unsequenced w.r.t. all of e2.
        race = find_unsequenced_race([s1.negatives(), s2.records])
        if race is not None:
            a, b = race
            raise UndefinedBehaviour(
                UB.UNSEQUENCED_RACE, e.loc,
                f"store side effect unsequenced with {b.kind} at "
                f"0x{b.footprint.addr:x}")
        return v2, s1.union(s2)

    def _atomic_seq(self, e: K.EAtomicSeq, env: Dict[str, Value]) -> EffGen:
        yield ("lock", 1)
        v1, rec1 = yield from self._action(e.first, env)
        env2 = dict(env)
        env2[e.sym] = v1
        _v2, rec2 = yield from self._action(e.second, env2)
        yield ("lock", -1)
        summary = ActionSummary([rec1, rec2])
        # The value of the atomic pair is the first action's (the loaded
        # pre-increment value, which is the value of x++).
        return v1, summary

    # ---- save / run -------------------------------------------------------------------

    def _save(self, e: K.ESave, env: Dict[str, Value]) -> EffGen:
        values = [self.eval_pure(d, env) for _, d in e.params]
        names = [name for name, _ in e.params]
        total = ActionSummary.empty()
        while True:
            env2 = dict(env)
            env2.update(zip(names, values))
            try:
                value, summary = yield from self.eval_expr(e.body, env2)
                return value, total.union(summary)
            except RunSignal as r:
                if r.label != e.label:
                    raise
                if len(r.run_args) != len(names):
                    raise InternalError(
                        f"run {e.label} arity mismatch", e.loc) from None
                values = r.run_args
                # Account a step per loop re-establishment so that
                # effect-free infinite loops (`while (1) ;`) still hit
                # the driver's step budget.
                yield ("tick",)

    # ---- scoped lifetimes ----------------------------------------------------------------

    def _vla_create(self, e: K.EVlaCreate, env: Dict[str, Value]) -> \
            EffGen:
        """Create a runtime-sized array object (the VLA declaration
        point) and register it with the innermost scope's kill set."""
        n = self._as_integer(self.eval_pure(e.size, env), e.loc)
        align = self.impl.alignof(e.elem_ty, self.tags)
        value, record = yield ("action", "create_vla",
                               [VInteger(IntegerValue(align)),
                                VCtype(e.elem_ty), VInteger(n),
                                e.prefix],
                               "pos", "na", e.loc, ())
        holder = env.get(_SCOPE_CREATED)
        if isinstance(holder, VScopeList):
            holder.items.append(value)
        return value, ActionSummary.single(record)

    def _scope(self, e: K.EScope, env: Dict[str, Value]) -> EffGen:
        env2 = dict(env)
        created: List[Value] = []
        env2[_SCOPE_CREATED] = VScopeList(created)
        summary = ActionSummary.empty()
        for sc in e.creates:
            align = self.impl.alignof(sc.ty, self.tags)
            value, record = yield ("action", "create",
                                   [VInteger(IntegerValue(align)),
                                    VCtype(sc.ty),
                                    sc.prefix, sc.readonly],
                                   "pos", "na", sc.loc, ())
            env2[sc.sym] = value
            created.append(value)
            summary = summary.union(ActionSummary.single(record))
        try:
            value, body_summary = yield from self.eval_expr(e.body, env2)
        except (RunSignal, ProcReturn) as signal:
            yield from self._kill_scope(created, e)
            raise signal
        kill_summary = yield from self._kill_scope(created, e)
        return value, summary.union(body_summary, kill_summary)

    def _kill_scope(self, created: List[Value], e: K.EScope):
        summary = ActionSummary.empty()
        for v in reversed(created):
            _, record = yield ("action", "kill", [v, VBool(False)],
                               "pos", "na", e.loc, ())
            summary = summary.union(ActionSummary.single(record))
        return summary

    # ---- threads ------------------------------------------------------------------------------

    def _par(self, e: K.EPar, env: Dict[str, Value]) -> EffGen:
        tids = []
        for sub in e.exprs:
            tid = yield ("spawn", self.eval_expr(sub, env))
            tids.append(tid)
        results = []
        for tid in tids:
            value = yield ("wait", tid)
            results.append(value)
        return VTuple(tuple(results)), ActionSummary.empty()


def _float_div(a: float, b: float) -> float:
    if a == 0.0:
        return float("nan")
    return float("inf") if a > 0 else float("-inf")
