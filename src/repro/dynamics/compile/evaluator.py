"""The compiled back end's evaluator.

:class:`CompiledEvaluator` presents the exact surface the
:class:`repro.dynamics.driver.Driver` consumes from the tree
:class:`repro.dynamics.evaluator.Evaluator` — ``call_proc`` /
``run_glob_init`` generators speaking the same request protocol,
``global_env``, ``native_procs``, ``static_unseq_skips``, and the
``_as_*`` coercion helpers — but executes lowered slot-threaded
closures (:mod:`repro.dynamics.compile.lower`) instead of walking the
Core AST.

Semantic helpers that must agree bit-for-bit with the tree back end
(`_int_math`, `_float_binop`, `_native_pure`, `_function_name`, the
value coercions) are *borrowed* from the tree evaluator class rather
than re-implemented: one definition, two back ends, no drift.

The tree back end remains the oracle of record — any behavioural
dispute between the two is settled by `backend="tree"`, and the
golden-verdict conformance suite pins them byte-identical.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ...core import ast as K
from ...errors import InternalError
from ...memory.base import MemoryModel
from ..actions import ActionSummary
from ..evaluator import Evaluator, ProcReturn
from ..values import Value, VList
from .lower import LoweredProgram, ensure_lowered


class CompiledEvaluator:
    """Drop-in evaluator executing lowered closures over slot frames."""

    def __init__(self, program: K.Program, model: MemoryModel,
                 static_prune: bool = False):
        self.program = program
        self.model = model
        self.impl = program.impl
        self.tags = program.tags
        self.static_prune = static_prune
        self.static_unseq_skips = 0
        self.global_env: Dict[str, Value] = {}
        # Per-evaluator (not global) so deterministic replays reproduce
        # identical unseq frame ids — same contract as the tree back
        # end.
        self._unseq_counter = itertools.count(1)
        from ...libc.builtins import NATIVE_PROCS
        self.native_procs = dict(NATIVE_PROCS)
        self.lowered: LoweredProgram = ensure_lowered(program)
        # Static annotations are positional (collect_unseqs order ==
        # stable instruction id), and they are applied to *this*
        # program object's AST nodes.  Resolving the node table from
        # self.program rather than the lowered object keeps the
        # mapping correct when the warm-closure cache hands back a
        # LoweredProgram built from an earlier, equivalent program
        # object (same source ⇒ same deterministic elaboration ⇒ same
        # positional ids; only the node identities differ).
        from ...statics import collect_unseqs
        self._unseq_nodes = collect_unseqs(program)
        # Specialized-call-protocol telemetry: calls resolved onto the
        # direct slot-write fast path vs the generic call_proc
        # fallback (natives, unknown targets).  Surfaced by the
        # driver as compile.call_fast / compile.call_generic.
        self.call_fast = 0
        self.call_generic = 0
        # Run-mode gate: direct (non-generator) execution is only
        # sound when the program provably cannot suspend into the
        # thread scheduler (see LoweredProgram.threads_possible).
        self._run_ok = not self.lowered.threads_possible
        # Plain-run scheduling fast path, set by the driver when the
        # oracle is a plain default-0 one (no replay prefix, no rng,
        # no sleep set, no event log).  Such an oracle always picks
        # candidate 0, which makes unseq interleaving identical to
        # sequential child execution — the compiled back end then
        # skips the choose round-trips entirely (race detection is
        # kept).  The tree back end never takes this shortcut: it is
        # the oracle of record and always walks the full protocol.
        self._fast_sched = False
        # Inline request service, installed by the driver alongside
        # _fast_sched on single-threaded plain runs: hot requests
        # (action / ptrop / tick) are performed by a direct call into
        # the driver instead of suspending and resuming the whole
        # generator stack.  The driver clears it at the first thread
        # spawn — cross-thread race detection needs every action back
        # on the scheduler.  Step accounting, step limits, and
        # deadlines are identical either way.
        self._inline = None
        # CHERI capability-offset hook, resolved once instead of per
        # binop (the lowered binop closures read it directly).
        self._int_hook = getattr(model, "int_binop", None)

    # Shared semantic helpers: borrowed from the tree evaluator so the
    # two back ends cannot drift apart.  They only touch attributes
    # both classes define (impl, tags, model).
    _as_integer = Evaluator.__dict__["_as_integer"]
    _as_pointer = Evaluator.__dict__["_as_pointer"]
    _as_ctype = Evaluator.__dict__["_as_ctype"]
    _int_math = Evaluator._int_math
    _float_binop = Evaluator._float_binop
    _native_pure = Evaluator._native_pure
    _function_name = Evaluator._function_name

    def _static_info(self, uidx: int):
        """The static-analysis annotation for the unseq instruction
        with stable id ``uidx`` — the compiled-code analogue of the
        tree's ``getattr(node, "_static_unseq", None)``.  Annotations
        are attached positionally by :func:`repro.statics.
        apply_annotations`, and ``collect_unseqs`` order *is* the
        instruction-id order, so this is a live O(1) read."""
        if 0 <= uidx < len(self._unseq_nodes):
            return getattr(self._unseq_nodes[uidx], "_static_unseq",
                           None)
        return None

    # ---- procedure calls -------------------------------------------------

    def call_proc(self, name: str, args: List[Value], loc):
        lp = self.lowered.procs.get(name)
        if lp is None:
            native = self.native_procs.get(name)
            if native is None:
                raise InternalError(f"unknown procedure {name}", loc)
            value = yield from native(self, args, loc)
            return value, ActionSummary.empty()
        if len(lp.params) != len(args) and not lp.variadic:
            raise InternalError(
                f"arity mismatch calling {name}: {len(args)} args for "
                f"{len(lp.params)} params", loc)
        fr: List[Optional[Value]] = [None] * lp.frame_size
        for slot, a in zip(lp.param_slots, args):
            fr[slot] = a
        if lp.variadic:
            fr[lp.varargs_slot] = VList(tuple(args[len(lp.params):]))
        try:
            body = lp.body
            if body.pure is not None:
                value = body.pure(self, fr)
                summary = ActionSummary.empty()
            elif self._inline is not None and self._run_ok:
                # Run mode: execute the body directly — every request
                # is serviced through the driver's inline callback,
                # and this generator finishes on its first advance
                # (one StopIteration round-trip, exactly like the
                # generator path's final advance).
                value, summary = body.run(self, fr)
            else:
                value, summary = yield from body.gen(self, fr)
        except ProcReturn as r:
            return r.value, ActionSummary.empty()
        return value, summary

    def run_glob_init(self, name_or_glob):
        """The generator evaluating one global's initialiser (the
        compiled analogue of ``eval_expr(g.init, {})``)."""
        g = name_or_glob
        lg = self.lowered.globs[g.name]
        fr: List[Optional[Value]] = [None] * lg.frame_size
        body = lg.body
        if body.pure is not None:
            return _pure_gen(body.pure, self, fr)
        return body.gen(self, fr)


def _pure_gen(p, ev, fr):
    return p(ev, fr), ActionSummary.empty()
    yield  # pragma: no cover - generator marker
