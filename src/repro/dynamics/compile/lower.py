"""Core → slotted, closure-threaded linear code (the compiled back
end's lowering pass).

One pass over an elaborated :class:`repro.core.ast.Program` flattens
every procedure, pure function, and global initialiser into
pre-resolved closures:

* **Pure expressions** become plain closures ``p(ev, fr) -> Value``:
  per-node ``isinstance`` dispatch is resolved at lower time (each
  AST node becomes exactly the code it needs), and every name is
  resolved to a **frame slot** — frames are flat Python lists, one
  per procedure/function invocation, with a fresh slot allocated per
  binder (compile-time alpha-renaming), so shadowing is safe and no
  ``dict(env)`` copy ever happens at a ``let``/``case``/``sseq``
  boundary.  Names with no lexical binder compile to a
  ``global_env`` lookup, matching the tree evaluator's
  env-then-global fallback.
* **Effectful expressions** become generator closures ``e(ev, fr)``
  yielding the *exact* request protocol of
  :class:`repro.dynamics.evaluator.Evaluator` — ``("action", ...)``
  with scheduling chains, ``("choose", "unseq", n, (frame, cands[,
  hulls]))`` metadata, locks, ticks, spawns — so the driver, the
  explorer, and partial-order reduction consume compiled code with
  byte-identical traces and behaviour sets.  Statically effect-free
  subtrees additionally carry a non-generator fast path (``LE.pure``)
  that the sequencing combinators use to skip generator construction
  entirely on the hot ``let strong <pure>`` spine.
* **Run mode** (``LE.run``): every effectful form *also* carries a
  direct, non-generator executor ``run(ev, fr) -> (value, summary)``
  that services requests through the driver's inline callback
  (``ev._inline``) instead of suspending a generator stack.  The
  driver enters it through :meth:`CompiledEvaluator.call_proc` only
  on plain single-path runs of **thread-free** programs
  (``LoweredProgram.threads_possible`` is the lower-time gate: any
  ``par``/``wait`` node or any reference to a thread native keeps
  the program on the generator protocol).  Exploration always
  records events, so run mode never touches behaviour sets, path
  accounting, or the POR machinery — it is exactly the single-path
  hot loop.

**The specialized call protocol.**  Every C call elaborates to
``ECcall``; its lowering resolves the callee through a one-element
per-site inline cache (function value identity → lowered callee),
pre-builds the callee frame by direct slot writes — no generic
``call_proc`` dispatch, no intermediate generator — and, for
statically pure callee bodies, completes the call entirely on the
closure fast path with no suspension at all.  Generic fallbacks
(natives, unknown/indirect targets the cache misses on) are counted
against the fast path via ``ev.call_fast`` / ``ev.call_generic`` —
surfaced as ``compile.call_fast`` / ``compile.call_generic`` obs
counters.

**The fusion pass.**  During lowering, recurring sequences collapse
into single pre-resolved instructions, counted in
``LoweredProgram.fused``: comparison and arithmetic operands that
are frame slots or constants are read directly (no operand-closure
calls — the compare half of every compare-branch), spine steps with
irrefutable patterns become direct slot-writing instructions, and
the ``load → compute → store`` triple every C assignment elaborates
to becomes one fused load-op-store instruction in the run-mode
spine plan (the generator path keeps the unfused step list — the
explorer's request protocol is untouched).

Static-analysis annotations (:mod:`repro.statics`) are re-keyed from
AST node identity onto **stable instruction ids**: every ``unseq``
instruction captures its positional index in
:func:`repro.statics.collect_unseqs` order (the same positional basis
the persisted ``"statics"`` tables use), and resolves footprint hulls
through a slot-backed environment view at run time.

Lowering is cached on the program object (``program._lowered``); the
serializable frame/instruction layout is persisted separately as a
``"lowered"`` artifact-store record by
:meth:`repro.pipeline.CompiledProgram.lowered`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...core import ast as K
from ...ctypes.types import IntKind, Integer
from ...errors import InternalError, StaticError
from ...memory.base import MemoryError_
from ...memory.values import (
    IntegerValue, MVStruct, MVUnion, combine_provenance,
)
from ... import ub as UB
from ...ub import UndefinedBehaviour
from ..actions import ActionSummary, find_unsequenced_race
from ..evaluator import (
    ProcReturn, RunSignal, _SCOPE_CREATED, _region_counter,
)
from ..values import (
    FALSE, TRUE, UNIT, VBool, VCtype, VFloating, VInteger, VList,
    VMemStruct, VPointer, VScopeList, VSpecified, VTuple, VUnit,
    VUnspecified, core_to_mem, truthy,
)

# Version of the lowering scheme itself: bump when the slot layout,
# instruction-id basis, or closure protocol changes so persisted
# "lowered" store records from older lowerings stop validating.
#   1: PR 8 — slotted closure-threaded linear code.
#   2: PR 9 — specialized call protocol, fusion counters and the
#      threads_possible gate join the serialized layout.
LOWERED_VERSION = 2

# Natives that suspend into the thread scheduler (spawn / wait
# requests).  Any lexical reference to one of these names — or any
# `par`/`wait` Core node — marks the program "threads possible" and
# keeps it off run mode: run-mode execution cannot suspend.
_THREAD_NATIVES = frozenset(("thrd_create", "thrd_join"))

# Shared singleton request for loop-tick accounting.
_TICK = ("tick",)

# One shared empty summary for compiled fast paths.  ActionSummary is
# never mutated in place anywhere (union / tag_region build new
# objects), so sharing the empty is safe — the tree evaluator already
# relies on this with its `[empty()] * n` unseq seeding.
_EMPTY = ActionSummary()

_CMP_OPS = {
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
}

# The statics resolver is imported lazily (statics itself lazily
# imports the dynamics package) and only when an annotation is
# actually consumed.
_resolve_hull = None


def _hull_resolver():
    global _resolve_hull
    if _resolve_hull is None:
        from ...statics import resolve_hull
        _resolve_hull = resolve_hull
    return _resolve_hull


class _SlotEnvView:
    """A read-only ``env.get(name)`` adapter over a slot frame, fed to
    :func:`repro.statics.resolve_hull` so static footprint hulls
    resolve against live frame values exactly as they would against
    the tree evaluator's dict environment."""

    __slots__ = ("fr", "slots")

    def __init__(self, fr, slots):
        self.fr = fr
        self.slots = slots

    def get(self, name):
        i = self.slots.get(name)
        return None if i is None else self.fr[i]


class LE:
    """One lowered effectful expression: ``gen(ev, fr)`` builds the
    request generator; ``pure`` (when the subtree is statically
    effect-free — it cannot yield) evaluates directly to the value;
    ``run(ev, fr) -> (value, summary)`` executes directly through the
    driver's inline request service (only entered when ``ev._inline``
    is installed and the program is thread-free — see the module
    docstring's run-mode contract)."""

    __slots__ = ("gen", "pure", "run")

    def __init__(self, gen, pure=None, run=None):
        self.gen = gen
        self.pure = pure
        self.run = run


def _pure_le(p) -> LE:
    def gen(ev, fr):
        return p(ev, fr), _EMPTY
        yield  # pragma: no cover - makes this a generator function

    def run(ev, fr, _p=p):
        return _p(ev, fr), _EMPTY

    return LE(gen, p, run)


def _drive_inline(ev, gen):
    """Run-mode pump for request generators that stay generic (native
    procedures, the generic ``call_proc`` path): every yielded request
    is serviced by the driver's inline callback — same step
    accounting, same deadline checks as a scheduler round-trip."""
    inline = ev._inline
    response = None
    started = False
    while True:
        try:
            request = gen.send(response) if started else next(gen)
            started = True
        except StopIteration as stop:
            return stop.value
        response = inline(request)


class _FrameAlloc:
    """Slot allocator for one frame (one proc / fun / glob-init)."""

    __slots__ = ("n",)

    def __init__(self):
        self.n = 0

    def alloc(self) -> int:
        slot = self.n
        self.n += 1
        return slot


class LoweredProc:
    __slots__ = ("name", "params", "param_slots", "varargs_slot",
                 "variadic", "frame_size", "body", "n_instr")

    def __init__(self, name, params, variadic):
        self.name = name
        self.params = params
        self.variadic = variadic
        self.param_slots: List[int] = []
        self.varargs_slot: Optional[int] = None
        self.frame_size = 0
        self.body: Optional[LE] = None
        self.n_instr = 0


class LoweredFun:
    __slots__ = ("name", "params", "param_slots", "frame_size", "body")

    def __init__(self, name, params):
        self.name = name
        self.params = params
        self.param_slots: List[int] = []
        self.frame_size = 0
        self.body: Optional[Callable] = None


class LoweredGlob:
    __slots__ = ("name", "frame_size", "body")

    def __init__(self, name):
        self.name = name
        self.frame_size = 0
        self.body: Optional[LE] = None


class LoweredProgram:
    """The compiled back end of one Core program: slot-threaded
    closures per procedure / pure function / global initialiser, plus
    the positional ``unseq`` instruction table that re-keys static
    annotations onto stable ids."""

    __slots__ = ("procs", "funs", "globs", "glob_names",
                 "unseq_nodes", "threads_possible", "fused")

    def __init__(self):
        self.procs: Dict[str, LoweredProc] = {}
        self.funs: Dict[str, LoweredFun] = {}
        self.globs: Dict[str, LoweredGlob] = {}
        #: Every file-scope object of the source program, in
        #: definition order — including the uninitialised ones, which
        #: never get a ``LoweredGlob``.  File-scope objects carry
        #: process-unique Core names (``a_17`` vs ``a_53`` for the
        #: same source compiled twice), and the lowered closures bake
        #: those names into their ``global_env`` lookups: a lowering
        #: may only be adopted by a program whose glob names match
        #: exactly (see ``CompiledProgram.lowered``).
        self.glob_names: Tuple[str, ...] = ()
        #: ``collect_unseqs`` order: position == stable instruction id.
        self.unseq_nodes: List[K.EUnseq] = []
        #: Lower-time gate for run mode: True when any ``par``/``wait``
        #: node or any lexical reference to a thread native exists —
        #: such a program can suspend into the thread scheduler, which
        #: direct (non-generator) execution cannot do.
        self.threads_possible = False
        #: Fusion-pass hit counts (lower-time): how many recurring
        #: sequences collapsed into single pre-resolved instructions.
        self.fused: Dict[str, int] = {}

    def layout(self) -> dict:
        """The serializable positional layout (frame sizes, arity,
        instruction counts) — the payload of a ``"lowered"`` store
        record, and the cross-process agreement check for stable
        instruction ids and frame shapes."""
        return {
            "procs": {name: (p.frame_size, p.n_instr, len(p.params),
                             p.variadic)
                      for name, p in sorted(self.procs.items())},
            "funs": {name: (f.frame_size, len(f.params))
                     for name, f in sorted(self.funs.items())},
            "globs": {name: g.frame_size
                      for name, g in sorted(self.globs.items())},
            "n_unseqs": len(self.unseq_nodes),
            "threads_possible": self.threads_possible,
            "fused": dict(sorted(self.fused.items())),
        }


def lower_program(program: K.Program) -> LoweredProgram:
    """Lower every definition of an elaborated Core program."""
    return _Lowerer(program).lower()


def ensure_lowered(program: K.Program) -> LoweredProgram:
    """Lower once per program object (cached on ``program._lowered``,
    the same idiom as the statics ``_statics_annotated`` flag)."""
    lp = getattr(program, "_lowered", None)
    if lp is None:
        lp = lower_program(program)
        program._lowered = lp  # type: ignore[attr-defined]
    return lp


class _Lowerer:
    def __init__(self, program: K.Program):
        self.program = program
        self.impl = program.impl
        self.tags = program.tags
        self.out = LoweredProgram()
        from ...statics import collect_unseqs
        self.out.unseq_nodes = collect_unseqs(program)
        self._unseq_ids = {id(node): i for i, node
                           in enumerate(self.out.unseq_nodes)}
        self._n_instr = 0
        self._threads = False
        self.fused: Dict[str, int] = {
            "cmp_operand": 0, "arith_operand": 0, "slot_instr": 0,
            "load_op_store": 0,
        }

    def lower(self) -> LoweredProgram:
        out = self.out
        out.glob_names = tuple(g.name for g in self.program.globs)
        # Definitions are registered before their bodies are lowered so
        # (mutually) recursive calls resolve to the in-progress object.
        for name, fun in self.program.funs.items():
            out.funs[name] = LoweredFun(name, list(fun.params))
        for name, proc in self.program.procs.items():
            out.procs[name] = LoweredProc(name, list(proc.params),
                                          proc.variadic)
        for name, fun in self.program.funs.items():
            lf = out.funs[name]
            falloc = _FrameAlloc()
            scope: Dict[str, int] = {}
            for p in fun.params:
                slot = falloc.alloc()
                scope[p] = slot
                lf.param_slots.append(slot)
            lf.body = self._pure(fun.body, scope, falloc)
            lf.frame_size = falloc.n
        for name, proc in self.program.procs.items():
            lp = out.procs[name]
            falloc = _FrameAlloc()
            scope = {}
            for p in proc.params:
                slot = falloc.alloc()
                scope[p] = slot
                lp.param_slots.append(slot)
            if proc.variadic:
                lp.varargs_slot = falloc.alloc()
                scope["__varargs__"] = lp.varargs_slot
            self._n_instr = 0
            lp.body = self._expr(proc.body, scope, falloc)
            lp.frame_size = falloc.n
            lp.n_instr = self._n_instr
        for g in self.program.globs:
            if g.init is None:
                continue
            lg = LoweredGlob(g.name)
            falloc = _FrameAlloc()
            self._n_instr = 0
            lg.body = self._expr(g.init, {}, falloc)
            lg.frame_size = falloc.n
            out.globs[g.name] = lg
        out.threads_possible = self._threads
        out.fused = self.fused
        return out

    # ==================== patterns =========================================

    def _tuple_writes(self, args, scope, falloc):
        """The per-element ``(index, slot, op)`` plan for a tuple
        pattern whose elements are all plain binders, wildcards, or
        ``Specified``/``Unspecified``-wrapped ones; ``None`` when any
        element needs the generic matcher.  Ops: 0 binds the element
        directly, 1 unwraps ``Specified``, 2 checks ``Unspecified``
        (binding the carried ctype, like the generic matcher does).
        Plain wildcards are dropped entirely; wrapped wildcards keep
        a slot-less entry because the wrapper check is refutable."""
        plan = []
        for i, a in enumerate(args):
            op = 0
            if isinstance(a, K.PatCtor) and \
                    a.ctor in ("Specified", "Unspecified") and \
                    len(a.args) == 1 and \
                    isinstance(a.args[0], (K.PatSym, K.PatWild)):
                op = 1 if a.ctor == "Specified" else 2
                a = a.args[0]
            if isinstance(a, K.PatSym):
                plan.append((i, a, op))
            elif isinstance(a, K.PatWild):
                if op:
                    plan.append((i, None, op))
            else:
                return None
        writes = []
        for i, a, op in plan:
            if a is None:
                writes.append((i, None, op))
            else:
                slot = falloc.alloc()
                scope[a.name] = slot
                writes.append((i, slot, op))
        return tuple(writes)

    def _pattern(self, pat: K.Pattern, scope: Dict[str, int],
                 falloc: _FrameAlloc):
        """Compile a pattern to a slot-writing matcher
        ``m(value, fr) -> bool``; binders get fresh slots in ``scope``.
        A failed match may have written some of its (branch-private)
        slots — harmless, since a branch's slots are only read by its
        own body."""
        if isinstance(pat, K.PatWild):
            return _match_any
        if isinstance(pat, K.PatSym):
            slot = falloc.alloc()
            scope[pat.name] = slot

            def m_sym(value, fr, _s=slot):
                fr[_s] = value
                return True

            return m_sym
        assert isinstance(pat, K.PatCtor)
        ctor = pat.ctor
        if ctor == "Tuple":
            writes = self._tuple_writes(pat.args, scope, falloc)
            if writes is not None:
                # The hot shapes: `(a, b, ...)` of plain binders and
                # `Specified`-unwrapped binders — write the slots
                # directly, no per-element matcher calls.
                def m_tuple_syms(value, fr, _w=writes,
                                 _n=len(pat.args)):
                    if not isinstance(value, VTuple):
                        return False
                    items = value.items
                    if len(items) != _n:
                        return False
                    for i, slot, op in _w:
                        item = items[i]
                        if op == 1:
                            if not isinstance(item, VSpecified):
                                return False
                            item = item.value
                        elif op == 2:
                            if not isinstance(item, VUnspecified):
                                return False
                            if slot is None:
                                continue
                            item = VCtype(item.ty)
                        if slot is not None:
                            fr[slot] = item
                    return True

                return m_tuple_syms
            subs = [self._pattern(a, scope, falloc) for a in pat.args]

            def m_tuple(value, fr, _subs=subs, _n=len(subs)):
                if not isinstance(value, VTuple) or \
                        len(value.items) != _n:
                    return False
                for sub, item in zip(_subs, value.items):
                    if not sub(item, fr):
                        return False
                return True

            return m_tuple
        if ctor == "Specified":
            sub = self._pattern(pat.args[0], scope, falloc)

            def m_spec(value, fr, _sub=sub):
                if not isinstance(value, VSpecified):
                    return False
                return _sub(value.value, fr)

            return m_spec
        if ctor == "Unspecified":
            sub = self._pattern(pat.args[0], scope, falloc)

            def m_unspec(value, fr, _sub=sub):
                if not isinstance(value, VUnspecified):
                    return False
                return _sub(VCtype(value.ty), fr)

            return m_unspec
        if ctor == "True":
            return lambda value, fr: value == TRUE
        if ctor == "False":
            return lambda value, fr: value == FALSE
        if ctor == "Unit":
            return lambda value, fr: isinstance(value, VUnit)
        if ctor == "Nil":
            return lambda value, fr: isinstance(value, VList) \
                and not value.items
        if ctor == "Cons":
            head = self._pattern(pat.args[0], scope, falloc)
            tail = self._pattern(pat.args[1], scope, falloc)

            def m_cons(value, fr, _h=head, _t=tail):
                if not isinstance(value, VList) or not value.items:
                    return False
                if not _h(value.items[0], fr):
                    return False
                return _t(VList(value.items[1:]), fr)

            return m_cons

        def m_unknown(value, fr, _c=ctor):
            raise InternalError(
                f"match_pattern: unknown constructor {_c}")

        return m_unknown

    # ==================== pure lowering ====================================

    def _pure_list(self, pes, scope, falloc):
        return [self._pure(pe, scope, falloc) for pe in pes]

    def _pure(self, pe: K.Pexpr, scope: Dict[str, int],
              falloc: _FrameAlloc):
        if isinstance(pe, K.PSym):
            if pe.name in _THREAD_NATIVES:
                # A lexical reference to a thread native: the only way
                # spawn/wait requests can ever be reached (natives are
                # invoked by name or through a function value taken
                # from that name).  Keeps the program off run mode.
                self._threads = True
            slot = scope.get(pe.name)
            if slot is not None:
                def p_slot(ev, fr, _s=slot, _n=pe.name, _l=pe.loc):
                    v = fr[_s]
                    if v is None:
                        raise InternalError(
                            f"unbound Core symbol {_n}", _l)
                    return v

                return p_slot

            def p_glob(ev, fr, _n=pe.name, _l=pe.loc):
                v = ev.global_env.get(_n)
                if v is None:
                    raise InternalError(f"unbound Core symbol {_n}", _l)
                return v

            return p_glob
        if isinstance(pe, K.PVal):
            return lambda ev, fr, _v=pe.value: _v
        if isinstance(pe, K.PImpl):
            value = self.program.impl_constants.get(pe.name)
            if value is not None:
                return lambda ev, fr, _v=value: _v

            def p_impl(ev, fr, _n=pe.name, _l=pe.loc):
                raise InternalError(f"unknown impl constant {_n}", _l)

            return p_impl
        if isinstance(pe, K.PUndef):
            def p_undef(ev, fr, _ub=pe.ub, _l=pe.loc):
                raise UndefinedBehaviour(_ub, _l)

            return p_undef
        if isinstance(pe, K.PError):
            def p_err(ev, fr, _m=pe.msg, _l=pe.loc):
                raise StaticError(_m, _l)

            return p_err
        if isinstance(pe, K.PCtor):
            return self._ctor(pe, scope, falloc)
        if isinstance(pe, K.PCase):
            scrut = self._pure(pe.scrutinee, scope, falloc)
            branches = []
            for pat, body in pe.branches:
                s2 = dict(scope)
                m = self._pattern(pat, s2, falloc)
                branches.append((m, self._pure(body, s2, falloc)))

            def p_case(ev, fr, _s=scrut, _b=branches, _l=pe.loc):
                v = _s(ev, fr)
                for m, body in _b:
                    if m(v, fr):
                        return body(ev, fr)
                raise InternalError(
                    f"no matching case branch for {v!r}", _l)

            return p_case
        if isinstance(pe, K.PArrayShift):
            pp = self._pure(pe.ptr, scope, falloc)
            pi = self._pure(pe.index, scope, falloc)

            def p_ashift(ev, fr, _p=pp, _i=pi, _t=pe.elem_ty,
                         _l=pe.loc):
                ptr = ev._as_pointer(_p(ev, fr), _l)
                idx = ev._as_integer(_i(ev, fr), _l)
                try:
                    return VPointer(ev.model.array_shift(ptr, _t, idx))
                except MemoryError_ as me:
                    raise UndefinedBehaviour(me.entry, _l,
                                             me.detail) from None

            return p_ashift
        if isinstance(pe, K.PMemberShift):
            pp = self._pure(pe.ptr, scope, falloc)

            def p_mshift(ev, fr, _p=pp, _tag=pe.tag, _m=pe.member,
                         _l=pe.loc):
                ptr = ev._as_pointer(_p(ev, fr), _l)
                try:
                    return VPointer(ev.model.member_shift(ptr, _tag,
                                                          _m))
                except MemoryError_ as me:
                    raise UndefinedBehaviour(me.entry, _l,
                                             me.detail) from None

            return p_mshift
        if isinstance(pe, K.PNot):
            sub = self._pure(pe.operand, scope, falloc)
            return lambda ev, fr, _s=sub: VBool(not truthy(_s(ev, fr)))
        if isinstance(pe, K.PBinop):
            return self._binop(pe, scope, falloc)
        if isinstance(pe, K.PLet):
            bound = self._pure(pe.bound, scope, falloc)
            s2 = dict(scope)
            m = self._pattern(pe.pat, s2, falloc)
            body = self._pure(pe.body, s2, falloc)

            def p_let(ev, fr, _b=bound, _m=m, _body=body, _l=pe.loc):
                v = _b(ev, fr)
                if not _m(v, fr):
                    raise InternalError("refutable pure let pattern",
                                        _l)
                return _body(ev, fr)

            return p_let
        if isinstance(pe, K.PIf):
            cond = self._pure(pe.cond, scope, falloc)
            then = self._pure(pe.then, scope, falloc)
            els = self._pure(pe.els, scope, falloc)

            def p_if(ev, fr, _c=cond, _t=then, _e=els):
                return _t(ev, fr) if truthy(_c(ev, fr)) \
                    else _e(ev, fr)

            return p_if
        if isinstance(pe, K.PCall):
            return self._pure_call(pe, scope, falloc)
        if isinstance(pe, K.PStruct):
            subs = [(name, self._pure(sub, scope, falloc))
                    for name, sub in pe.members]

            def p_struct(ev, fr, _tag=pe.tag, _subs=subs):
                defn = ev.tags.require(_tag)
                members = []
                for name, sub in _subs:
                    v = sub(ev, fr)
                    m = defn.member(name)
                    members.append((name, core_to_mem(m.qty.ty, v)))
                return VMemStruct(MVStruct(_tag, tuple(members)))

            return p_struct
        if isinstance(pe, K.PUnion):
            sub = self._pure(pe.value, scope, falloc)

            def p_union(ev, fr, _tag=pe.tag, _m=pe.member, _s=sub):
                defn = ev.tags.require(_tag)
                m = defn.member(_m)
                v = _s(ev, fr)
                return VMemStruct(MVUnion(_tag, _m,
                                          core_to_mem(m.qty.ty, v)))

            return p_union
        raise InternalError(
            f"lower: unhandled pure {type(pe).__name__}", pe.loc)

    def _ctor(self, pe: K.PCtor, scope, falloc):
        args = self._pure_list(pe.args, scope, falloc)
        ctor = pe.ctor
        if ctor == "Specified":
            a0 = args[0]
            return lambda ev, fr, _a=a0: VSpecified(_a(ev, fr))
        if ctor == "Unspecified":
            a0 = args[0]

            def p_unspec(ev, fr, _a=a0):
                ty = _a(ev, fr)
                assert isinstance(ty, VCtype)
                return VUnspecified(ty.ty)

            return p_unspec
        if ctor == "Tuple":
            def p_tuple(ev, fr, _args=args):
                return VTuple(tuple(a(ev, fr) for a in _args))

            return p_tuple
        if ctor == "Nil":
            nil = VList(())
            return lambda ev, fr, _v=nil: _v
        if ctor == "Cons":
            head, tail = args

            def p_cons(ev, fr, _h=head, _t=tail):
                h = _h(ev, fr)
                t = _t(ev, fr)
                assert isinstance(t, VList)
                return VList((h,) + t.items)

            return p_cons
        if ctor == "Unit":
            return lambda ev, fr: UNIT
        if ctor == "True":
            return lambda ev, fr: TRUE
        if ctor == "False":
            return lambda ev, fr: FALSE

        def p_unknown(ev, fr, _args=args, _c=ctor, _l=pe.loc):
            for a in _args:
                a(ev, fr)
            raise InternalError(f"unknown constructor {_c}", _l)

        return p_unknown

    def _binop(self, pe: K.PBinop, scope, falloc):
        op = pe.op
        lhs = self._pure(pe.lhs, scope, falloc)
        if op == "/\\":
            rhs = self._pure(pe.rhs, scope, falloc)

            def p_and(ev, fr, _a=lhs, _b=rhs):
                if not truthy(_a(ev, fr)):
                    return FALSE
                return VBool(truthy(_b(ev, fr)))

            return p_and
        if op == "\\/":
            rhs = self._pure(pe.rhs, scope, falloc)

            def p_or(ev, fr, _a=lhs, _b=rhs):
                if truthy(_a(ev, fr)):
                    return TRUE
                return VBool(truthy(_b(ev, fr)))

            return p_or
        rhs = self._pure(pe.rhs, scope, falloc)
        cmp = _CMP_OPS.get(op)
        minus = op == "-"

        def p_binop(ev, fr, _a=lhs, _b=rhs, _op=op, _cmp=cmp,
                    _minus=minus, _pe=pe, _l=pe.loc):
            a = _a(ev, fr)
            b = _b(ev, fr)
            if isinstance(a, VBool) or isinstance(b, VBool):
                if _op == "==":
                    return VBool(a == b)
                if _op == "!=":
                    return VBool(a != b)
                raise InternalError(f"boolean binop {_op}", _l)
            if isinstance(a, VFloating) or isinstance(b, VFloating):
                return ev._float_binop(_op, a, b, _pe)
            ia = ev._as_integer(a, _l)
            ib = ev._as_integer(b, _l)
            if _cmp is not None:
                return VBool(_cmp(ia.value, ib.value))
            math = ev._int_math(_op, ia.value, ib.value, _l)
            hooked = ev._int_hook
            if hooked is not None:
                special = hooked(_op, ia, ib, math)
                if special is not None:
                    return VInteger(special)
            prov = combine_provenance(ia.prov, ib.prov)
            if _minus and ia.prov is not None and ia.prov == ib.prov:
                prov = None  # intra-object difference (§5.9)
            return VInteger(IntegerValue(math, prov))

        # Fast paths for the dominant VInteger/VInteger case, bailing
        # to the generic closure on any other shape.  The fallback
        # re-evaluates the operands, which is safe: pure closures are
        # deterministic and effect-free, so the rare non-integer
        # shape just pays one duplicate read.
        #
        # Operand fusion: when an operand is a bound symbol or an
        # integer literal, the fetch is resolved at lower time into a
        # direct frame read / captured constant — no operand-closure
        # call at all.  An unbound slot (None) fails the VInteger type
        # test and falls into the generic closure, which re-evaluates
        # through the original operand closures and raises the proper
        # diagnostic.
        ls = self._operand_slot(pe.lhs, scope)
        rs = self._operand_slot(pe.rhs, scope)
        liv = self._operand_const(pe.lhs)
        riv = self._operand_const(pe.rhs)
        if cmp is not None:
            if ls is not None and rs is not None:
                self.fused["cmp_operand"] += 1

                def p_cmp_ss(ev, fr, _i=ls, _j=rs, _cmp=cmp,
                             _slow=p_binop):
                    a = fr[_i]
                    b = fr[_j]
                    if type(a) is VInteger and type(b) is VInteger:
                        return VBool(_cmp(a.ival.value, b.ival.value))
                    return _slow(ev, fr)

                return p_cmp_ss
            if ls is not None and riv is not None:
                self.fused["cmp_operand"] += 1

                def p_cmp_sc(ev, fr, _i=ls, _c=riv.value, _cmp=cmp,
                             _slow=p_binop):
                    a = fr[_i]
                    if type(a) is VInteger:
                        return VBool(_cmp(a.ival.value, _c))
                    return _slow(ev, fr)

                return p_cmp_sc
            if liv is not None and rs is not None:
                self.fused["cmp_operand"] += 1

                def p_cmp_cs(ev, fr, _c=liv.value, _j=rs, _cmp=cmp,
                             _slow=p_binop):
                    b = fr[_j]
                    if type(b) is VInteger:
                        return VBool(_cmp(_c, b.ival.value))
                    return _slow(ev, fr)

                return p_cmp_cs

            def p_cmp(ev, fr, _a=lhs, _b=rhs, _cmp=cmp,
                      _slow=p_binop):
                a = _a(ev, fr)
                b = _b(ev, fr)
                if type(a) is VInteger and type(b) is VInteger:
                    return VBool(_cmp(a.ival.value, b.ival.value))
                return _slow(ev, fr)

            return p_cmp
        if ls is not None and riv is not None:
            self.fused["arith_operand"] += 1

            def p_arith_sc(ev, fr, _i=ls, _ib=riv, _op=op,
                           _minus=minus, _l=pe.loc, _slow=p_binop):
                a = fr[_i]
                if type(a) is VInteger:
                    ia = a.ival
                    math = ev._int_math(_op, ia.value, _ib.value, _l)
                    hooked = ev._int_hook
                    if hooked is not None:
                        special = hooked(_op, ia, _ib, math)
                        if special is not None:
                            return VInteger(special)
                    prov = combine_provenance(ia.prov, _ib.prov)
                    if _minus and ia.prov is not None and \
                            ia.prov == _ib.prov:
                        prov = None  # intra-object difference (§5.9)
                    return VInteger(IntegerValue(math, prov))
                return _slow(ev, fr)

            return p_arith_sc
        if ls is not None and rs is not None:
            self.fused["arith_operand"] += 1

            def p_arith_ss(ev, fr, _i=ls, _j=rs, _op=op,
                           _minus=minus, _l=pe.loc, _slow=p_binop):
                a = fr[_i]
                b = fr[_j]
                if type(a) is VInteger and type(b) is VInteger:
                    ia = a.ival
                    ib = b.ival
                    math = ev._int_math(_op, ia.value, ib.value, _l)
                    hooked = ev._int_hook
                    if hooked is not None:
                        special = hooked(_op, ia, ib, math)
                        if special is not None:
                            return VInteger(special)
                    prov = combine_provenance(ia.prov, ib.prov)
                    if _minus and ia.prov is not None and \
                            ia.prov == ib.prov:
                        prov = None  # intra-object difference (§5.9)
                    return VInteger(IntegerValue(math, prov))
                return _slow(ev, fr)

            return p_arith_ss

        def p_arith(ev, fr, _a=lhs, _b=rhs, _op=op, _minus=minus,
                    _l=pe.loc, _slow=p_binop):
            a = _a(ev, fr)
            b = _b(ev, fr)
            if type(a) is VInteger and type(b) is VInteger:
                ia = a.ival
                ib = b.ival
                math = ev._int_math(_op, ia.value, ib.value, _l)
                hooked = ev._int_hook
                if hooked is not None:
                    special = hooked(_op, ia, ib, math)
                    if special is not None:
                        return VInteger(special)
                prov = combine_provenance(ia.prov, ib.prov)
                if _minus and ia.prov is not None and \
                        ia.prov == ib.prov:
                    prov = None  # intra-object difference (§5.9)
                return VInteger(IntegerValue(math, prov))
            return _slow(ev, fr)

        return p_arith

    @staticmethod
    def _operand_slot(pe: K.Pexpr, scope) -> Optional[int]:
        """The frame slot of a binop operand that is a locally bound
        symbol (``None`` for anything else — globals included, since
        their lookup needs the evaluator)."""
        if isinstance(pe, K.PSym):
            return scope.get(pe.name)
        return None

    @staticmethod
    def _operand_const(pe: K.Pexpr) -> Optional[IntegerValue]:
        """The integer literal payload of a binop operand, when it is
        one (the captured :class:`IntegerValue` keeps provenance
        semantics identical to the closure path)."""
        if isinstance(pe, K.PVal) and type(pe.value) is VInteger:
            return pe.value.ival
        return None

    def _pure_call(self, pe: K.PCall, scope, falloc):
        lf = self.out.funs.get(pe.name)
        if lf is not None:
            args = self._pure_list(pe.args, scope, falloc)

            def p_fun(ev, fr, _lf=lf, _args=args):
                vals = [a(ev, fr) for a in _args]
                ffr = [None] * _lf.frame_size
                for slot, v in zip(_lf.param_slots, vals):
                    ffr[slot] = v
                return _lf.body(ev, ffr)

            return p_fun
        spec = self._specialize_native(pe, scope, falloc)
        if spec is not None:
            return spec
        args = self._pure_list(pe.args, scope, falloc)

        def p_native(ev, fr, _n=pe.name, _args=args, _pe=pe):
            vals = [a(ev, fr) for a in _args]
            return ev._native_pure(_n, vals, _pe)

        return p_native

    @staticmethod
    def _const_int_ctype(pe: K.Pexpr) -> Optional[Integer]:
        """An integer C type known at lower time (elaboration emits
        them as ``PVal(VCtype(...))`` literals)."""
        if isinstance(pe, K.PVal) and isinstance(pe.value, VCtype) \
                and isinstance(pe.value.ty, Integer):
            return pe.value.ty
        return None

    def _specialize_native(self, pe: K.PCall, scope, falloc):
        """Lower-time constant folding for the hot integer-conversion
        natives: when the C type operand is a literal, its range /
        width / signedness (fixed by the program's ``impl``) are
        resolved once here, replacing per-call ``_native_pure``
        dispatch and ``Implementation`` method lookups.  The folded
        arithmetic mirrors :func:`repro.ctypes.convert.
        convert_integer_value` / ``is_representable`` exactly; any
        shape this doesn't recognise falls back to the shared
        ``_native_pure``."""
        name = pe.name
        impl = self.impl
        if name in ("conv_int", "wrapI") and len(pe.args) == 2:
            ty = self._const_int_ctype(pe.args[0])
            if ty is None:
                return None
            arg = self._pure(pe.args[1], scope, falloc)
            loc = pe.loc
            if name == "wrapI":
                mask = (1 << impl.width(ty.kind)) - 1

                def p_wrap(ev, fr, _a=arg, _mask=mask, _l=loc):
                    v = _a(ev, fr)
                    iv = v.ival if type(v) is VInteger \
                        else ev._as_integer(v, _l)
                    return VInteger(IntegerValue(iv.value & _mask,
                                                 iv.prov, iv.meta))

                return p_wrap
            if ty.kind is IntKind.BOOL:
                def p_conv_bool(ev, fr, _a=arg, _l=loc):
                    iv = ev._as_integer(_a(ev, fr), _l)
                    return VInteger(IntegerValue(
                        0 if iv.value == 0 else 1, iv.prov, iv.meta))

                return p_conv_bool
            lo = impl.int_min(ty.kind)
            hi = impl.int_max(ty.kind)
            w = impl.width(ty.kind)
            mask = (1 << w) - 1
            sign_bit = 1 << (w - 1) if impl.is_signed(ty.kind) else None

            def p_conv(ev, fr, _a=arg, _lo=lo, _hi=hi, _mask=mask,
                       _sb=sign_bit, _l=loc):
                a = _a(ev, fr)
                iv = a.ival if type(a) is VInteger \
                    else ev._as_integer(a, _l)
                v = iv.value
                if v < _lo or v > _hi:
                    v &= _mask
                    if _sb is not None and v >= _sb:
                        v -= _sb << 1
                return VInteger(IntegerValue(v, iv.prov, iv.meta))

            return p_conv
        if name == "is_representable" and len(pe.args) == 2:
            ty = self._const_int_ctype(pe.args[1])
            if ty is None:
                return None
            arg = self._pure(pe.args[0], scope, falloc)
            lo = impl.int_min(ty.kind)
            hi = impl.int_max(ty.kind)

            def p_repr(ev, fr, _a=arg, _lo=lo, _hi=hi, _l=pe.loc):
                a = _a(ev, fr)
                iv = a.ival if type(a) is VInteger \
                    else ev._as_integer(a, _l)
                return VBool(_lo <= iv.value <= _hi)

            return p_repr
        if name in ("ctype_width", "ivmax", "ivmin", "is_unsigned",
                    "is_signed") and len(pe.args) == 1:
            ty = self._const_int_ctype(pe.args[0])
            if ty is None:
                return None
            if name == "ctype_width":
                const = VInteger(IntegerValue(impl.width(ty.kind)))
            elif name == "ivmax":
                const = VInteger(IntegerValue(impl.int_max(ty.kind)))
            elif name == "ivmin":
                const = VInteger(IntegerValue(impl.int_min(ty.kind)))
            elif name == "is_unsigned":
                const = VBool(not impl.is_signed(ty.kind))
            else:
                const = VBool(impl.is_signed(ty.kind))
            return lambda ev, fr, _v=const: _v
        if name == "not_bool" and len(pe.args) == 1:
            arg = self._pure(pe.args[0], scope, falloc)
            return lambda ev, fr, _a=arg: VBool(not truthy(_a(ev, fr)))
        return None

    # ==================== effect lowering ==================================

    def _expr_list(self, exprs, scope, falloc):
        return [self._expr(e, scope, falloc) for e in exprs]

    def _expr(self, e: K.Expr, scope: Dict[str, int],
              falloc: _FrameAlloc) -> LE:
        self._n_instr += 1
        if isinstance(e, K.EPure):
            return _pure_le(self._pure(e.pe, scope, falloc))
        if isinstance(e, K.ESkip):
            return _pure_le(lambda ev, fr: UNIT)
        if isinstance(e, K.EReturn):
            p = self._pure(e.pe, scope, falloc)

            def p_ret(ev, fr, _p=p):
                raise ProcReturn(_p(ev, fr))

            return _pure_le(p_ret)
        if isinstance(e, K.ERun):
            args = self._pure_list(e.args, scope, falloc)

            def p_run(ev, fr, _label=e.label, _args=args):
                raise RunSignal(_label, [a(ev, fr) for a in _args])

            return _pure_le(p_run)
        if isinstance(e, K.EAction):
            return self._action(e.action, scope, falloc)
        if isinstance(e, K.EPtrOp):
            args = self._pure_list(e.args, scope, falloc)

            def g_ptrop(ev, fr, _op=e.op, _args=args, _aux=e.aux,
                        _l=e.loc):
                vals = [a(ev, fr) for a in _args]
                inline = ev._inline
                if inline is not None:
                    value = inline(("ptrop", _op, vals, _aux, _l))
                else:
                    value = yield ("ptrop", _op, vals, _aux, _l)
                return value, _EMPTY

            def r_ptrop(ev, fr, _op=e.op, _args=args, _aux=e.aux,
                        _l=e.loc):
                vals = [a(ev, fr) for a in _args]
                return ev._inline(("ptrop", _op, vals, _aux, _l)), \
                    _EMPTY

            return LE(g_ptrop, run=r_ptrop)
        if isinstance(e, K.ECase):
            return self._ecase(e, scope, falloc)
        if isinstance(e, K.ELet):
            return self._elet(e, scope, falloc)
        if isinstance(e, K.EIf):
            return self._eif(e, scope, falloc)
        if isinstance(e, K.EProc):
            if e.name in _THREAD_NATIVES:
                self._threads = True
            args = self._pure_list(e.args, scope, falloc)

            def g_proc(ev, fr, _n=e.name, _args=args, _l=e.loc):
                vals = [a(ev, fr) for a in _args]
                return (yield from ev.call_proc(_n, vals, _l))

            def r_proc(ev, fr, _n=e.name, _args=args, _l=e.loc):
                vals = [a(ev, fr) for a in _args]
                # call_proc itself takes the direct path when the
                # callee is lowered; the pump only turns for natives.
                return _drive_inline(ev, ev.call_proc(_n, vals, _l))

            return LE(g_proc, run=r_proc)
        if isinstance(e, K.ECcall):
            return self._ccall(e, scope, falloc)
        if isinstance(e, K.EUnseq):
            return self._unseq(e, scope, falloc)
        if isinstance(e, (K.EWseq, K.ESseq)):
            return self._spine(e, scope, falloc)
        if isinstance(e, K.EAtomicSeq):
            return self._atomic_seq(e, scope, falloc)
        if isinstance(e, (K.EIndet, K.EBound)):
            return self._expr(e.body, scope, falloc)
        if isinstance(e, K.ENd):
            les = self._expr_list(e.exprs, scope, falloc)

            def g_nd(ev, fr, _les=les, _n=len(les)):
                idx = 0
                if _n > 1:
                    idx = yield ("choose", "nd", _n)
                le = _les[idx]
                if le.pure is not None:
                    return le.pure(ev, fr), _EMPTY
                return (yield from le.gen(ev, fr))

            def r_nd(ev, fr, _les=les, _n=len(les)):
                idx = 0
                if _n > 1:
                    idx = ev._inline(("choose", "nd", _n))
                le = _les[idx]
                if le.pure is not None:
                    return le.pure(ev, fr), _EMPTY
                return le.run(ev, fr)

            return LE(g_nd, run=r_nd)
        if isinstance(e, K.ESave):
            return self._save(e, scope, falloc)
        if isinstance(e, K.EScope):
            return self._scope(e, scope, falloc)
        if isinstance(e, K.EVlaCreate):
            return self._vla_create(e, scope, falloc)
        if isinstance(e, K.EPar):
            # par spawns threads: the whole program stays off run mode.
            self._threads = True
            les = self._expr_list(e.exprs, scope, falloc)

            def g_par(ev, fr, _les=les):
                tids = []
                for le in _les:
                    tid = yield ("spawn", le.gen(ev, fr))
                    tids.append(tid)
                results = []
                for tid in tids:
                    value = yield ("wait", tid)
                    results.append(value)
                return VTuple(tuple(results)), _EMPTY

            return LE(g_par)
        if isinstance(e, K.EWait):
            # wait suspends into the thread scheduler: no run mode.
            self._threads = True
            th = self._pure(e.thread, scope, falloc)

            def g_wait(ev, fr, _th=th, _l=e.loc):
                tid = ev._as_integer(_th(ev, fr), _l).value
                value = yield ("wait", tid)
                return value, _EMPTY

            return LE(g_wait)
        raise InternalError(
            f"lower: unhandled expr {type(e).__name__}", e.loc)

    # ---- actions ---------------------------------------------------------

    def _action(self, action: K.Action, scope, falloc) -> LE:
        args = self._pure_list(action.args, scope, falloc)
        # Lifetime actions (create / kill / alloc) can never be one
        # side of an unsequenced race — ``conflicting`` exempts them
        # unconditionally — so their summaries are statically empty:
        # no per-action ActionSummary allocation, and every enclosing
        # union / tag_region walks fewer records.  The driver still
        # logs the full record (POR barriers need it when exploring).
        lifetime = action.kind in ("create", "create_vla", "kill",
                                   "alloc")

        def g_action(ev, fr, _args=args, _k=action.kind,
                     _p=action.polarity, _o=action.order,
                     _l=action.loc, _life=lifetime):
            vals = [a(ev, fr) for a in _args]
            # Single-threaded plain runs service hot requests through
            # the driver's inline callback instead of suspending the
            # whole generator stack (see CompiledEvaluator._inline).
            inline = ev._inline
            if inline is not None:
                value, record = inline(("action", _k, vals, _p, _o,
                                        _l, ()))
            else:
                value, record = yield ("action", _k, vals, _p, _o,
                                       _l, ())
            return value, _EMPTY if _life else ActionSummary([record])

        def r_action(ev, fr, _args=args, _k=action.kind,
                     _p=action.polarity, _o=action.order,
                     _l=action.loc, _life=lifetime):
            vals = [a(ev, fr) for a in _args]
            value, record = ev._inline(("action", _k, vals, _p, _o,
                                        _l, ()))
            return value, _EMPTY if _life else ActionSummary([record])

        return LE(g_action, run=r_action)

    # ---- C function calls (the specialized call protocol) ----------------

    def _ccall(self, e: K.ECcall, scope, falloc) -> LE:
        """Every C call elaborates to ``ECcall``; this lowering
        replaces the generic ``call_proc`` path with a specialized
        protocol: a one-element per-site inline cache resolves the
        function value to its lowered callee (function values are
        per-driver objects, so a fresh run's first call through a
        site re-resolves once and re-primes), arguments are written
        directly into a preallocated callee frame, and a statically
        pure callee body completes with no generator suspension at
        all.  Natives and cache-missing indirect targets fall back to
        the generic path; both sides are counted (``ev.call_fast`` /
        ``ev.call_generic``).  The lock bracket and region tagging
        are byte-identical to the tree evaluator's ``_ccall``."""
        fn = self._pure(e.fn, scope, falloc)
        args = self._pure_list(e.args, scope, falloc)
        procs = self.out.procs
        site: list = [None, None, None]  # f, name, lowered-or-None

        def g_ccall(ev, fr, _fn=fn, _args=args, _l=e.loc,
                    _site=site, _procs=procs):
            f = _fn(ev, fr)
            vals = [a(ev, fr) for a in _args]
            if f is _site[0]:
                name = _site[1]
                lp = _site[2]
            else:
                name = ev._function_name(f, _l)
                lp = _procs.get(name)
                _site[0] = f
                _site[1] = name
                _site[2] = lp
            region = next(_region_counter)
            # The lock bracket only gates unseq interleaving, and
            # the driver's per-thread lock counter is write-only:
            # on the inline fast path the bracket is vacuous.
            locked = ev._inline is None
            if locked:
                yield ("lock", 1)
            # No unlock on exception — same teardown contract as
            # the tree evaluator's _ccall.
            if lp is None:
                # Native or unknown name: the generic protocol
                # (call_proc raises the canonical diagnostic).
                ev.call_generic += 1
                value, summary = yield from ev.call_proc(name, vals,
                                                         _l)
            else:
                ev.call_fast += 1
                nparams = len(lp.params)
                if len(vals) != nparams and not lp.variadic:
                    raise InternalError(
                        f"arity mismatch calling {name}: {len(vals)} "
                        f"args for {nparams} params", _l)
                ffr = [None] * lp.frame_size
                for slot, v in zip(lp.param_slots, vals):
                    ffr[slot] = v
                if lp.variadic:
                    ffr[lp.varargs_slot] = VList(
                        tuple(vals[nparams:]))
                body = lp.body
                try:
                    if body.pure is not None:
                        value = body.pure(ev, ffr)
                        summary = _EMPTY
                    else:
                        value, summary = yield from body.gen(ev, ffr)
                except ProcReturn as r:
                    value = r.value
                    summary = _EMPTY
            if locked:
                yield ("lock", -1)
            return value, summary.tag_region(region)

        def r_ccall(ev, fr, _fn=fn, _args=args, _l=e.loc,
                    _site=site, _procs=procs):
            # No region tagging on this path: a tagged record is inert
            # in every later race check (cross-group pairs from
            # *different* calls carry different chains and the
            # indeterminate-sequencing exemption skips them; records of
            # one dynamic call can never straddle two groups), so the
            # callee summary is dropped here instead of being rebuilt
            # record-by-record only to be exempted.  The generator path
            # keeps the tagging — the tree evaluator is the oracle for
            # exploration and the two must stay structurally aligned.
            f = _fn(ev, fr)
            vals = [a(ev, fr) for a in _args]
            if f is _site[0]:
                name = _site[1]
                lp = _site[2]
            else:
                name = ev._function_name(f, _l)
                lp = _procs.get(name)
                _site[0] = f
                _site[1] = name
                _site[2] = lp
            if lp is None:
                ev.call_generic += 1
                value, _ = _drive_inline(
                    ev, ev.call_proc(name, vals, _l))
            else:
                ev.call_fast += 1
                nparams = len(lp.params)
                if len(vals) != nparams and not lp.variadic:
                    raise InternalError(
                        f"arity mismatch calling {name}: {len(vals)} "
                        f"args for {nparams} params", _l)
                ffr = [None] * lp.frame_size
                for slot, v in zip(lp.param_slots, vals):
                    ffr[slot] = v
                if lp.variadic:
                    ffr[lp.varargs_slot] = VList(
                        tuple(vals[nparams:]))
                body = lp.body
                try:
                    if body.pure is not None:
                        value = body.pure(ev, ffr)
                    else:
                        value, _ = body.run(ev, ffr)
                except ProcReturn as r:
                    value = r.value
            return value, _EMPTY

        return LE(g_ccall, run=r_ccall)

    # ---- binding combinators ---------------------------------------------

    def _ecase(self, e: K.ECase, scope, falloc) -> LE:
        scrut = self._pure(e.scrutinee, scope, falloc)
        branches = []
        for pat, body in e.branches:
            s2 = dict(scope)
            m = self._pattern(pat, s2, falloc)
            branches.append((m, self._expr(body, s2, falloc)))
        if all(le.pure is not None for _, le in branches):
            pure_branches = [(m, le.pure) for m, le in branches]

            def p_case(ev, fr, _s=scrut, _b=pure_branches, _l=e.loc):
                v = _s(ev, fr)
                for m, body in _b:
                    if m(v, fr):
                        return body(ev, fr)
                raise InternalError(
                    f"no matching case branch for {v!r}", _l)

            return _pure_le(p_case)

        def g_case(ev, fr, _s=scrut, _b=branches, _l=e.loc):
            v = _s(ev, fr)
            for m, le in _b:
                if m(v, fr):
                    if le.pure is not None:
                        return le.pure(ev, fr), _EMPTY
                    return (yield from le.gen(ev, fr))
            raise InternalError(f"no matching case branch for {v!r}",
                                _l)

        def r_case(ev, fr, _s=scrut, _b=branches, _l=e.loc):
            v = _s(ev, fr)
            for m, le in _b:
                if m(v, fr):
                    if le.pure is not None:
                        return le.pure(ev, fr), _EMPTY
                    return le.run(ev, fr)
            raise InternalError(f"no matching case branch for {v!r}",
                                _l)

        return LE(g_case, run=r_case)

    def _elet(self, e: K.ELet, scope, falloc) -> LE:
        bound = self._pure(e.bound, scope, falloc)
        s2 = dict(scope)
        m = self._pattern(e.pat, s2, falloc)
        body = self._expr(e.body, s2, falloc)
        if body.pure is not None:
            def p_let(ev, fr, _b=bound, _m=m, _body=body.pure,
                      _l=e.loc):
                v = _b(ev, fr)
                if not _m(v, fr):
                    raise InternalError("refutable let pattern", _l)
                return _body(ev, fr)

            return _pure_le(p_let)

        def g_let(ev, fr, _b=bound, _m=m, _body=body.gen, _l=e.loc):
            v = _b(ev, fr)
            if not _m(v, fr):
                raise InternalError("refutable let pattern", _l)
            return (yield from _body(ev, fr))

        def r_let(ev, fr, _b=bound, _m=m, _body=body, _l=e.loc):
            v = _b(ev, fr)
            if not _m(v, fr):
                raise InternalError("refutable let pattern", _l)
            return _body.run(ev, fr)

        return LE(g_let, run=r_let)

    def _eif(self, e: K.EIf, scope, falloc) -> LE:
        cond = self._pure(e.cond, scope, falloc)
        then = self._expr(e.then, scope, falloc)
        els = self._expr(e.els, scope, falloc)
        if then.pure is not None and els.pure is not None:
            def p_if(ev, fr, _c=cond, _t=then.pure, _e=els.pure):
                return _t(ev, fr) if truthy(_c(ev, fr)) \
                    else _e(ev, fr)

            return _pure_le(p_if)

        def g_if(ev, fr, _c=cond, _t=then, _e=els):
            le = _t if truthy(_c(ev, fr)) else _e
            if le.pure is not None:
                return le.pure(ev, fr), _EMPTY
            return (yield from le.gen(ev, fr))

        def r_if(ev, fr, _c=cond, _t=then, _e=els):
            le = _t if truthy(_c(ev, fr)) else _e
            if le.pure is not None:
                return le.pure(ev, fr), _EMPTY
            return le.run(ev, fr)

        return LE(g_if, run=r_if)

    # ---- sequencing ------------------------------------------------------

    def _spine(self, e: K.Expr, scope, falloc) -> LE:
        """Flatten a right-nested ``sseq``/``wseq`` chain — the spine
        every C statement list elaborates to — into ONE generator
        running a linear step list, instead of one nested generator
        frame per sequencing node.  Evaluation order, refutable-pattern
        errors, record order, and weak-sequencing race checks (which
        nested evaluation performs innermost-first, after the whole
        spine has run) are all preserved exactly."""
        steps = []
        meta = []
        while isinstance(e, (K.ESseq, K.EWseq)):
            weak = isinstance(e, K.EWseq)
            self._n_instr += 1
            node = e.first
            # Run-plan metadata: actions get their request parts
            # re-lowered against the *pre-pattern* scope (pure
            # lowering is deterministic and allocates no step slots)
            # so the plan can issue the request without the generator
            # wrapper; patterns record their single target slot when
            # irrefutable.
            act = None
            if isinstance(node, K.EAction):
                a = node.action
                act = (a.kind,
                       self._pure_list(a.args, scope, falloc),
                       a.polarity, a.order, a.loc)
            first = self._expr(node, scope, falloc)
            scope = dict(scope)
            pat = e.pat
            m = self._pattern(pat, scope, falloc)
            slot = scope[pat.name] if isinstance(pat, K.PatSym) \
                else None
            wild = isinstance(pat, K.PatWild)
            msg = "refutable weak-let pattern" if weak \
                else "refutable strong-let pattern"
            steps.append((first, m, msg, e.loc, weak))
            meta.append((act, slot, wild))
            e = e.second
        tail = self._expr(e, scope, falloc)
        if tail.pure is not None and \
                all(st[0].pure is not None for st in steps):
            pure_steps = tuple((st[0].pure, st[1], st[2], st[3])
                               for st in steps)

            def p_spine(ev, fr, _steps=pure_steps, _tail=tail.pure):
                for p, m, msg, lc in _steps:
                    if not m(p(ev, fr), fr):
                        raise InternalError(msg, lc)
                return _tail(ev, fr)

            return _pure_le(p_spine)
        plan = self._spine_plan(steps, meta) \
            if not any(st[4] for st in steps) else None
        steps = tuple(steps)
        if plan is not None:
            # All-strong spine (the dominant shape): no weak race
            # checks, so the summary is just the step records
            # concatenated in evaluation order.
            def g_spine_strong(ev, fr, _steps=steps, _tail=tail):
                recs = None
                for le, m, msg, lc, _weak in _steps:
                    if le.pure is not None:
                        v = le.pure(ev, fr)
                    else:
                        v, s = yield from le.gen(ev, fr)
                        if s.records:
                            if recs is None:
                                recs = list(s.records)
                            else:
                                recs.extend(s.records)
                    if not m(v, fr):
                        raise InternalError(msg, lc)
                if _tail.pure is not None:
                    v = _tail.pure(ev, fr)
                else:
                    v, ts = yield from _tail.gen(ev, fr)
                    if ts.records:
                        if recs is None:
                            return v, ts
                        recs.extend(ts.records)
                if recs is None:
                    return v, _EMPTY
                return v, ActionSummary(recs)

            def r_spine_strong(ev, fr, _plan=plan, _tail=tail):
                recs = []
                for instr in _plan:
                    instr(ev, fr, recs)
                if _tail.pure is not None:
                    v = _tail.pure(ev, fr)
                else:
                    v, ts = _tail.run(ev, fr)
                    if ts.records:
                        recs.extend(ts.records)
                if not recs:
                    return v, _EMPTY
                return v, ActionSummary(recs)

            return LE(g_spine_strong, run=r_spine_strong)

        def g_spine(ev, fr, _steps=steps, _tail=tail):
            eff = None
            i = 0
            for le, m, msg, lc, weak in _steps:
                if le.pure is not None:
                    v = le.pure(ev, fr)
                else:
                    v, s = yield from le.gen(ev, fr)
                    if s.records:
                        if eff is None:
                            eff = [(i, s)]
                        else:
                            eff.append((i, s))
                if not m(v, fr):
                    raise InternalError(msg, lc)
                i += 1
            if _tail.pure is not None:
                v = _tail.pure(ev, fr)
                tail_s = None
            else:
                v, tail_s = yield from _tail.gen(ev, fr)
                if not tail_s.records:
                    tail_s = None
            if eff is None and tail_s is None:
                return v, _EMPTY
            # Weak-sequencing race checks, innermost (latest) first —
            # the order nested evaluation performs them in.
            later = tail_s.records if tail_s is not None else []
            parts = [] if tail_s is None else [tail_s]
            if eff is not None:
                for j in range(len(eff) - 1, -1, -1):
                    i, s = eff[j]
                    st = _steps[i]
                    if st[4] and later:
                        negs = s.negatives()
                        if negs:
                            race = find_unsequenced_race([negs, later])
                            if race is not None:
                                a, b = race
                                raise UndefinedBehaviour(
                                    UB.UNSEQUENCED_RACE, st[3],
                                    f"store side effect unsequenced "
                                    f"with {b.kind} at "
                                    f"0x{b.footprint.addr:x}")
                    later = s.records + later
                    parts.append(s)
            if len(parts) == 1:
                return v, parts[0]
            return v, ActionSummary(later)

        def r_spine(ev, fr, _steps=steps, _tail=tail):
            # The weak spine keeps the unfused step walk in run mode
            # too: the innermost-first race checks below can raise
            # UNSEQUENCED_RACE, a real verdict, and must see the same
            # per-step summaries as the generator path.
            eff = None
            i = 0
            for le, m, msg, lc, weak in _steps:
                if le.pure is not None:
                    v = le.pure(ev, fr)
                else:
                    v, s = le.run(ev, fr)
                    if s.records:
                        if eff is None:
                            eff = [(i, s)]
                        else:
                            eff.append((i, s))
                if not m(v, fr):
                    raise InternalError(msg, lc)
                i += 1
            if _tail.pure is not None:
                v = _tail.pure(ev, fr)
                tail_s = None
            else:
                v, tail_s = _tail.run(ev, fr)
                if not tail_s.records:
                    tail_s = None
            if eff is None and tail_s is None:
                return v, _EMPTY
            later = tail_s.records if tail_s is not None else []
            parts = [] if tail_s is None else [tail_s]
            if eff is not None:
                for j in range(len(eff) - 1, -1, -1):
                    i, s = eff[j]
                    st = _steps[i]
                    if st[4] and later:
                        negs = s.negatives()
                        if negs:
                            race = find_unsequenced_race([negs, later])
                            if race is not None:
                                a, b = race
                                raise UndefinedBehaviour(
                                    UB.UNSEQUENCED_RACE, st[3],
                                    f"store side effect unsequenced "
                                    f"with {b.kind} at "
                                    f"0x{b.footprint.addr:x}")
                    later = s.records + later
                    parts.append(s)
            if len(parts) == 1:
                return v, parts[0]
            return v, ActionSummary(later)

        return LE(g_spine, run=r_spine)

    def _spine_plan(self, steps, meta):
        """The run-mode instruction plan for an all-strong spine: one
        pre-resolved instruction ``instr(ev, fr, recs)`` per step (or
        per *fused* step group), appending action records to ``recs``
        in evaluation order.  Fusions (lower-time, counted in
        ``self.fused``):

        * ``load_op_store`` — the ``let old = load; let new = <pure>;
          let _ = store`` triple every C compound assignment /
          increment elaborates to becomes ONE instruction: load
          request, slot write, pure compute, slot write, store
          request, two records — no pattern matchers, no per-step
          dispatch.
        * ``slot_instr`` — a step whose pattern is a plain binder or
          wildcard becomes a direct slot-write (or value-drop)
          instruction: the compiled matcher call disappears.

        Steps the plan can't specialize run their generic
        ``pure``/``run`` closure plus matcher, exactly like the
        generator spine."""
        plan = []
        i = 0
        n = len(steps)
        while i < n:
            le, m, msg, lc, _weak = steps[i]
            act, slot, wild = meta[i]
            if act is not None and act[0] == "load" and \
                    slot is not None and i + 2 < n:
                le2 = steps[i + 1][0]
                act2, slot2, _w2 = meta[i + 1]
                act3, _s3, wild3 = meta[i + 2]
                if le2.pure is not None and act2 is None and \
                        slot2 is not None and act3 is not None and \
                        act3[0] == "store" and wild3:
                    self.fused["load_op_store"] += 1
                    plan.append(self._i_load_op_store(
                        act, slot, le2.pure, slot2, act3))
                    i += 3
                    continue
            if le.pure is not None and slot is not None:
                self.fused["slot_instr"] += 1

                def i_pure_slot(ev, fr, recs, _p=le.pure, _s=slot):
                    fr[_s] = _p(ev, fr)

                plan.append(i_pure_slot)
            elif le.pure is not None and wild:
                self.fused["slot_instr"] += 1

                def i_pure_drop(ev, fr, recs, _p=le.pure):
                    _p(ev, fr)

                plan.append(i_pure_drop)
            elif act is not None and (slot is not None or wild):
                self.fused["slot_instr"] += 1
                plan.append(self._i_action_slot(act, slot))
            else:
                def i_generic(ev, fr, recs, _le=le, _m=m, _msg=msg,
                              _lc=lc):
                    if _le.pure is not None:
                        v = _le.pure(ev, fr)
                    else:
                        v, s = _le.run(ev, fr)
                        if s.records:
                            recs.extend(s.records)
                    if not _m(v, fr):
                        raise InternalError(_msg, _lc)

                plan.append(i_generic)
            i += 1
        return tuple(plan)

    @staticmethod
    def _i_action_slot(act, slot):
        kind, args, pol, order, loc = act
        if slot is None:
            def i_act_drop(ev, fr, recs, _args=args, _k=kind, _p=pol,
                           _o=order, _l=loc):
                vals = [a(ev, fr) for a in _args]
                _v, record = ev._inline(("action", _k, vals, _p, _o,
                                         _l, ()))
                recs.append(record)

            return i_act_drop

        def i_act_slot(ev, fr, recs, _args=args, _k=kind, _p=pol,
                       _o=order, _l=loc, _s=slot):
            vals = [a(ev, fr) for a in _args]
            v, record = ev._inline(("action", _k, vals, _p, _o, _l,
                                    ()))
            recs.append(record)
            fr[_s] = v

        return i_act_slot

    @staticmethod
    def _i_load_op_store(lact, lslot, pure, pslot, sact):
        _lk, largs, lp, lo, ll = lact
        _sk, sargs, sp, so, sl = sact

        def i_los(ev, fr, recs, _largs=largs, _lp=lp, _lo=lo, _ll=ll,
                  _ls=lslot, _pure=pure, _ps=pslot, _sargs=sargs,
                  _sp=sp, _so=so, _sl=sl):
            inline = ev._inline
            vals = [a(ev, fr) for a in _largs]
            v, rec1 = inline(("action", "load", vals, _lp, _lo, _ll,
                              ()))
            fr[_ls] = v
            fr[_ps] = _pure(ev, fr)
            svals = [a(ev, fr) for a in _sargs]
            _v2, rec2 = inline(("action", "store", svals, _sp, _so,
                                _sl, ()))
            recs.append(rec1)
            recs.append(rec2)

        return i_los

    def _atomic_seq(self, e: K.EAtomicSeq, scope, falloc) -> LE:
        a1 = e.first
        a2 = e.second
        args1 = self._pure_list(a1.args, scope, falloc)
        s2 = dict(scope)
        sym_slot = falloc.alloc()
        s2[e.sym] = sym_slot
        args2 = self._pure_list(a2.args, s2, falloc)

        def g_atomic(ev, fr, _a1=args1, _a2=args2, _slot=sym_slot,
                     _k1=a1.kind, _p1=a1.polarity, _o1=a1.order,
                     _l1=a1.loc, _k2=a2.kind, _p2=a2.polarity,
                     _o2=a2.order, _l2=a2.loc):
            inline = ev._inline
            if inline is not None:
                # Single-threaded plain run: nothing can interleave
                # with the pair, so the lock bracket is vacuous.
                vals1 = [a(ev, fr) for a in _a1]
                v1, rec1 = inline(("action", _k1, vals1, _p1, _o1,
                                   _l1, ()))
                fr[_slot] = v1
                vals2 = [a(ev, fr) for a in _a2]
                _v2, rec2 = inline(("action", _k2, vals2, _p2, _o2,
                                    _l2, ()))
                return v1, ActionSummary([rec1, rec2])
            yield ("lock", 1)
            vals1 = [a(ev, fr) for a in _a1]
            v1, rec1 = yield ("action", _k1, vals1, _p1, _o1, _l1, ())
            fr[_slot] = v1
            vals2 = [a(ev, fr) for a in _a2]
            _v2, rec2 = yield ("action", _k2, vals2, _p2, _o2, _l2, ())
            yield ("lock", -1)
            # The value of the atomic pair is the first action's (the
            # loaded pre-increment value, which is the value of x++).
            return v1, ActionSummary([rec1, rec2])

        def r_atomic(ev, fr, _a1=args1, _a2=args2, _slot=sym_slot,
                     _k1=a1.kind, _p1=a1.polarity, _o1=a1.order,
                     _l1=a1.loc, _k2=a2.kind, _p2=a2.polarity,
                     _o2=a2.order, _l2=a2.loc):
            inline = ev._inline
            vals1 = [a(ev, fr) for a in _a1]
            v1, rec1 = inline(("action", _k1, vals1, _p1, _o1, _l1,
                               ()))
            fr[_slot] = v1
            vals2 = [a(ev, fr) for a in _a2]
            _v2, rec2 = inline(("action", _k2, vals2, _p2, _o2, _l2,
                                ()))
            return v1, ActionSummary([rec1, rec2])

        return LE(g_atomic, run=r_atomic)

    # ---- unseq -----------------------------------------------------------

    def _unseq(self, e: K.EUnseq, scope, falloc) -> LE:
        """Interleaving at action granularity — the same algorithm,
        protocol, and metadata as the tree evaluator's ``_unseq``
        (q.v. for the full scheduling commentary).  The static
        annotation is read through the node's stable instruction id
        (``collect_unseqs`` position) rather than AST identity, and
        footprint hulls resolve through a slot-backed env view."""
        children = self._expr_list(e.exprs, scope, falloc)
        uidx = self._unseq_ids.get(id(e), -1)
        env_slots = dict(scope)
        loc = e.loc
        n = len(children)

        def g_unseq(ev, fr, _children=children, _uidx=uidx,
                    _slots=env_slots, _n=n, _l=loc):
            static = ev._static_info(_uidx) if ev.static_prune \
                else None
            if (static is not None and static[0]) or ev._fast_sched:
                # Sequential fast path: either the statics proved all
                # interleavings equivalent, or the driver marked the
                # oracle plain (always picks candidate 0, which *is*
                # program-order sequential execution).  Race detection
                # below still runs in both cases.
                if static is not None and static[0]:
                    ev.static_unseq_skips += 1
                results = []
                first = None
                groups = None
                for child in _children:
                    if child.pure is not None:
                        results.append(child.pure(ev, fr))
                    else:
                        value, summary = yield from child.gen(ev, fr)
                        results.append(value)
                        if summary.records:
                            if first is None:
                                first = summary
                            elif groups is None:
                                groups = [first.records,
                                          summary.records]
                            else:
                                groups.append(summary.records)
                if groups is None:
                    # At most one child performed actions: no
                    # cross-child race is possible and its summary
                    # passes through unchanged.
                    return VTuple(tuple(results)), \
                        first if first is not None else _EMPTY
                race = find_unsequenced_race(groups)
                if race is not None:
                    a, b = race
                    raise UndefinedBehaviour(
                        UB.UNSEQUENCED_RACE, _l,
                        f"unsequenced {a.kind} and {b.kind} on "
                        f"overlapping footprints at "
                        f"0x{a.footprint.addr:x}")
                recs = []
                for g in groups:
                    recs.extend(g)
                return VTuple(tuple(results)), ActionSummary(recs)
            hulls = None
            if static is not None:
                resolve = _hull_resolver()
                env_view = _SlotEnvView(fr, _slots)
                hulls = tuple(
                    resolve(info, env_view, ev.global_env, ev.model)
                    for info in static[1])
            gens = [c.gen(ev, fr) for c in _children]
            frame = next(ev._unseq_counter)
            done = [False] * _n
            started = [False] * _n
            results = [None] * _n
            summaries = [_EMPTY] * _n
            responses = [None] * _n
            locks = [0] * _n
            current = None
            while not all(done):
                locked = [i for i in range(_n) if locks[i] > 0]
                if locked:
                    candidates = locked
                else:
                    candidates = [i for i in range(_n) if not done[i]]
                if current is None or done[current] or \
                        current not in candidates:
                    cand = tuple(candidates)
                    meta = (frame, cand) if hulls is None else \
                        (frame, cand, tuple(hulls[i] for i in cand))
                    pick = yield ("choose", "unseq", len(candidates),
                                  meta)
                    current = candidates[pick]
                idx = current
                gen = gens[idx]
                try:
                    if not started[idx]:
                        started[idx] = True
                        request = next(gen)
                    else:
                        request = gen.send(responses[idx])
                except StopIteration as stop:
                    done[idx] = True
                    current = None
                    value, summary = stop.value
                    results[idx] = value
                    summaries[idx] = summary
                    continue
                if request[0] == "lock":
                    locks[idx] += request[1]
                elif request[0] == "action":
                    chain = request[6] if len(request) > 6 else ()
                    request = request[:6] + (chain + ((frame, idx),),)
                responses[idx] = yield request
                if request[0] in ("action", "raw", "stdout") and \
                        locks[idx] == 0:
                    current = None  # scheduling point after each action
            race = find_unsequenced_race(
                [s.records for s in summaries])
            if race is not None:
                a, b = race
                raise UndefinedBehaviour(
                    UB.UNSEQUENCED_RACE, _l,
                    f"unsequenced {a.kind} and {b.kind} on overlapping "
                    f"footprints at 0x{a.footprint.addr:x}")
            total = _EMPTY.union(*summaries)
            return VTuple(tuple(results)), total

        def r_unseq(ev, fr, _children=children, _uidx=uidx, _l=loc):
            # Run mode implies the plain oracle (`_fast_sched` and
            # `_inline` are installed together), so only the
            # sequential fast path exists here; the static-prune skip
            # counter and the race check are kept identical.
            static = ev._static_info(_uidx) if ev.static_prune \
                else None
            if static is not None and static[0]:
                ev.static_unseq_skips += 1
            results = []
            first = None
            groups = None
            for child in _children:
                if child.pure is not None:
                    results.append(child.pure(ev, fr))
                else:
                    value, summary = child.run(ev, fr)
                    results.append(value)
                    if summary.records:
                        if first is None:
                            first = summary
                        elif groups is None:
                            groups = [first.records, summary.records]
                        else:
                            groups.append(summary.records)
            if groups is None:
                return VTuple(tuple(results)), \
                    first if first is not None else _EMPTY
            race = find_unsequenced_race(groups)
            if race is not None:
                a, b = race
                raise UndefinedBehaviour(
                    UB.UNSEQUENCED_RACE, _l,
                    f"unsequenced {a.kind} and {b.kind} on "
                    f"overlapping footprints at "
                    f"0x{a.footprint.addr:x}")
            recs = []
            for g in groups:
                recs.extend(g)
            return VTuple(tuple(results)), ActionSummary(recs)

        return LE(g_unseq, run=r_unseq)

    # ---- save / run ------------------------------------------------------

    def _save(self, e: K.ESave, scope, falloc) -> LE:
        defaults = [self._pure(d, scope, falloc) for _, d in e.params]
        s2 = dict(scope)
        slots = []
        for name, _ in e.params:
            slot = falloc.alloc()
            s2[name] = slot
            slots.append(slot)
        body = self._expr(e.body, s2, falloc)

        def g_save(ev, fr, _defaults=defaults, _slots=slots,
                   _body=body, _label=e.label, _l=e.loc):
            values = [d(ev, fr) for d in _defaults]
            total = _EMPTY
            bp = _body.pure
            bg = _body.gen
            while True:
                for s, v in zip(_slots, values):
                    fr[s] = v
                try:
                    if bp is not None:
                        return bp(ev, fr), total
                    value, summary = yield from bg(ev, fr)
                    return value, total.union(summary)
                except RunSignal as r:
                    if r.label != _label:
                        raise
                    if len(r.run_args) != len(_slots):
                        raise InternalError(
                            f"run {_label} arity mismatch",
                            _l) from None
                    values = r.run_args
                    # Account a step per loop re-establishment so that
                    # effect-free infinite loops still hit the
                    # driver's step budget.
                    if ev._inline is not None:
                        ev._inline(_TICK)
                    else:
                        yield _TICK

        def r_save(ev, fr, _defaults=defaults, _slots=slots,
                   _body=body, _label=e.label, _l=e.loc):
            values = [d(ev, fr) for d in _defaults]
            total = _EMPTY
            bp = _body.pure
            br = _body.run
            inline = ev._inline
            while True:
                for s, v in zip(_slots, values):
                    fr[s] = v
                try:
                    if bp is not None:
                        return bp(ev, fr), total
                    value, summary = br(ev, fr)
                    return value, total.union(summary)
                except RunSignal as r:
                    if r.label != _label:
                        raise
                    if len(r.run_args) != len(_slots):
                        raise InternalError(
                            f"run {_label} arity mismatch",
                            _l) from None
                    values = r.run_args
                    inline(_TICK)

        return LE(g_save, run=r_save)

    # ---- scoped lifetimes ------------------------------------------------

    def _scope(self, e: K.EScope, scope, falloc) -> LE:
        s2 = dict(scope)
        created_slot = falloc.alloc()
        s2[_SCOPE_CREATED] = created_slot
        specs = []
        for sc in e.creates:
            slot = falloc.alloc()
            s2[sc.sym] = slot
            align = self.impl.alignof(sc.ty, self.tags)
            args = [VInteger(IntegerValue(align)), VCtype(sc.ty),
                    sc.prefix, sc.readonly]
            specs.append((slot, args, sc.loc))
        body = self._expr(e.body, s2, falloc)

        def g_scope(ev, fr, _cslot=created_slot, _specs=specs,
                    _body=body, _l=e.loc):
            created = []
            fr[_cslot] = VScopeList(created)
            summary = _EMPTY
            for slot, args, sloc in _specs:
                req = ("action", "create", args, "pos", "na", sloc,
                       ())
                inline = ev._inline
                if inline is not None:
                    value, record = inline(req)
                else:
                    value, record = yield req
                fr[slot] = value
                created.append(value)
                summary = summary.union(ActionSummary.single(record))
            try:
                if _body.pure is not None:
                    value = _body.pure(ev, fr)
                    body_summary = _EMPTY
                else:
                    value, body_summary = yield from _body.gen(ev, fr)
            except (RunSignal, ProcReturn) as signal:
                yield from _kill_scope(ev, created, _l)
                raise signal
            kill_summary = yield from _kill_scope(ev, created, _l)
            return value, summary.union(body_summary, kill_summary)

        def r_scope(ev, fr, _cslot=created_slot, _specs=specs,
                    _body=body, _l=e.loc):
            inline = ev._inline
            created = []
            fr[_cslot] = VScopeList(created)
            summary = _EMPTY
            for slot, args, sloc in _specs:
                value, record = inline(("action", "create", args,
                                        "pos", "na", sloc, ()))
                fr[slot] = value
                created.append(value)
                summary = summary.union(ActionSummary.single(record))
            try:
                if _body.pure is not None:
                    value = _body.pure(ev, fr)
                    body_summary = _EMPTY
                else:
                    value, body_summary = _body.run(ev, fr)
            except (RunSignal, ProcReturn) as signal:
                _kill_scope_run(ev, created, _l)
                raise signal
            kill_summary = _kill_scope_run(ev, created, _l)
            return value, summary.union(body_summary, kill_summary)

        return LE(g_scope, run=r_scope)

    def _vla_create(self, e: K.EVlaCreate, scope, falloc) -> LE:
        size = self._pure(e.size, scope, falloc)
        align = self.impl.alignof(e.elem_ty, self.tags)
        align_v = VInteger(IntegerValue(align))
        cty_v = VCtype(e.elem_ty)
        created_slot = scope.get(_SCOPE_CREATED)

        def g_vla(ev, fr, _size=size, _av=align_v, _cv=cty_v,
                  _prefix=e.prefix, _cslot=created_slot, _l=e.loc):
            n = ev._as_integer(_size(ev, fr), _l)
            req = ("action", "create_vla",
                   [_av, _cv, VInteger(n), _prefix],
                   "pos", "na", _l, ())
            inline = ev._inline
            if inline is not None:
                value, record = inline(req)
            else:
                value, record = yield req
            if _cslot is not None:
                holder = fr[_cslot]
                if isinstance(holder, VScopeList):
                    holder.items.append(value)
            return value, ActionSummary.single(record)

        def r_vla(ev, fr, _size=size, _av=align_v, _cv=cty_v,
                  _prefix=e.prefix, _cslot=created_slot, _l=e.loc):
            n = ev._as_integer(_size(ev, fr), _l)
            value, record = ev._inline(
                ("action", "create_vla",
                 [_av, _cv, VInteger(n), _prefix], "pos", "na", _l,
                 ()))
            if _cslot is not None:
                holder = fr[_cslot]
                if isinstance(holder, VScopeList):
                    holder.items.append(value)
            return value, ActionSummary.single(record)

        return LE(g_vla, run=r_vla)


def _match_any(value, fr) -> bool:
    return True


def _kill_scope(ev, created, loc):
    summary = _EMPTY
    for v in reversed(created):
        req = ("action", "kill", [v, VBool(False)], "pos", "na", loc,
               ())
        inline = ev._inline
        if inline is not None:
            _, record = inline(req)
        else:
            _, record = yield req
        summary = summary.union(ActionSummary.single(record))
    return summary


def _kill_scope_run(ev, created, loc):
    inline = ev._inline
    summary = _EMPTY
    for v in reversed(created):
        _, record = inline(("action", "kill", [v, VBool(False)],
                            "pos", "na", loc, ()))
        summary = summary.union(ActionSummary.single(record))
    return summary
