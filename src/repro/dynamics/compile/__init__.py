"""The compiled back end: Core → slotted, closure-threaded linear code.

This package mirrors the compile-once front end with a compile-once
*back end*.  :func:`lower_program` flattens each Core procedure, pure
function, and global initialiser into pre-resolved closures over
slot-indexed frames (no per-step isinstance dispatch, no dict
environments); :class:`CompiledEvaluator` executes them behind the
same generator request protocol the driver, explorer, and
partial-order reduction already consume, so the two back ends are
interchangeable per :class:`repro.dynamics.driver.Driver` instance
(``backend="compiled"`` is the default; ``backend="tree"`` is the
oracle of record and settles any behavioural dispute).

Round 2 (the raw-speed work) added three layers on top of that base:

* **The specialized call protocol** — every C call (``ECcall``)
  resolves its callee through a one-element per-site inline cache,
  writes arguments directly into a preallocated callee frame (no
  generic ``call_proc`` dispatch), and completes statically pure
  callees with no generator suspension at all.  Fast-path vs
  generic-fallback dispatch is counted per run (``compile.call_fast``
  / ``compile.call_generic`` in traces and ``cerberus-py stats``).
* **The fusion pass** — recurring sequences collapse into single
  pre-resolved instructions at lower time: comparison/arithmetic
  operands that are slots or constants are read directly, irrefutable
  spine steps become direct slot-write instructions, and the C
  assignment ``load → compute → store`` triple becomes one fused
  instruction in the run-mode spine plan.  Hit counts live in
  ``LoweredProgram.fused`` (``compile.fused.*`` counters).
* **Run mode** — thread-free programs on plain single-path runs
  execute through direct ``run(ev, fr)`` closures serviced by the
  driver's inline request callback instead of a suspended generator
  stack; exploration and threaded programs keep the full protocol
  (see the :mod:`.lower` module docstring for the exact gate).

Closure-cache lifecycle: lowering is cached per program object
(:func:`ensure_lowered`); the serializable frame/instruction layout
persists in the farm :class:`~repro.farm.store.ArtifactStore` as a
``"lowered"`` record; and the rebuilt closures themselves persist
per process in :data:`repro.farm.store.WARM_CLOSURES`, keyed by the
same content address (artifact + ``LOWERED_VERSION`` + store schema),
so repeat explorations of one artifact skip re-lowering entirely
(see :meth:`repro.pipeline.CompiledProgram.lowered`).
"""

from .evaluator import CompiledEvaluator
from .lower import (
    LOWERED_VERSION, LoweredProgram, ensure_lowered, lower_program,
)

__all__ = [
    "CompiledEvaluator", "LOWERED_VERSION", "LoweredProgram",
    "ensure_lowered", "lower_program",
]
