"""The compiled back end: Core → slotted, closure-threaded linear code.

This package mirrors the compile-once front end with a compile-once
*back end*.  :func:`lower_program` flattens each Core procedure, pure
function, and global initialiser into pre-resolved closures over
slot-indexed frames (no per-step isinstance dispatch, no dict
environments); :class:`CompiledEvaluator` executes them behind the
same generator request protocol the driver, explorer, and
partial-order reduction already consume, so the two back ends are
interchangeable per :class:`repro.dynamics.driver.Driver` instance
(``backend="compiled"`` is the default; ``backend="tree"`` is the
oracle of record and settles any behavioural dispute).

Lowering is cached per program object (:func:`ensure_lowered`) and its
positional frame/instruction layout persists in the farm
:class:`~repro.farm.store.ArtifactStore` as a ``"lowered"`` record
(see :meth:`repro.pipeline.CompiledProgram.lowered`).
"""

from .evaluator import CompiledEvaluator
from .lower import (
    LOWERED_VERSION, LoweredProgram, ensure_lowered, lower_program,
)

__all__ = [
    "CompiledEvaluator", "LOWERED_VERSION", "LoweredProgram",
    "ensure_lowered", "lower_program",
]
