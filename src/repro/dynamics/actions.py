"""Action records and sequenced-before summaries (paper §5.6).

Every memory action performed during an expression evaluation is logged
as an :class:`ActionRecord`. Evaluation of each Core sub-expression
returns, alongside its value, an :class:`ActionSummary`; the sequencing
combinators compose summaries and check for *unsequenced races* (§6.5p2):

* ``unseq(e1..en)`` — actions of distinct e_i are mutually unsequenced;
* ``let weak`` — the *negative* actions of e1 (those not part of a value
  computation, e.g. the store of a postfix increment) are unsequenced
  with respect to everything in e2;
* ``let strong`` — fully sequenced, no new race pairs.

Conflicting pairs where at least one action lies inside an
*indeterminately sequenced* region (a C function body evaluated inside
the expression, §5.6 point 6) are exempt, provided the two actions are
not from the same region chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..memory.base import Footprint
from ..source import Loc


@dataclass(frozen=True, slots=True)
class ActionRecord:
    aid: int
    kind: str                 # create/alloc/kill/load/store/rmw
    footprint: Optional[Footprint]
    is_write: bool
    polarity: str             # "pos" | "neg"
    regions: FrozenSet[int] = frozenset()  # indet region chain
    loc: Loc = field(default_factory=Loc.unknown)

    def in_region(self) -> bool:
        return bool(self.regions)

    def tagged(self, region: int) -> "ActionRecord":
        return ActionRecord(self.aid, self.kind, self.footprint,
                            self.is_write, self.polarity,
                            self.regions | {region}, self.loc)


@dataclass
class ActionSummary:
    """The multiset of actions an evaluation performed."""

    records: List[ActionRecord] = field(default_factory=list)

    @staticmethod
    def empty() -> "ActionSummary":
        return ActionSummary()

    @staticmethod
    def single(record: ActionRecord) -> "ActionSummary":
        return ActionSummary([record])

    def union(self, *others: "ActionSummary") -> "ActionSummary":
        # Summaries are never mutated in place (union / tag_region
        # build new ones), so an all-empty union may return ``self``
        # unshared-copy-free — the common case on the compiled back
        # end's run path, where most summaries are the `_EMPTY`
        # singleton.
        if not any(o.records for o in others):
            return self
        out = list(self.records)
        for o in others:
            out.extend(o.records)
        return ActionSummary(out)

    def negatives(self) -> List[ActionRecord]:
        return [r for r in self.records if r.polarity == "neg"]

    def tag_region(self, region: int) -> "ActionSummary":
        if not self.records:
            return self
        return ActionSummary([r.tagged(region) for r in self.records])


def footprints_conflict(a_addr: int, a_size: int, a_write: bool,
                        b_addr: int, b_size: int, b_write: bool) -> bool:
    """Overlapping byte ranges with at least one write: order matters.
    Zero-size footprints (pure completions) conflict with nothing.

    This is the *single* conflict definition partial-order reduction
    uses — both the in-run sleep-set wake-ups
    (:meth:`repro.dynamics.driver.Oracle.note_action`) and the
    explorer's post-hoc walk
    (:mod:`repro.dynamics.explore.por`) call it, so the two views of
    the live sleep set stay in lockstep."""
    if a_size <= 0 or b_size <= 0:
        return False
    if not (a_write or b_write):
        return False
    return a_addr < b_addr + b_size and b_addr < a_addr + a_size


def conflicting(a: ActionRecord, b: ActionRecord) -> bool:
    """Two actions conflict if they overlap and at least one writes."""
    if a.footprint is None or b.footprint is None:
        return False
    if not (a.is_write or b.is_write):
        return False
    if a.kind in ("create", "alloc", "kill") or \
            b.kind in ("create", "alloc", "kill"):
        return False
    return a.footprint.overlaps(b.footprint)


def find_unsequenced_race(
        groups: List[List[ActionRecord]]) -> Optional[Tuple[ActionRecord,
                                                            ActionRecord]]:
    """Cross-group conflict search with the indeterminate-sequencing
    exemption."""
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            for a in groups[i]:
                for b in groups[j]:
                    if not conflicting(a, b):
                        continue
                    if (a.regions or b.regions) and \
                            a.regions != b.regions:
                        continue  # indeterminately sequenced — ordered
                    return (a, b)
    return None
