"""The execution driver: owns the memory model, the oracle, threads and
I/O; turns a Core program plus an oracle choice path into an
:class:`Outcome`.

"By selecting an appropriate sequencing monad implementation, we can
select whether to perform an exhaustive search for all allowed executions
or pseudorandomly explore single execution paths" (paper §5.1): here the
monad is reified as the :class:`Oracle` — a replayable sequence of
choices.  The state-space explorer (:mod:`repro.dynamics.explore`)
enumerates oracle paths under a pluggable search strategy; the random
driver draws them from a seed.  Beyond the choice trace, the oracle
records a unified *event log* — scheduling choices with their unseq
frame metadata, and performed actions with footprints and scheduling
chains — which the explorer's sleep-set partial-order reduction feeds
on, and it hosts the live sleep set the POR scheduler consults
(:exc:`PathPruned` aborts a path whose remaining interleavings are
re-orderings of executions already covered).
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..core import ast as K
from ..ctypes.types import Array, Integer, IntKind, Pointer, QualType, Void
from ..errors import CerberusError, InternalError, StaticError
from ..memory.base import (
    Footprint, MemoryError_, MemoryModel, VLA_CAP_BYTES,
)
from ..memory.values import (
    AByte, IntegerValue, MemValue, PointerValue, PROV_EMPTY,
)
from .. import ub as UB
from ..ub import UndefinedBehaviour
from ..source import Loc
from .actions import ActionRecord, footprints_conflict
from .evaluator import (
    Evaluator, ProcReturn, ProgramExit, RunSignal,
)
from .values import (
    UNIT, Value, VBool, VCtype, VFunction, VInteger, VPointer, VSpecified,
    VTuple, VUnspecified, core_to_mem, mem_to_core,
)


def format_ub(name, site: str) -> str:
    """The one printable form of a UB behaviour — shared by
    :meth:`Outcome.summary` and the farm's IPC-stripped
    :meth:`repro.farm.pool.Verdict.summary` so serial and farm reports
    never drift apart."""
    return f"UB[{name} @ {site}]" if site else f"UB[{name}]"


class PathPruned(Exception):
    """Raised by the sleep-set scheduler when every unseq candidate is
    asleep: the whole subtree from here is a re-ordering of already
    covered executions (partial-order reduction, §5.6)."""


class Oracle:
    """A replayable nondeterminism source.

    ``path`` is the prefix of choices to replay; once exhausted, further
    choices take ``default`` (0) or, in random mode, a seeded draw. The
    full trace (with arity) is recorded so the explorer can enumerate
    successor paths; a unified event log (choices with unseq metadata,
    actions with footprints and scheduling chains) feeds partial-order
    reduction.

    A replayed choice whose recorded value no longer fits the current
    arity marks the oracle ``diverged`` — the choice is clamped as
    before, but the explorer can now detect and discard the stale path
    instead of silently mis-replaying it.

    ``sleep`` seeds the live sleep set: beyond the replay prefix, unseq
    scheduling avoids sleeping candidates and raises :exc:`PathPruned`
    when none remain; conflicting (or barrier) actions wake entries.

    ``record_events`` turns the event log on — only the explorer reads
    it, so plain single-run oracles skip the per-action bookkeeping
    (and the unbounded list) entirely.
    """

    def __init__(self, path: Optional[List[int]] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Tuple = (),
                 record_events: bool = False):
        self.path = list(path or [])
        self.rng = rng
        self.trace: List[Tuple[str, int, int]] = []
        self.events: Optional[List[tuple]] = \
            [] if record_events else None
        self.diverged = False
        # live entries: (frame, child, addr, size, is_write)
        self.sleep: List[Tuple[int, int, int, int, bool]] = \
            [tuple(e) for e in sleep]

    def choose(self, tag: str, n: int, meta=None) -> int:
        pos = len(self.trace)
        if pos < len(self.path):
            wanted = self.path[pos]
            if 0 <= wanted < n:
                choice = wanted
            else:
                self.diverged = True
                choice = min(max(wanted, 0), n - 1)
        else:
            avail = None
            if self.sleep and tag == "unseq" and meta is not None:
                frame, cands = meta[0], meta[1]
                asleep = {c for (f, c, _a, _s, _w) in self.sleep
                          if f == frame}
                avail = [a for a in range(n)
                         if cands[a] not in asleep]
                if not avail:
                    raise PathPruned(
                        f"all {n} unseq candidates asleep")
                if len(avail) == n:
                    avail = None
            if self.rng is not None:
                choice = self.rng.randrange(n) if avail is None \
                    else avail[self.rng.randrange(len(avail))]
            else:
                choice = 0 if avail is None else avail[0]
        self.trace.append((tag, n, choice))
        if self.events is not None:
            self.events.append(("choose", tag, n, choice, meta))
        return choice

    def note_action(self, kind: str, footprint, is_write: bool,
                    chain: tuple, barrier: bool) -> None:
        """Log a performed action and run sleep-set wake-ups (only
        beyond the replay prefix: replayed events pre-date every
        entry the explorer attached at the branch point).  The wake
        rule is the same ``footprints_conflict`` the explorer's
        post-hoc walk uses, keeping both views of the sleep set in
        lockstep."""
        if self.events is not None:
            self.events.append(("act", kind, footprint, is_write,
                                chain, barrier))
        if self.sleep and len(self.trace) >= len(self.path):
            if barrier or footprint is None:
                self.sleep = []
            else:
                addr, size = footprint.addr, footprint.size
                self.sleep = [
                    z for z in self.sleep
                    if not footprints_conflict(z[2], z[3], z[4],
                                               addr, size, is_write)]


@dataclass
class Outcome:
    """The observable result of one execution path."""

    status: str                       # "done"|"ub"|"exit"|"abort"|
    #                                   "error"|"timeout"|"pruned"
    exit_code: Optional[int] = None
    stdout: str = ""
    ub: Optional[UB.UBName] = None
    ub_detail: str = ""
    loc: Loc = field(default_factory=Loc.unknown)
    error: str = ""
    steps: int = 0
    trace: List[Tuple[str, int, int]] = field(default_factory=list)
    diverged: bool = False            # stale replay prefix detected

    @property
    def is_ub(self) -> bool:
        return self.status == "ub"

    def summary(self) -> str:
        if self.status == "ub":
            # The site is part of the behaviour identity (distinct()
            # keys on it): the same UB name at two program points must
            # not print as one line.
            return format_ub(self.ub,
                             str(self.loc) if self.loc.line > 0 else "")
        if self.status in ("done", "exit"):
            return f"exit={self.exit_code} stdout={self.stdout!r}"
        if self.status == "abort":
            return "abort"
        if self.status == "error":
            return f"error: {self.error}"
        return self.status


@dataclass
class _Thread:
    tid: int
    gen: object
    started: bool = False
    done: bool = False
    result: Optional[Value] = None
    response: object = None
    lock: int = 0
    vc: Dict[int, int] = field(default_factory=dict)
    waiting_on: Optional[int] = None
    failure: Optional[BaseException] = None


class Driver:
    def __init__(self, program: K.Program, model: MemoryModel,
                 oracle: Optional[Oracle] = None,
                 max_steps: int = 2_000_000,
                 deadline: Optional[float] = None,
                 static_prune: bool = False,
                 backend: str = "compiled"):
        self.program = program
        self.model = model
        self.oracle = oracle or Oracle()
        self.model.choose = self.oracle.choose
        self.backend = backend
        if backend == "compiled":
            from .compile import CompiledEvaluator
            self.evaluator = CompiledEvaluator(
                program, model, static_prune=static_prune)
        elif backend == "tree":
            self.evaluator = Evaluator(program, model,
                                       static_prune=static_prune)
        else:
            raise ValueError(
                f"unknown evaluator backend {backend!r} "
                f"(expected 'compiled' or 'tree')")
        # POR bookkeeping (event log + live sleep set) is only worth
        # feeding when someone is listening: the single-run fast path
        # must not pay for it (ROADMAP: "event logging is zero-cost
        # when not exploring").
        self._por_notify = self.oracle.events is not None \
            or bool(self.oracle.sleep)
        # A plain oracle (no replay prefix, no rng, no POR listeners)
        # deterministically picks candidate 0 at every unseq choice;
        # the compiled back end exploits this by running unseq
        # children sequentially without choose round-trips.  Replay,
        # random and exploring oracles keep the full protocol.
        if backend == "compiled" and not self._por_notify \
                and not self.oracle.path and self.oracle.rng is None:
            self.evaluator._fast_sched = True
            # And while the run is single-threaded, hot requests
            # (action / ptrop / tick) are serviced by a direct call
            # instead of a generator suspension — cleared at the
            # first spawn (see _advance).
            self.evaluator._inline = self._inline_request
        # QualType wrappers per C-type object for the load/store hot
        # path (the entry keeps the type alive, so ids are stable).
        self._qt_cache: Dict[int, Tuple] = {}
        self.max_steps = max_steps
        # Absolute time.monotonic() cut-off checked inside the step
        # loop: one long path times out cooperatively at the deadline
        # instead of blowing a whole farm task budget.
        self.deadline = deadline
        self.stdout_chunks: List[str] = []
        self.steps = 0
        self._tid_counter = itertools.count(1)
        self.threads: Dict[int, _Thread] = {}
        # Data-race detection state (vector clocks per location byte).
        self._last_write: Dict[int, Tuple[int, Dict[int, int]]] = {}
        self._last_reads: Dict[int, List[Tuple[int, Dict[int, int]]]] = {}
        self._atomic_vc: Dict[int, Dict[int, int]] = {}
        self._action_counter = itertools.count(1)

    # -- program setup -----------------------------------------------------------

    def _allocate_globals(self) -> None:
        """Two-phase global setup: allocate every object (so addresses
        and adjacency are fixed), then run initialisers in order."""
        evaluator = self.evaluator
        globs = list(self.program.globs)
        if self.model.options.globals_reversed:
            globs = list(reversed(globs))
        for g in globs:
            align = self.program.impl.alignof(g.qty.ty, self.program.tags)
            # Allocate writable; the readonly flag is applied after the
            # initialising stores have run.
            ptr = self.model.create(g.qty.ty, align, g.name, "static",
                                    readonly=False)
            evaluator.global_env[g.name] = VPointer(ptr)
        fn_addr = 0x1_0000_0000
        names = list(self.program.procs) + [
            n for n in evaluator.native_procs
            if n not in self.program.procs]
        for name in names:
            evaluator.global_env.setdefault(name, VPointer(
                PointerValue(fn_addr, PROV_EMPTY, meta=("func", name))))
            fn_addr += 16

    def _run_global_inits(self) -> None:
        """GlobDef.init is an effectful Core expression performing the
        initialising stores (static objects start zeroed, §6.7.9p10)."""
        for g in self.program.globs:
            ptr = self.evaluator.global_env[g.name]
            assert isinstance(ptr, VPointer)
            from ..memory.values import zero_value
            zv = zero_value(g.qty.ty, self.program.impl,
                            self.program.tags)
            alloc = self.model.allocations[ptr.ptr.prov]
            alloc.data[:] = self.model.codec.repify(g.qty.ty, zv)
        for g in self.program.globs:
            if g.init is None:
                continue
            gen = self.evaluator.run_glob_init(g)
            self._drain(gen)
        for g in self.program.globs:
            if g.readonly:
                ptr = self.evaluator.global_env[g.name]
                assert isinstance(ptr, VPointer)
                self.model.allocations[ptr.ptr.prov].readonly = True

    def _drain(self, gen):
        """Run a generator to completion on the main thread (used only
        during startup, where no interleaving exists)."""
        response = None
        started = False
        while True:
            try:
                request = gen.send(response) if started else next(gen)
                started = True
            except StopIteration as stop:
                return stop.value
            response = self._handle(request, self.threads.get(0))

    # -- main run ----------------------------------------------------------------------

    def run(self, entry: str = "main",
            args: Optional[List[Value]] = None) -> Outcome:
        """Execute one path.  When an observability context is active
        (:func:`repro.obs.active`) the run's step count and wall/CPU
        time are recorded; the disabled-mode cost is one global read —
        the same gating discipline as ``_por_notify`` above."""
        ctx = obs.active()
        if ctx is None:
            return self._run(entry, args)
        w0 = time.perf_counter()
        c0 = time.process_time()
        try:
            return self._run(entry, args)
        finally:
            ctx.inc("driver.runs")
            ctx.inc("driver.steps", self.steps)
            ctx.observe("driver.run_s", time.perf_counter() - w0)
            ctx.observe("driver.run_s.cpu", time.process_time() - c0)
            skips = self.evaluator.static_unseq_skips
            if skips:
                ctx.inc("explore.static_prune_skips", skips)
            # Specialized-call-protocol hit rates (compiled back end
            # only; the tree evaluator has no such counters).
            fast = getattr(self.evaluator, "call_fast", 0)
            if fast:
                ctx.inc("compile.call_fast", fast)
            generic = getattr(self.evaluator, "call_generic", 0)
            if generic:
                ctx.inc("compile.call_generic", generic)

    def _run(self, entry: str = "main",
             args: Optional[List[Value]] = None) -> Outcome:
        try:
            self._allocate_globals()
            self._run_global_inits()
        except UndefinedBehaviour as u:
            return self._ub_outcome(u)
        except PathPruned:
            return self._outcome("pruned")
        except StaticError as s:
            return self._outcome("error", error=str(s))
        main_proc = self.program.procs.get(entry)
        if main_proc is None:
            return self._outcome("error",
                                 error=f"no procedure '{entry}'")
        gen = self.evaluator.call_proc(entry, args or [], Loc.unknown())
        main_thread = _Thread(0, gen, vc={0: 1})
        self.threads[0] = main_thread
        try:
            self._schedule()
        except UndefinedBehaviour as u:
            return self._ub_outcome(u)
        except PathPruned:
            return self._outcome("pruned")
        except ProgramExit as ex:
            return self._outcome("abort" if ex.aborted else "exit",
                                 exit_code=ex.code)
        except StaticError as s:
            return self._outcome("error", error=str(s))
        except _StepLimit:
            return self._outcome("timeout")
        except (RunSignal, ProcReturn) as esc:
            return self._outcome("error", error=f"escaped control "
                                 f"signal {esc!r}")
        result = main_thread.result
        code = 0
        if isinstance(result, VSpecified):
            result = result.value
        if isinstance(result, VInteger):
            code = result.ival.value
        elif isinstance(result, (VUnspecified, VUnit)):
            code = 0
        return self._outcome("done", exit_code=code)

    def _stdout(self) -> str:
        return "".join(self.stdout_chunks)

    def _outcome(self, status: str, **kw) -> Outcome:
        return Outcome(status, stdout=self._stdout(), steps=self.steps,
                       trace=self.oracle.trace,
                       diverged=self.oracle.diverged, **kw)

    def _ub_outcome(self, u: UndefinedBehaviour) -> Outcome:
        return self._outcome("ub", ub=u.ub, ub_detail=u.detail,
                             loc=u.loc)

    # -- scheduler --------------------------------------------------------------------

    def _schedule(self) -> None:
        """Thread scheduler. Like unseq scheduling, thread-interleaving
        choices are made only at action boundaries (non-action requests
        commute)."""
        threads = self.threads
        current: Optional[_Thread] = None
        while True:
            runnable = [t for t in threads.values()
                        if not t.done and self._can_run(t)]
            if not runnable:
                if all(t.done for t in threads.values()):
                    return
                raise InternalError("thread deadlock (all waiting)")
            # Note: ccall/atomic "locks" constrain interleaving *within*
            # one thread's expression evaluation (§5.6); they do not
            # serialise threads — C11 threads interleave freely.
            if current is None or current.done or \
                    current not in runnable:
                if len(runnable) > 1:
                    idx = self.oracle.choose("thread", len(runnable))
                    current = runnable[idx]
                else:
                    current = runnable[0]
            descheduled = self._advance(current)
            if descheduled:
                current = None

    def _can_run(self, t: _Thread) -> bool:
        if t.waiting_on is None:
            return True
        target = self.threads.get(t.waiting_on)
        return target is not None and target.done

    def _advance(self, t: _Thread) -> bool:
        """Advance a thread by one request; returns True when this was
        a scheduling point (action performed, thread blocked/done)."""
        self.steps += 1
        if self.steps > self.max_steps:
            raise _StepLimit()
        if self.deadline is not None and not (self.steps & 0xFF) and \
                time.monotonic() >= self.deadline:
            raise _StepLimit()
        if t.waiting_on is not None:
            target = self.threads[t.waiting_on]
            if target.failure is not None:
                raise target.failure
            t.vc = _vc_join(t.vc, target.vc)
            t.response = target.result
            t.waiting_on = None
        gen = t.gen
        try:
            if not t.started:
                t.started = True
                request = next(gen)
            else:
                request = gen.send(t.response)
        except StopIteration as stop:
            t.done = True
            value = stop.value
            if isinstance(value, tuple):
                value = value[0]
            t.result = value
            return True
        except (UndefinedBehaviour, ProgramExit, StaticError):
            if t.tid == 0:
                raise
            t.done = True
            t.failure = None
            raise
        kind = request[0]
        if kind == "lock":
            t.lock += request[1]
            t.response = None
            return False
        if kind == "spawn":
            tid = next(self._tid_counter)
            child = _Thread(tid, request[1])
            child.vc = dict(t.vc)
            child.vc[tid] = 1
            t.vc[t.tid] = t.vc.get(t.tid, 0) + 1
            self.threads[tid] = child
            # The single-threaded inline fast path ends here: with a
            # second thread alive, every action must route through
            # the scheduler again for interleaving and cross-thread
            # race detection.
            if self.backend == "compiled":
                self.evaluator._inline = None
            t.response = tid
            return True
        if kind == "wait":
            t.waiting_on = request[1]
            t.response = None
            return True
        t.response = self._handle(request, t)
        # I/O is observable, so it is a scheduling point too.
        return kind in ("action", "raw", "stdout")

    # -- request handling ------------------------------------------------------------------

    def _inline_request(self, request: tuple):
        """Single-threaded fast-path request service for the compiled
        back end: the evaluator calls this directly for hot requests
        (action / ptrop / tick) instead of suspending the generator
        stack.  Step accounting, the step limit, and the cooperative
        deadline are exactly `_advance`'s; POR notification is
        statically off (the inline path is only installed when no POR
        listener exists) and race checks are vacuous single-threaded,
        so `_do_action` is called with no thread."""
        self.steps += 1
        if self.steps > self.max_steps:
            raise _StepLimit()
        if self.deadline is not None and not (self.steps & 0xFF) and \
                time.monotonic() >= self.deadline:
            raise _StepLimit()
        kind = request[0]
        if kind == "action":
            return self._do_action(request, None)
        if kind == "ptrop":
            return self._perform_ptrop(request)
        if kind == "tick":
            return None
        # The remaining request kinds only reach the inline service in
        # run mode (direct execution of a thread-free program, where
        # *every* request is serviced here): choices still consult the
        # oracle (a plain one — that is the inline precondition), and
        # I/O / raw services behave exactly as `_handle`'s, minus the
        # POR notification that is statically off on this path.
        if kind == "choose":
            return self.oracle.choose(request[1], request[2],
                                      request[3] if len(request) > 3
                                      else None)
        if kind == "stdout":
            self.stdout_chunks.append(request[1])
            return None
        if kind == "raw":
            return self._perform_raw(request, None)
        if kind == "lock":
            return None
        raise InternalError(f"inline request {kind} not supported")

    def _handle(self, request: tuple, thread: Optional[_Thread]):
        kind = request[0]
        if kind == "action":
            return self._perform_action(request, thread)
        if kind == "ptrop":
            return self._perform_ptrop(request)
        if kind == "choose":
            return self.oracle.choose(request[1], request[2],
                                      request[3] if len(request) > 3
                                      else None)
        if kind == "stdout":
            self.stdout_chunks.append(request[1])
            # I/O is observably ordered: a barrier for POR purposes.
            if self._por_notify:
                self.oracle.note_action("stdout", None, False, (),
                                        True)
            return None
        if kind == "raw":
            # Raw byte services carry no scheduling chain and may read
            # or change allocation metadata: conservatively a barrier.
            if self._por_notify:
                self.oracle.note_action("raw", None, False, (), True)
            return self._perform_raw(request, thread)
        if kind == "lock":
            return None
        if kind == "tick":
            return None
        raise InternalError(f"unknown request {kind}")

    # -- memory actions ----------------------------------------------------------------------

    def _perform_action(self, request: tuple, thread: Optional[_Thread]):
        value, record = self._do_action(request, thread)
        # Feed the explorer's event log: the scheduling chain of unseq
        # (frame, child) pairs the evaluator attached to the request,
        # plus whether this action is a POR barrier (no byte footprint
        # or an allocation lifetime change).
        if self._por_notify:
            chain = request[6] if len(request) > 6 else ()
            barrier = record.footprint is None or \
                record.kind in ("create", "alloc", "kill")
            self.oracle.note_action(record.kind, record.footprint,
                                    record.is_write, chain, barrier)
        return value, record

    def _do_action(self, request: tuple, thread: Optional[_Thread]):
        _, action_kind, args, polarity, order, loc = request[:6]
        model = self.model
        try:
            # Dispatch order follows action frequency: loads and stores
            # dominate every run, then the create/kill lifetime pairs.
            if action_kind == "load":
                cty, target = args
                qty = cty.ty if isinstance(cty, VCtype) else cty
                ptr = self.evaluator._as_pointer(target, loc)
                footprint, mv = model.load(self._qualtype(qty), ptr)
                record = self._record("load", footprint, False, polarity,
                                      loc)
                self._race_check(footprint, False, order, thread, loc)
                return mem_to_core(mv), record
            if action_kind == "store":
                cty, target, value = args[:3]
                qty = cty.ty if isinstance(cty, VCtype) else cty
                ptr = self.evaluator._as_pointer(target, loc)
                mv = core_to_mem(qty, value)
                footprint = model.store(self._qualtype(qty), ptr, mv)
                record = self._record("store", footprint, True, polarity,
                                      loc)
                self._race_check(footprint, True, order, thread, loc)
                return UNIT, record
            if action_kind == "create":
                align, cty, prefix, readonly = args
                ptr = model.create(cty.ty, align.ival.value, prefix,
                                   "automatic", readonly=readonly)
                record = self._record("create", None, False, polarity,
                                      loc)
                return VPointer(ptr), record
            if action_kind == "kill":
                target, dyn = args
                ptr = self.evaluator._as_pointer(target, loc)
                model.kill(ptr, dyn.b)
                record = self._record("kill", None, False, polarity, loc)
                return UNIT, record
            if action_kind == "create_vla":
                align, cty, count, prefix = args
                n = count.ival.value
                elem = cty.ty
                esize = self.program.impl.sizeof(elem,
                                                 self.program.tags)
                # Explicit checks (never bare asserts: they must
                # survive ``python -O``) backing the elaborated Core's
                # undef tests.
                if n <= 0:
                    raise MemoryError_(
                        UB.VLA_SIZE_NOT_POSITIVE,
                        f"VLA '{prefix}' size {n} is not positive")
                if n * esize > VLA_CAP_BYTES:
                    raise MemoryError_(
                        UB.VLA_SIZE_TOO_LARGE,
                        f"VLA '{prefix}' needs {n * esize} bytes "
                        f"(bound {VLA_CAP_BYTES})")
                arr = Array(QualType(elem), n)
                ptr = model.create(arr, align.ival.value, prefix,
                                   "automatic")
                record = self._record("create", None, False, polarity,
                                      loc)
                return VPointer(ptr), record
            if action_kind == "loadbf":
                cty, target, boff, bwidth = args
                ptr = self.evaluator._as_pointer(target, loc)
                footprint, mv = model.load_bits(
                    cty.ty, ptr,
                    self.evaluator._as_integer(boff, loc).value,
                    self.evaluator._as_integer(bwidth, loc).value)
                record = self._record("load", footprint, False,
                                      polarity, loc)
                self._race_check(footprint, False, order, thread, loc)
                return mem_to_core(mv), record
            if action_kind == "storebf":
                cty, target, boff, bwidth, value = args
                ptr = self.evaluator._as_pointer(target, loc)
                mv = core_to_mem(cty.ty, value)
                footprint = model.store_bits(
                    cty.ty, ptr,
                    self.evaluator._as_integer(boff, loc).value,
                    self.evaluator._as_integer(bwidth, loc).value, mv)
                record = self._record("store", footprint, True,
                                      polarity, loc)
                self._race_check(footprint, True, order, thread, loc)
                return UNIT, record
            if action_kind == "alloc":
                align, size = args
                n = self.evaluator._as_integer(size, loc).value
                ptr = model.alloc_region(n, align.ival.value)
                record = self._record("alloc", None, False, polarity, loc)
                return VPointer(ptr), record
            if action_kind == "rmw":
                cty, target, delta = args[:3]
                qty = cty.ty if isinstance(cty, VCtype) else cty
                ptr = self.evaluator._as_pointer(target, loc)
                footprint, mv = model.load(QualType(qty), ptr)
                old = mem_to_core(mv)
                iv = self.evaluator._as_integer(old, loc)
                dv = self.evaluator._as_integer(delta, loc)
                new = IntegerValue(iv.value + dv.value, iv.prov)
                from ..memory.values import MVInteger
                model.store(QualType(qty), ptr, MVInteger(qty, new))
                record = self._record("rmw", footprint, True, polarity,
                                      loc)
                self._race_check(footprint, True, "seq_cst", thread, loc)
                return VSpecified(VInteger(iv)), record
        except MemoryError_ as me:
            raise UndefinedBehaviour(me.entry, loc, me.detail) from None
        raise InternalError(f"unknown action {action_kind}")

    def _qualtype(self, ty) -> QualType:
        hit = self._qt_cache.get(id(ty))
        if hit is None:
            hit = (ty, QualType(ty))
            self._qt_cache[id(ty)] = hit
        return hit[1]

    def _record(self, kind: str, footprint, is_write: bool,
                polarity: str, loc) -> ActionRecord:
        return ActionRecord(next(self._action_counter), kind, footprint,
                            is_write, polarity, frozenset(), loc)

    # -- cross-thread data-race detection (vector clocks) -----------------------------------

    def _race_check(self, footprint: Footprint, is_write: bool,
                    order: str, thread: Optional[_Thread], loc) -> None:
        if thread is None or len(self.threads) <= 1:
            return
        tid = thread.tid
        vc = thread.vc
        if order != "na":
            # SC atomics synchronise: join location VC both ways.
            for addr in range(footprint.addr,
                              footprint.addr + footprint.size):
                lvc = self._atomic_vc.setdefault(addr, {})
                thread.vc = vc = _vc_join(vc, lvc)
                self._atomic_vc[addr] = _vc_join(lvc, vc)
            self._bump(thread)
            return
        for addr in range(footprint.addr, footprint.addr + footprint.size):
            lw = self._last_write.get(addr)
            if lw is not None and lw[0] != tid and \
                    not _vc_leq_at(lw[1], vc, lw[0]):
                raise UndefinedBehaviour(
                    UB.DATA_RACE, loc,
                    f"non-atomic access races with write by thread "
                    f"{lw[0]} at 0x{addr:x}")
            if is_write:
                for rtid, rvc in self._last_reads.get(addr, []):
                    if rtid != tid and not _vc_leq_at(rvc, vc, rtid):
                        raise UndefinedBehaviour(
                            UB.DATA_RACE, loc,
                            f"write races with read by thread {rtid} at "
                            f"0x{addr:x}")
                self._last_write[addr] = (tid, dict(vc))
                self._last_reads[addr] = []
            else:
                self._last_reads.setdefault(addr, []).append(
                    (tid, dict(vc)))
        self._bump(thread)

    def _bump(self, thread: _Thread) -> None:
        thread.vc[thread.tid] = thread.vc.get(thread.tid, 0) + 1

    # -- ptrops -------------------------------------------------------------------------------

    def _perform_ptrop(self, request: tuple) -> Value:
        _, op, args, aux, loc = request
        model = self.model
        ev = self.evaluator
        try:
            if op in ("eq", "ne"):
                a = ev._as_pointer(args[0], loc)
                b = ev._as_pointer(args[1], loc)
                r = model.eq(a, b)
                if op == "ne":
                    r = 1 - r
                return VInteger(IntegerValue(r))
            if op in ("lt", "gt", "le", "ge"):
                a = ev._as_pointer(args[0], loc)
                b = ev._as_pointer(args[1], loc)
                sym = {"lt": "<", "gt": ">", "le": "<=", "ge": ">="}[op]
                return VInteger(IntegerValue(
                    model.relational(sym, a, b)))
            if op == "ptrdiff":
                a = ev._as_pointer(args[0], loc)
                b = ev._as_pointer(args[1], loc)
                return VInteger(model.ptrdiff(aux, a, b))
            if op == "intFromPtr":
                p = ev._as_pointer(args[0], loc)
                return VInteger(model.int_from_ptr(p, aux))
            if op == "ptrFromInt":
                iv = ev._as_integer(args[0], loc)
                return VPointer(model.ptr_from_int(iv))
            if op == "ptrValidForDeref":
                p = ev._as_pointer(args[0], loc)
                return VBool(model.valid_for_deref(p, aux))
            if op == "arrayShift":
                p = ev._as_pointer(args[0], loc)
                idx = ev._as_integer(args[1], loc)
                return VPointer(model.array_shift(p, aux, idx))
        except MemoryError_ as me:
            raise UndefinedBehaviour(me.entry, loc, me.detail) from None
        raise InternalError(f"unknown ptrop {op}")

    # -- raw byte services for the mini-libc ---------------------------------------------------

    def _perform_raw(self, request: tuple, thread: Optional[_Thread]):
        _, method, args, loc = request
        model = self.model
        try:
            if method == "load_bytes":
                ptr, n = args
                data = model.load_bytes(ptr, n)
                self._race_check(Footprint(ptr.addr, max(n, 1)), False,
                                 "na", thread, loc)
                return data
            if method == "store_bytes":
                ptr, data = args
                model.store_bytes(ptr, data)
                self._race_check(Footprint(ptr.addr, max(len(data), 1)),
                                 True, "na", thread, loc)
                return None
            if method == "cstring":
                # Optional second element: a byte limit — read at most
                # that many bytes and do not require a terminator
                # (printf %s with an explicit precision, §7.21.6.1p8).
                ptr = args[0]
                limit = args[1] if len(args) > 1 else None
                out = bytearray()
                addr = ptr.addr
                for i in range(1 << 20 if limit is None else limit):
                    byte = model.load_bytes(ptr.with_addr(addr + i), 1)[0]
                    if byte.is_unspecified:
                        return None  # caller decides how to react
                    if byte.value == 0:
                        break
                    out.append(byte.value)
                return bytes(out)
            if method == "realloc":
                ptr, size = args
                return model.realloc(ptr, size) \
                    if hasattr(model, "realloc") else None
            if method == "allocation_of":
                ptr, = args
                if isinstance(ptr.prov, int):
                    return model.allocations.get(ptr.prov)
                return model._find_live_by_address(ptr.addr, 1)
        except MemoryError_ as me:
            raise UndefinedBehaviour(me.entry, loc, me.detail) from None
        raise InternalError(f"unknown raw method {method}")


class _StepLimit(Exception):
    pass


def _vc_join(a: Dict[int, int], b: Dict[int, int]) -> Dict[int, int]:
    out = dict(a)
    for k, v in b.items():
        out[k] = max(out.get(k, 0), v)
    return out


def _vc_leq_at(prev: Dict[int, int], cur: Dict[int, int],
               tid: int) -> bool:
    """prev happened-before cur as far as prev's own component goes."""
    return prev.get(tid, 0) <= cur.get(tid, 0)


def run_program(program: K.Program, model: MemoryModel,
                oracle: Optional[Oracle] = None,
                max_steps: int = 2_000_000,
                entry: str = "main",
                backend: str = "compiled") -> Outcome:
    """Run one execution path of an elaborated Core program."""
    return Driver(program, model, oracle, max_steps,
                  backend=backend).run(entry)
