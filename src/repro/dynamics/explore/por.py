"""Sleep-set partial-order reduction at ``unseq`` scheduling points.

The evaluator's ``("choose", "unseq", n, meta)`` request carries the
unseq frame id and the candidate child indices; every performed memory
action carries the chain of ``(frame, child)`` pairs that scheduled it
(:class:`~repro.dynamics.driver.Oracle` records both as an event log).
From a completed run, the explorer can therefore recover, for each
scheduling point, the *pending next action* of every candidate — it is
the first event later in the run attributed to that ``(frame, child)``,
and it is the same action the candidate would have performed if
scheduled at the point itself, provided no *barrier* event (allocation
lifetime change, raw byte service, I/O — anything that can change
pointer metadata or is observably ordered) happened in between.

Two next actions are *independent* when their byte footprints do not
overlap, or neither writes; executing them in either order reaches the
same state, so the two orders are one Mazurkiewicz trace.  Classic
sleep sets exploit this: after exploring candidate ``a`` first at a
point, the sibling branch that schedules ``b`` first inherits a sleep
entry for ``a`` (when ``a ⊥ b``), meaning "do not schedule ``a``
until something conflicting with it runs".  The in-run scheduler
(:meth:`Oracle.choose`) honours sleep entries — it schedules the first
non-sleeping candidate and aborts the path (:class:`PathPruned`) when
every candidate is asleep, i.e. when the remaining subtree is a
re-ordering of executions already covered — and conflicting events
wake entries (:meth:`Oracle.note_action`), both live during the run
and in the explorer's post-hoc walk here.

Conflicting pairs inside *indeterminately sequenced* regions (function
calls inside the expression, §5.6 point 6) are exempt from the
unsequenced-race UB but not from ordering: both orders of two
conflicting calls remain observable, so for POR purposes they stay
dependent — and in practice their scope creates are barriers, which
keeps them fully explored.

Everything unknown is treated as dependent: unattributable or
barrier next actions produce no sleep entries and barrier events wake
every sleeper.  Pruning is therefore only ever a subset of what full
sleep sets would allow — sound by construction, verified empirically
by the POR soundness tests (identical ``distinct()`` behaviour sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..actions import footprints_conflict

# A sleep entry: (frame, child, addr, size, is_write) — the candidate
# `child` of unseq frame `frame` is asleep, and its pending action has
# the given byte footprint.  Plain tuples keep nodes picklable for
# farm-sharded frontiers.
SleepEntry = Tuple[int, int, int, int, bool]


@dataclass(frozen=True)
class PathNode:
    """One frontier element: a replayable oracle choice prefix, the
    sleep set active at its branch point, and the ``(tag, alt)`` flip
    that created it (coverage-guided search keys on it)."""

    choices: Tuple[int, ...] = ()
    sleep: Tuple[SleepEntry, ...] = ()
    flip: Optional[Tuple[str, int]] = None


# The transition of a candidate that completes without performing any
# further action: a zero-byte footprint, independent of everything.
PURE = (0, 0, False)


def next_transition(events: List[tuple], start: int, frame: int,
                    child: int,
                    completed: bool) -> Optional[Tuple[int, int, bool]]:
    """The pending transition of unseq candidate ``(frame, child)`` as
    of the choice event at ``events[start]``: ``(addr, size,
    is_write)`` of its next action, :data:`PURE` when the candidate
    runs to completion without performing one, or ``None`` when it
    cannot be trusted (never observed, observed past a barrier, or
    itself a barrier).

    A later scheduling choice of the same frame whose candidate list
    no longer contains the child proves the child completed — and, the
    scan having found no attributed action before it, completed
    purely.  ``completed`` says the whole run finished normally, which
    proves the same for candidates the frame never chose over again.
    """
    for ev in events[start + 1:]:
        if ev[0] == "choose":
            meta = ev[4]
            if meta is not None and meta[0] == frame \
                    and child not in meta[1]:
                return PURE
            continue
        _, _kind, fp, is_write, chain, barrier = ev
        if (frame, child) in chain:
            if barrier or fp is None:
                return None
            return (fp.addr, fp.size, is_write)
        if barrier:
            return None     # metadata may have changed under it
    return PURE if completed else None


def generate_branches(node: PathNode, events: List[tuple],
                      por: bool,
                      completed: bool = False) -> List[List[PathNode]]:
    """Sibling prefixes for every *new* choice point of a completed
    (or pruned) run, grouped per point in forward order.

    Without POR this reproduces the historical DFS branching exactly:
    every untried alternative of every choice point beyond the
    replayed prefix.  With POR, ``unseq`` points skip alternatives
    that are asleep (their order is covered by an earlier sibling's
    subtree) and pass sleep sets down per the sleep-set rule."""
    out: List[List[PathNode]] = []
    live: List[SleepEntry] = list(node.sleep) if por else []
    branch_at = len(node.choices)
    taken: List[int] = []
    for ev_idx, ev in enumerate(events):
        if ev[0] == "act":
            # Wake-up propagation starts at the branch point; events
            # in the replayed region pre-date every live entry.
            if live and len(taken) >= branch_at:
                _, _kind, fp, is_write, _chain, barrier = ev
                if barrier or fp is None:
                    live = []
                else:
                    live = [z for z in live
                            if not footprints_conflict(
                                z[2], z[3], z[4],
                                fp.addr, fp.size, is_write)]
            continue
        _, tag, n, chosen, meta = ev
        point = len(taken)
        base = tuple(taken)
        taken.append(chosen)
        if point < branch_at:
            continue
        if por and tag == "unseq" and meta is not None:
            out.append(_unseq_siblings(base, ev_idx, events, live,
                                       tag, n, chosen, meta,
                                       completed))
        else:
            # A flip at a non-unseq point changes control flow
            # arbitrarily, so siblings restart with an empty sleep
            # set (conservative: prunes less, never more).
            out.append([PathNode(base + (alt,), (), (tag, alt))
                        for alt in range(n) if alt != chosen])
    return out


def _unseq_siblings(base: Tuple[int, ...], ev_idx: int,
                    events: List[tuple], live: List[SleepEntry],
                    tag: str, n: int, chosen: int,
                    meta: tuple, completed: bool) -> List[PathNode]:
    """The sleep-set sibling rule at one unseq scheduling point:
    skip alternatives whose candidate is asleep; give each pushed
    sibling the surviving independent entries plus an entry for every
    previously explored alternative whose next action commutes.

    When the evaluator resolved static footprint hulls for this frame
    (``static_prune``: a third meta component, aligned with the
    candidate list), they stand in for next transitions the event log
    cannot attribute — each hull covers *all* of its candidate's
    actions, so a sleep entry derived from it is a superset footprint:
    wake-ups fire no later than with the exact next action, keeping
    the prune a subset of what exact sleep sets would allow."""
    frame, cands = meta[0], meta[1]
    static = meta[2] if len(meta) > 2 else None
    asleep = {z[1] for z in live if z[0] == frame}
    cache: dict = {}

    def t_of(alt: int):
        if alt not in cache:
            t = next_transition(events, ev_idx, frame,
                                cands[alt], completed)
            if t is None and static is not None:
                t = static[alt]
            cache[alt] = t
        return cache[alt]

    explored = [chosen]
    nodes: List[PathNode] = []
    for alt in range(n):
        if alt == chosen:
            continue
        if cands[alt] in asleep:
            continue        # a covered re-ordering: prune the subtree
        t_alt = t_of(alt)
        sleep: List[SleepEntry] = []
        if t_alt is not None:
            addr, size, is_write = t_alt
            for z in live:
                if not footprints_conflict(z[2], z[3], z[4],
                                           addr, size, is_write):
                    sleep.append(z)
            for j in explored:
                t_j = t_of(j)
                if t_j is not None and not footprints_conflict(
                        t_j[0], t_j[1], t_j[2], addr, size, is_write):
                    sleep.append((frame, cands[j],
                                  t_j[0], t_j[1], t_j[2]))
        nodes.append(PathNode(base + (alt,), tuple(sleep), (tag, alt)))
        explored.append(alt)
    return nodes
