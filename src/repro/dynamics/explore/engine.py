"""The exploration engine: stateless replay over a strategy-ordered
frontier of oracle choice prefixes.

Each popped :class:`~repro.dynamics.explore.por.PathNode` is re-run on
a fresh driver (and fresh memory model) with an
:class:`~repro.dynamics.driver.Oracle` replaying its prefix; sibling
prefixes are generated from the run's recorded choice/action event log
(:func:`~repro.dynamics.explore.por.generate_branches`).  The engine
adds, on top of the historical replay-DFS:

* pluggable :class:`~repro.dynamics.explore.strategies.SearchStrategy`
  frontier orderings (``dfs``/``bfs``/``random``/``coverage``);
* optional sleep-set partial-order reduction (``por=True``) — runs the
  sleep-aware scheduler aborts are counted as ``pruned``;
* replay-divergence discarding — a run whose replayed prefix no longer
  matches the choice-point arities is counted ``diverged`` and its
  outcome dropped instead of silently mis-replayed;
* a cooperative wall-clock deadline threaded *into* the driver step
  loop, so one long path returns ``status="timeout"`` at the deadline
  instead of blowing a farm task budget;
* mid-flight frontier handoff (``frontier_target``) — the seeding
  phase of farm-sharded exploration stops once the frontier is wide
  enough and exposes the remaining nodes via :attr:`Explorer.pending`;
* incremental re-exploration (``store=``/``resume=``/``cache_key=`` on
  :func:`explore_all`/:func:`explore_program`, implemented by
  :mod:`repro.farm.explorestore`) — completed results and interrupted
  frontiers persist in the artifact store, so an unchanged program is
  never re-explored and an interrupted campaign resumes exactly where
  it stopped (``requeue_interrupted`` puts a deadline-aborted path
  back on the frontier uncounted, keeping resumed accounting equal to
  an uninterrupted run's).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from ... import obs
from ..driver import Driver, Oracle
from .por import PathNode, generate_branches
from .result import ExplorationResult
from .strategies import make_strategy


class Explorer:
    """One exploration campaign over a single program + model."""

    def __init__(self, make_driver: Callable[[Oracle], Driver],
                 max_paths: int = 2000,
                 entry: str = "main",
                 deadline_s: Optional[float] = None,
                 strategy="dfs",
                 por: bool = False,
                 seed: Optional[int] = None,
                 initial: Optional[Sequence[PathNode]] = None,
                 frontier_target: Optional[int] = None,
                 requeue_interrupted: bool = False):
        self.make_driver = make_driver
        self.max_paths = max_paths
        self.entry = entry
        self.deadline_s = deadline_s
        self.strategy = make_strategy(strategy, seed)
        self.por = por
        self.initial = list(initial) if initial is not None else None
        self.frontier_target = frontier_target
        # Resumable-interruption mode: a path the wall-clock deadline
        # aborted *mid-run* is put back on the frontier uncounted
        # instead of surfacing as a "timeout" outcome, so a later run
        # resuming from :attr:`pending` replays it in full and the
        # merged accounting equals an uninterrupted run's.
        self.requeue_interrupted = requeue_interrupted
        #: Nodes left unexplored after :meth:`run` — empty unless a
        #: budget/deadline was hit or ``frontier_target`` stopped the
        #: loop for a farm handoff.
        self.pending: List[PathNode] = []

    def run(self) -> ExplorationResult:
        """One enumeration.  With observability on, the whole run is
        an ``explore`` span, per-enumeration counters (paths, pruned,
        diverged, abandoned, requeued, choice points) are recorded,
        and — when tracing to a file — a cumulative paths-over-time
        timeline is sampled (the paths/sec curve)."""
        ctx = obs.active()
        if ctx is None:
            return self._run(None)
        with ctx.span("explore", por=self.por,
                      strategy=type(self.strategy).__name__):
            result = self._run(ctx)
        ctx.inc("explore.paths", result.paths_run)
        ctx.inc("explore.pruned", result.pruned)
        ctx.inc("explore.diverged", result.diverged)
        ctx.inc("explore.abandoned", result.abandoned)
        return result

    def _run(self, ctx) -> ExplorationResult:
        result = ExplorationResult()
        tracer = ctx.tracer if ctx is not None else None
        timeline: List[tuple] = []
        last_sample = -1.0
        deadline = (time.monotonic() + self.deadline_s
                    if self.deadline_s is not None else None)
        roots = self.initial if self.initial is not None \
            else [PathNode()]
        for node in roots:
            if not isinstance(node, PathNode):
                node = PathNode(tuple(node))
            self.strategy.push(node)
        while len(self.strategy):
            if result.paths_run >= self.max_paths or \
                    (deadline is not None and
                     time.monotonic() >= deadline):
                result.exhausted = False
                break
            if self.frontier_target is not None and \
                    result.paths_run > 0 and \
                    len(self.strategy) >= self.frontier_target:
                # Wide enough: hand the rest to the caller (the farm
                # dispatches it across shards), exhausted untouched.
                break
            node = self.strategy.pop()
            oracle = Oracle(list(node.choices),
                            sleep=node.sleep if self.por else (),
                            record_events=True)
            driver = self.make_driver(oracle)
            if deadline is not None:
                driver.deadline = deadline   # cooperative in-path stop
            outcome = driver.run(self.entry)
            if (self.requeue_interrupted
                    and outcome.status == "timeout"
                    and deadline is not None
                    and time.monotonic() >= deadline):
                # The deadline fired inside this path: the aborted
                # attempt is not a behaviour.  Normally the node is
                # requeued uncounted so a resumed run replays it from
                # scratch (a genuine max_steps timeout straddling the
                # deadline is re-produced deterministically by the
                # resume).  But when not even one path fit this
                # invocation's deadline, requeueing would livelock
                # every same-deadline resume on the node — instead
                # the path is *abandoned*: counted (progress), no
                # outcome recorded (a deadline-dependent "timeout" is
                # not a behaviour of the program and must never enter
                # a deadline-independent record), its subtree
                # unexplored, the exploration permanently
                # non-exhausted.
                if result.paths_run > 0:
                    result.exhausted = False
                    self.pending = self.strategy.drain_interrupted(node)
                    if ctx is not None:
                        ctx.inc("explore.requeued")
                    if tracer is not None and timeline:
                        tracer.emit_timeline("explore.paths", timeline)
                    return result
                result.paths_run += 1
                result.abandoned += 1
                result.exhausted = False
                continue
            result.paths_run += 1
            if tracer is not None:
                now = tracer.now()
                if now - last_sample >= 0.05:
                    timeline.append((now, result.paths_run))
                    last_sample = now
            if outcome.diverged:
                # The replayed prefix no longer matches the program's
                # choice arities: the path is stale, not a behaviour —
                # and its subtree is abandoned, so the exploration is
                # no longer complete.
                result.diverged += 1
                result.exhausted = False
                continue
            if outcome.status == "pruned":
                result.pruned += 1
            else:
                result.outcomes.append(outcome)
            # Deepest point first, alternatives in order: under the
            # LIFO dfs strategy the earliest flip pops next — exactly
            # the historical DFS order.
            completed = outcome.status in ("done", "exit")
            points = generate_branches(node, oracle.events, self.por,
                                       completed)
            if ctx is not None and points:
                ctx.inc("explore.choice_points", len(points))
            for point in reversed(points):
                for child in point:
                    self.strategy.push(child)
        self.pending = self.strategy.drain()
        if tracer is not None:
            now = tracer.now()
            if not timeline or timeline[-1][1] != result.paths_run:
                timeline.append((now, result.paths_run))
            tracer.emit_timeline("explore.paths", timeline)
        return result


def explore_all(make_driver: Callable[[Oracle], Driver],
                max_paths: int = 2000,
                entry: str = "main",
                deadline_s: Optional[float] = None,
                strategy="dfs",
                por: bool = False,
                seed: Optional[int] = None,
                initial: Optional[Sequence[PathNode]] = None,
                store=None,
                resume: bool = True,
                cache_key: Optional[str] = None) -> ExplorationResult:
    """Run ``make_driver`` over every oracle path (up to ``max_paths``).

    ``make_driver`` must build a *fresh* driver (and fresh memory
    model) for the given oracle — runs are independent replays.
    ``deadline_s`` is a cooperative wall-clock budget for the whole
    enumeration *and* for each path inside it.  ``strategy`` picks the
    frontier order (see :data:`~.strategies.STRATEGIES`), ``seed``
    seeds the random/coverage strategies, ``por`` enables sleep-set
    partial-order reduction, and ``initial`` restricts the search to
    the subtrees rooted at the given prefixes (farm shards).

    ``store`` (anything :func:`repro.farm.explorestore.ExploreStore`
    wraps — an ``ExploreStore``, an ``ArtifactStore``, or a directory
    path) plus a ``cache_key`` (see ``ExploreStore.key``) make the
    enumeration *incremental*: a complete record for the key is
    returned with zero paths re-run, an interrupted enumeration
    persists its frontier, and — with ``resume=True`` — a later call
    picks up exactly where it stopped."""
    if store is not None and cache_key is not None:
        if initial is not None:
            raise ValueError("store-backed exploration owns the "
                             "frontier; initial= cannot be combined "
                             "with store=/cache_key=")
        from ...farm.explorestore import ExploreStore, cached_explore
        return cached_explore(make_driver, store=ExploreStore.wrap(store),
                              key=cache_key, resume=resume,
                              max_paths=max_paths, entry=entry,
                              deadline_s=deadline_s, strategy=strategy,
                              por=por, seed=seed)
    return Explorer(make_driver, max_paths=max_paths, entry=entry,
                    deadline_s=deadline_s, strategy=strategy, por=por,
                    seed=seed, initial=initial).run()


def explore_program(program, make_model: Callable[[], object],
                    max_paths: int = 500,
                    max_steps: int = 500_000,
                    entry: str = "main",
                    deadline_s: Optional[float] = None,
                    strategy="dfs",
                    por: bool = False,
                    seed: Optional[int] = None,
                    initial: Optional[Sequence[PathNode]] = None,
                    store=None,
                    resume: bool = True,
                    cache_key: Optional[str] = None,
                    static_prune: bool = False,
                    backend: str = "compiled"
                    ) -> ExplorationResult:
    """Enumerate oracle paths of a *pre-compiled* Core program.

    ``program`` is an elaborated :class:`repro.core.ast.Program` and
    ``make_model()`` builds a fresh memory model per path — so path
    enumeration replays execution only; the front end never re-runs.
    ``store``/``resume``/``cache_key`` thread the incremental
    re-exploration seam through (see :func:`explore_all`); the Core
    program itself carries no content address, so the caller supplies
    the key (:meth:`repro.pipeline.CompiledProgram.explore` does).
    ``static_prune`` consumes :mod:`repro.statics` footprint
    annotations (computing them on first use): statically-commuting
    ``unseq`` nodes are never branched and sleep sets are seeded from
    precomputed footprint hulls where the event log has no exact
    transition.  ``backend`` selects the evaluator back end per path
    (``"compiled"`` slotted linear code, or the ``"tree"`` oracle of
    record) — the two enumerate identical choice trees, but cache
    keys include the backend so persisted frontiers never cross.
    """
    if static_prune:
        from ...statics import ensure_annotated
        ensure_annotated(program)

    def make_driver(oracle: Oracle) -> Driver:
        return Driver(program, make_model(), oracle, max_steps,
                      static_prune=static_prune, backend=backend)

    return explore_all(make_driver, max_paths=max_paths, entry=entry,
                       deadline_s=deadline_s, strategy=strategy,
                       por=por, seed=seed, initial=initial,
                       store=store, resume=resume, cache_key=cache_key)
