"""The exploration engine: stateless replay over a strategy-ordered
frontier of oracle choice prefixes.

Each popped :class:`~repro.dynamics.explore.por.PathNode` is re-run on
a fresh driver (and fresh memory model) with an
:class:`~repro.dynamics.driver.Oracle` replaying its prefix; sibling
prefixes are generated from the run's recorded choice/action event log
(:func:`~repro.dynamics.explore.por.generate_branches`).  The engine
adds, on top of the historical replay-DFS:

* pluggable :class:`~repro.dynamics.explore.strategies.SearchStrategy`
  frontier orderings (``dfs``/``bfs``/``random``/``coverage``);
* optional sleep-set partial-order reduction (``por=True``) — runs the
  sleep-aware scheduler aborts are counted as ``pruned``;
* replay-divergence discarding — a run whose replayed prefix no longer
  matches the choice-point arities is counted ``diverged`` and its
  outcome dropped instead of silently mis-replayed;
* a cooperative wall-clock deadline threaded *into* the driver step
  loop, so one long path returns ``status="timeout"`` at the deadline
  instead of blowing a farm task budget;
* mid-flight frontier handoff (``frontier_target``) — the seeding
  phase of farm-sharded exploration stops once the frontier is wide
  enough and exposes the remaining nodes via :attr:`Explorer.pending`.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from ..driver import Driver, Oracle
from .por import PathNode, generate_branches
from .result import ExplorationResult
from .strategies import make_strategy


class Explorer:
    """One exploration campaign over a single program + model."""

    def __init__(self, make_driver: Callable[[Oracle], Driver],
                 max_paths: int = 2000,
                 entry: str = "main",
                 deadline_s: Optional[float] = None,
                 strategy="dfs",
                 por: bool = False,
                 seed: Optional[int] = None,
                 initial: Optional[Sequence[PathNode]] = None,
                 frontier_target: Optional[int] = None):
        self.make_driver = make_driver
        self.max_paths = max_paths
        self.entry = entry
        self.deadline_s = deadline_s
        self.strategy = make_strategy(strategy, seed)
        self.por = por
        self.initial = list(initial) if initial is not None else None
        self.frontier_target = frontier_target
        #: Nodes left unexplored after :meth:`run` — empty unless a
        #: budget/deadline was hit or ``frontier_target`` stopped the
        #: loop for a farm handoff.
        self.pending: List[PathNode] = []

    def run(self) -> ExplorationResult:
        result = ExplorationResult()
        deadline = (time.monotonic() + self.deadline_s
                    if self.deadline_s is not None else None)
        roots = self.initial if self.initial is not None \
            else [PathNode()]
        for node in roots:
            if not isinstance(node, PathNode):
                node = PathNode(tuple(node))
            self.strategy.push(node)
        while len(self.strategy):
            if result.paths_run >= self.max_paths or \
                    (deadline is not None and
                     time.monotonic() >= deadline):
                result.exhausted = False
                break
            if self.frontier_target is not None and \
                    result.paths_run > 0 and \
                    len(self.strategy) >= self.frontier_target:
                # Wide enough: hand the rest to the caller (the farm
                # dispatches it across shards), exhausted untouched.
                break
            node = self.strategy.pop()
            oracle = Oracle(list(node.choices),
                            sleep=node.sleep if self.por else (),
                            record_events=True)
            driver = self.make_driver(oracle)
            if deadline is not None:
                driver.deadline = deadline   # cooperative in-path stop
            outcome = driver.run(self.entry)
            result.paths_run += 1
            if outcome.diverged:
                # The replayed prefix no longer matches the program's
                # choice arities: the path is stale, not a behaviour —
                # and its subtree is abandoned, so the exploration is
                # no longer complete.
                result.diverged += 1
                result.exhausted = False
                continue
            if outcome.status == "pruned":
                result.pruned += 1
            else:
                result.outcomes.append(outcome)
            # Deepest point first, alternatives in order: under the
            # LIFO dfs strategy the earliest flip pops next — exactly
            # the historical DFS order.
            completed = outcome.status in ("done", "exit")
            for point in reversed(generate_branches(node, oracle.events,
                                                    self.por,
                                                    completed)):
                for child in point:
                    self.strategy.push(child)
        self.pending = self.strategy.drain()
        return result


def explore_all(make_driver: Callable[[Oracle], Driver],
                max_paths: int = 2000,
                entry: str = "main",
                deadline_s: Optional[float] = None,
                strategy="dfs",
                por: bool = False,
                seed: Optional[int] = None,
                initial: Optional[Sequence[PathNode]] = None
                ) -> ExplorationResult:
    """Run ``make_driver`` over every oracle path (up to ``max_paths``).

    ``make_driver`` must build a *fresh* driver (and fresh memory
    model) for the given oracle — runs are independent replays.
    ``deadline_s`` is a cooperative wall-clock budget for the whole
    enumeration *and* for each path inside it.  ``strategy`` picks the
    frontier order (see :data:`~.strategies.STRATEGIES`), ``seed``
    seeds the random/coverage strategies, ``por`` enables sleep-set
    partial-order reduction, and ``initial`` restricts the search to
    the subtrees rooted at the given prefixes (farm shards)."""
    return Explorer(make_driver, max_paths=max_paths, entry=entry,
                    deadline_s=deadline_s, strategy=strategy, por=por,
                    seed=seed, initial=initial).run()


def explore_program(program, make_model: Callable[[], object],
                    max_paths: int = 500,
                    max_steps: int = 500_000,
                    entry: str = "main",
                    deadline_s: Optional[float] = None,
                    strategy="dfs",
                    por: bool = False,
                    seed: Optional[int] = None,
                    initial: Optional[Sequence[PathNode]] = None
                    ) -> ExplorationResult:
    """Enumerate oracle paths of a *pre-compiled* Core program.

    ``program`` is an elaborated :class:`repro.core.ast.Program` and
    ``make_model()`` builds a fresh memory model per path — so path
    enumeration replays execution only; the front end never re-runs.
    """

    def make_driver(oracle: Oracle) -> Driver:
        return Driver(program, make_model(), oracle, max_steps)

    return explore_all(make_driver, max_paths=max_paths, entry=entry,
                       deadline_s=deadline_s, strategy=strategy,
                       por=por, seed=seed, initial=initial)
