"""Pluggable search strategies: the order path prefixes are expanded.

A strategy is a frontier container.  The engine pushes newly generated
:class:`~repro.dynamics.explore.por.PathNode` prefixes and pops the
next one to run; the strategy decides the order and nothing else, so
the *set* of explored paths is strategy-independent (modulo budget):

* ``dfs`` — LIFO, exactly the historical stateless-replay DFS.  With
  the engine's deepest-point-first push order, the earliest flip is
  popped next, so early choices (thread spawn order, first
  interleaving) reach distinct behaviours fastest under a path budget.
  This is the default and the oracle-of-record for equivalence tests.
* ``bfs`` — shortest prefix first (a stable priority queue), a
  level-order sweep that yields balanced subtrees; the farm frontier
  seeder uses it to carve shards.
* ``random`` — seeded uniform sampling of the frontier: a reproducible
  pseudorandom walk over allowed executions.
* ``coverage`` — prioritises prefixes whose branch flips a
  ``(choice-tag, alternative)`` pair never flipped before, then falls
  back to FIFO; cheap novelty search for rare scheduling tags.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import random
from typing import Dict, List, Optional, Tuple

from .por import PathNode


class SearchStrategy:
    """Frontier policy protocol: ``push``/``pop``/``len``/``drain``."""

    name = "strategy"

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed

    def push(self, node: PathNode) -> None:
        raise NotImplementedError

    def pop(self) -> PathNode:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def drain(self) -> List[PathNode]:
        """Remove and return every pending node (frontier handoff).

        The order is *restorable* for the deterministic strategies:
        pushing the returned nodes back into a fresh instance of the
        same strategy, in sequence, reproduces the drained frontier's
        pop order — so a persisted frontier
        (:mod:`repro.farm.explorestore`) resumes where the
        interrupted exploration stopped.  Queue-shaped strategies are
        restorable as-is; LIFO ``dfs`` overrides this to return its
        stack bottom-first.  ``random`` is inherently a frontier
        *sample* — a fresh instance re-seeds its RNG, so only the
        node *set* (which fully determines a run-to-completion
        result) is preserved, not the pop order."""
        out = []
        while len(self):
            out.append(self.pop())
        return out

    def drain_interrupted(self, node: PathNode) -> List[PathNode]:
        """Drain plus the node whose run was aborted mid-path, in
        restorable order: the aborted node was the *last pop*, so on
        resume it must pop first again (modulo ``random``'s
        re-seeded sampling — see :meth:`drain`).  Queue-shaped
        strategies pop the earliest push among equals, so it goes in
        front; LIFO ``dfs`` overrides to append it (last push pops
        first)."""
        return [node] + self.drain()


class DfsStrategy(SearchStrategy):
    """Last-in, first-out: the historical replay-DFS order."""

    name = "dfs"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)
        self._stack: List[PathNode] = []

    def push(self, node: PathNode) -> None:
        self._stack.append(node)

    def pop(self) -> PathNode:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def drain(self) -> List[PathNode]:
        # Bottom-first: re-pushing in this order rebuilds the stack,
        # so the resumed pop order equals the uninterrupted one (the
        # base pop-until-empty drain would hand back a reversed
        # stack).
        out = self._stack
        self._stack = []
        return out

    def drain_interrupted(self, node: PathNode) -> List[PathNode]:
        return self.drain() + [node]    # re-pushed last -> pops first


class BfsStrategy(SearchStrategy):
    """Shortest prefix first (FIFO among equals): level-order sweep."""

    name = "bfs"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)
        self._heap: List[Tuple[int, int, PathNode]] = []
        self._seq = itertools.count()

    def push(self, node: PathNode) -> None:
        heapq.heappush(self._heap,
                       (len(node.choices), next(self._seq), node))

    def pop(self) -> PathNode:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class RandomStrategy(SearchStrategy):
    """Seeded uniform sampling of the frontier (swap-with-last pop):
    the same seed replays the identical exploration order."""

    name = "random"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)
        self._rng = random.Random(seed)
        self._items: List[PathNode] = []

    def push(self, node: PathNode) -> None:
        self._items.append(node)

    def pop(self) -> PathNode:
        i = self._rng.randrange(len(self._items))
        self._items[i], self._items[-1] = self._items[-1], self._items[i]
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


class CoverageStrategy(SearchStrategy):
    """Novelty-guided: prefer prefixes whose branch flips a
    ``(tag, alternative)`` pair that has never been flipped before;
    ties (and already-seen flips) fall back to FIFO.  Deterministic
    for any seed, so same-seed runs are identical.

    Two FIFO queues keep ``pop`` amortized O(1): nodes are queued as
    fresh or stale by their flip at push time, and a fresh-queue node
    whose flip has been seen since is lazily demoted at pop time."""

    name = "coverage"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)
        self._fresh: collections.deque = collections.deque()
        self._stale: collections.deque = collections.deque()
        self._seen: set = set()

    def push(self, node: PathNode) -> None:
        if node.flip is None or node.flip not in self._seen:
            self._fresh.append(node)
        else:
            self._stale.append(node)

    def pop(self) -> PathNode:
        while self._fresh:
            node = self._fresh.popleft()
            if node.flip is not None and node.flip in self._seen:
                self._stale.append(node)    # went stale while queued
                continue
            if node.flip is not None:
                self._seen.add(node.flip)
            return node
        node = self._stale.popleft()
        return node

    def __len__(self) -> int:
        return len(self._fresh) + len(self._stale)


STRATEGIES: Dict[str, type] = {
    "dfs": DfsStrategy,
    "bfs": BfsStrategy,
    "random": RandomStrategy,
    "coverage": CoverageStrategy,
}


def make_strategy(spec, seed: Optional[int] = None) -> SearchStrategy:
    """Resolve a strategy: a name from :data:`STRATEGIES`, a strategy
    class, or an already-built instance (passed through)."""
    if isinstance(spec, SearchStrategy):
        return spec
    if isinstance(spec, str):
        cls = STRATEGIES.get(spec)
        if cls is None:
            raise ValueError(
                f"unknown search strategy {spec!r} (choose from "
                f"{', '.join(sorted(STRATEGIES))})")
        return cls(seed)
    if isinstance(spec, type) and issubclass(spec, SearchStrategy):
        return spec(seed)
    raise TypeError(f"not a search strategy: {spec!r}")
