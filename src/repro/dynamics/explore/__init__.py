"""The state-space explorer (paper §5.1).

The paper frames execution as a sequencing monad that can "perform an
exhaustive search for all allowed executions or pseudorandomly explore
single execution paths".  This package reifies that search as a real
state-space engine over oracle choice prefixes:

:mod:`~repro.dynamics.explore.strategies`
    A :class:`SearchStrategy` frontier policy — ``dfs`` (the historical
    replay-DFS, kept as the default and the oracle-of-record), ``bfs``
    (shortest prefix first), ``random`` (seeded frontier sampling) and
    ``coverage`` (prioritise flipping never-before-flipped choice
    tags).

:mod:`~repro.dynamics.explore.por`
    Sleep-set partial-order reduction at ``unseq`` scheduling points:
    the evaluator tags each scheduling choice with its unseq frame and
    candidate children, each performed action with the frame chain
    that scheduled it, and the explorer prunes sibling orders whose
    next actions do not conflict (no overlapping
    :class:`~repro.memory.base.Footprint` with a write), provably
    preserving the set of distinct behaviours.

:mod:`~repro.dynamics.explore.engine`
    The replay loop — each popped path prefix is re-run on a fresh
    driver, sibling prefixes are generated from the recorded
    choice/action event log, and the frontier can be handed off
    mid-flight for farm sharding (:mod:`repro.farm.frontier`).

:mod:`~repro.dynamics.explore.result`
    :class:`ExplorationResult` — outcome accounting, behaviour
    deduplication (UB name *and* location), shard merging.

The resume seam
===============

Because a :class:`PathNode` prefix fully determines its replay, a
frontier is an exact, picklable cut through the exploration tree —
so exploration persists and resumes like any other artifact.
``explore_all``/``explore_program`` accept ``store=``/``resume=``/
``cache_key=`` (implemented by :mod:`repro.farm.explorestore`): a
completed exploration is served from its stored record with zero
paths re-run, and an interrupted one — path budget, wall-clock
deadline, process kill — persists its pending frontier plus the
accounting so far.  ``Explorer(requeue_interrupted=True)`` makes the
deadline cut exact: a path aborted mid-run goes back on the frontier
uncounted, so the resumed run's merged behaviour set and
``paths_run``/``pruned``/``diverged`` accounting equal an
uninterrupted serial run's (pinned by ``tests/test_explore_resume.py``
across every strategy × POR).  ``SearchStrategy.drain`` returns the
frontier in a *restorable* order — re-pushing it reproduces the
interrupted pop order.
"""

from __future__ import annotations

from .engine import Explorer, explore_all, explore_program
from .por import PathNode
from .result import ExplorationResult
from .strategies import (
    STRATEGIES, BfsStrategy, CoverageStrategy, DfsStrategy,
    RandomStrategy, SearchStrategy, make_strategy,
)

__all__ = [
    "Explorer",
    "explore_all",
    "explore_program",
    "PathNode",
    "ExplorationResult",
    "STRATEGIES",
    "SearchStrategy",
    "DfsStrategy",
    "BfsStrategy",
    "RandomStrategy",
    "CoverageStrategy",
    "make_strategy",
]
