"""The state-space explorer (paper §5.1).

The paper frames execution as a sequencing monad that can "perform an
exhaustive search for all allowed executions or pseudorandomly explore
single execution paths".  This package reifies that search as a real
state-space engine over oracle choice prefixes:

:mod:`~repro.dynamics.explore.strategies`
    A :class:`SearchStrategy` frontier policy — ``dfs`` (the historical
    replay-DFS, kept as the default and the oracle-of-record), ``bfs``
    (shortest prefix first), ``random`` (seeded frontier sampling) and
    ``coverage`` (prioritise flipping never-before-flipped choice
    tags).

:mod:`~repro.dynamics.explore.por`
    Sleep-set partial-order reduction at ``unseq`` scheduling points:
    the evaluator tags each scheduling choice with its unseq frame and
    candidate children, each performed action with the frame chain
    that scheduled it, and the explorer prunes sibling orders whose
    next actions do not conflict (no overlapping
    :class:`~repro.memory.base.Footprint` with a write), provably
    preserving the set of distinct behaviours.

:mod:`~repro.dynamics.explore.engine`
    The replay loop — each popped path prefix is re-run on a fresh
    driver, sibling prefixes are generated from the recorded
    choice/action event log, and the frontier can be handed off
    mid-flight for farm sharding (:mod:`repro.farm.frontier`).

:mod:`~repro.dynamics.explore.result`
    :class:`ExplorationResult` — outcome accounting, behaviour
    deduplication (UB name *and* location), shard merging.
"""

from __future__ import annotations

from .engine import Explorer, explore_all, explore_program
from .por import PathNode
from .result import ExplorationResult
from .strategies import (
    STRATEGIES, BfsStrategy, CoverageStrategy, DfsStrategy,
    RandomStrategy, SearchStrategy, make_strategy,
)

__all__ = [
    "Explorer",
    "explore_all",
    "explore_program",
    "PathNode",
    "ExplorationResult",
    "STRATEGIES",
    "SearchStrategy",
    "DfsStrategy",
    "BfsStrategy",
    "RandomStrategy",
    "CoverageStrategy",
    "make_strategy",
]
