"""Exploration accounting: every execution found within the budget.

The behaviour key deduplicates on *observable* behaviour — status,
exit code, stdout, and for undefined behaviour both the UB name and
its source location (the same UB name at two different program points
is two behaviours, not one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from ..driver import Outcome


@dataclass
class ExplorationResult:
    """All executions found within the budget.

    ``paths_run`` counts every driver run launched, including runs the
    sleep-set scheduler aborted as redundant re-orderings (``pruned``),
    runs whose replay prefix no longer matched the choice-point
    arities (``diverged``, discarded from ``outcomes``), and paths a
    wall-clock deadline cut mid-run that no later resume can finish
    (``abandoned``: no behaviour recorded, subtree unexplored — the
    exploration is permanently non-exhausted).
    """

    outcomes: List[Outcome] = field(default_factory=list)
    exhausted: bool = True      # False if a budget or deadline was hit
    paths_run: int = 0
    pruned: int = 0             # sleep-set-blocked redundant orders
    diverged: int = 0           # stale replays, detected and discarded
    abandoned: int = 0          # deadline-cut mid-run, unfinishable

    @staticmethod
    def behaviour_key(o: Outcome) -> Tuple:
        """The observable-behaviour identity of one outcome."""
        return (o.status, o.exit_code, o.stdout,
                o.ub.name if o.ub else None,
                str(o.loc) if o.ub else None)

    def distinct(self) -> List[Outcome]:
        """Deduplicate by observable behaviour (UB site included)."""
        seen = {}
        for o in self.outcomes:
            key = self.behaviour_key(o)
            if key not in seen:
                seen[key] = o
        return list(seen.values())

    def behaviour_keys(self) -> List[Tuple]:
        """The sorted set of behaviour keys — the canonical form used
        to assert POR soundness (pruned == unpruned, byte for byte)."""
        return sorted({self.behaviour_key(o) for o in self.outcomes},
                      key=repr)

    def has_ub(self) -> bool:
        return any(o.is_ub for o in self.outcomes)

    def ub_names(self) -> List[str]:
        return sorted({o.ub.name for o in self.outcomes if o.ub})

    def behaviours(self) -> List[str]:
        return sorted({o.summary() for o in self.outcomes})

    @classmethod
    def merge(cls, parts: Iterable["ExplorationResult"]
              ) -> "ExplorationResult":
        """Combine shard results: outcomes concatenate, counters sum,
        and the merge is exhausted only if every part was."""
        merged = cls()
        for p in parts:
            merged.outcomes.extend(p.outcomes)
            merged.paths_run += p.paths_run
            merged.pruned += p.pruned
            merged.diverged += p.diverged
            merged.abandoned += p.abandoned
            merged.exhausted = merged.exhausted and p.exhausted
        return merged
