"""Core runtime values (the ``value`` production of paper Fig. 2) and
pattern matching over them."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.ast import Pattern, PatCtor, PatSym, PatWild
from ..ctypes.types import CType, Floating, Integer, Pointer, QualType
from ..errors import InternalError
from ..memory.values import (
    FloatingValue, IntegerValue, MemValue, MVArray, MVFloating, MVInteger,
    MVPointer, MVStruct, MVUnion, MVUnspecified, PointerValue,
)


class Value:
    """Base class of Core runtime values."""


@dataclass(frozen=True)
class VUnit(Value):
    def __repr__(self) -> str:
        return "Unit"


UNIT = VUnit()


@dataclass(frozen=True)
class VBool(Value):
    b: bool

    def __repr__(self) -> str:
        return "True" if self.b else "False"


TRUE = VBool(True)
FALSE = VBool(False)


@dataclass(frozen=True)
class VCtype(Value):
    ty: CType

    def __repr__(self) -> str:
        return f"'{self.ty}'"


@dataclass(frozen=True)
class VTuple(Value):
    items: Tuple[Value, ...]

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(v) for v in self.items) + ")"


@dataclass(frozen=True)
class VList(Value):
    items: Tuple[Value, ...]


@dataclass(frozen=True)
class VInteger(Value):
    ival: IntegerValue

    def __repr__(self) -> str:
        return repr(self.ival)


@dataclass(frozen=True)
class VFloating(Value):
    fval: FloatingValue


@dataclass(frozen=True)
class VPointer(Value):
    ptr: PointerValue

    def __repr__(self) -> str:
        return repr(self.ptr)


@dataclass(frozen=True)
class VFunction(Value):
    """A C function designator value."""

    name: str

    def __repr__(self) -> str:
        return f"cfunction({self.name})"


@dataclass(frozen=True)
class VSpecified(Value):
    """Specified(object_value): a non-unspecified loaded value."""

    value: Value

    def __repr__(self) -> str:
        return f"Specified({self.value!r})"


@dataclass(frozen=True)
class VUnspecified(Value):
    """Unspecified(ctype) (§2.4: unspecified values propagate
    daemonically through the elaborated arithmetic)."""

    ty: CType

    def __repr__(self) -> str:
        return f"Unspecified({self.ty})"


@dataclass(frozen=True)
class VMemStruct(Value):
    """A loaded aggregate value, kept in memory-value form."""

    mv: MemValue


@dataclass
class VScopeList(Value):
    """The mutable list of objects created in the dynamically innermost
    ``EScope`` — VLA creates append their pointers so every scope exit
    path kills them (the list object is shared with the scope's kill
    set, not copied)."""

    items: List[Value]


# --------------------------------------------------------------------------
# memory value <-> Core value conversion
# --------------------------------------------------------------------------

def mem_to_core(mv: MemValue) -> Value:
    """Convert a loaded memory value to a Core *loaded* value."""
    if isinstance(mv, MVInteger):
        return VSpecified(VInteger(mv.ival))
    if isinstance(mv, MVUnspecified):
        return VUnspecified(mv.ty)
    if isinstance(mv, MVFloating):
        return VSpecified(VFloating(mv.fval))
    if isinstance(mv, MVPointer):
        return VSpecified(VPointer(mv.ptr))
    if isinstance(mv, (MVArray, MVStruct, MVUnion)):
        return VSpecified(VMemStruct(mv))
    raise InternalError(f"mem_to_core: {type(mv).__name__}")


def core_to_mem(ty: CType, value: Value) -> MemValue:
    """Convert a Core loaded value back to a memory value for a store of
    C type ``ty``."""
    if isinstance(value, VSpecified):
        value = value.value
    elif isinstance(value, VUnspecified):
        return MVUnspecified(value.ty)
    if isinstance(value, VInteger):
        assert isinstance(ty, Integer), f"integer store at {ty}"
        return MVInteger(ty, value.ival)
    if isinstance(value, VFloating):
        assert isinstance(ty, Floating)
        return MVFloating(ty, value.fval)
    if isinstance(value, VPointer):
        assert isinstance(ty, Pointer), f"pointer store at {ty}"
        return MVPointer(ty.to, value.ptr)
    if isinstance(value, VMemStruct):
        return value.mv
    raise InternalError(
        f"core_to_mem: cannot store {type(value).__name__} at {ty}")


# --------------------------------------------------------------------------
# pattern matching
# --------------------------------------------------------------------------

def match_pattern(pat: Pattern, value: Value) -> Optional[Dict[str, Value]]:
    """Match a Core pattern against a value; returns bindings or None."""
    if isinstance(pat, PatWild):
        return {}
    if isinstance(pat, PatSym):
        return {pat.name: value}
    assert isinstance(pat, PatCtor)
    ctor = pat.ctor
    if ctor == "Tuple":
        if not isinstance(value, VTuple) or \
                len(value.items) != len(pat.args):
            return None
        bindings: Dict[str, Value] = {}
        for sub, item in zip(pat.args, value.items):
            b = match_pattern(sub, item)
            if b is None:
                return None
            bindings.update(b)
        return bindings
    if ctor == "Specified":
        if not isinstance(value, VSpecified):
            return None
        return match_pattern(pat.args[0], value.value)
    if ctor == "Unspecified":
        if not isinstance(value, VUnspecified):
            return None
        return match_pattern(pat.args[0], VCtype(value.ty))
    if ctor == "True":
        return {} if value == TRUE else None
    if ctor == "False":
        return {} if value == FALSE else None
    if ctor == "Unit":
        return {} if isinstance(value, VUnit) else None
    if ctor == "Nil":
        return {} if isinstance(value, VList) and not value.items else None
    if ctor == "Cons":
        if not isinstance(value, VList) or not value.items:
            return None
        head = match_pattern(pat.args[0], value.items[0])
        if head is None:
            return None
        tail = match_pattern(pat.args[1], VList(value.items[1:]))
        if tail is None:
            return None
        head.update(tail)
        return head
    raise InternalError(f"match_pattern: unknown constructor {ctor}")


def truthy(value: Value) -> bool:
    """Core booleans only; anything else is an internal error."""
    if isinstance(value, VBool):
        return value.b
    raise InternalError(f"expected boolean, got {value!r}")
