"""Exhaustive exploration of all allowed executions (paper §5.1).

The driver reifies every source of semantic looseness — evaluation-order
interleavings, ``nd`` choices, provenance-sensitive comparisons, thread
schedules — as oracle choices. This module enumerates oracle choice
paths depth-first (stateless search with replay): after a run, every
choice point that was taken at its default along the new suffix spawns
sibling paths for its untried alternatives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .driver import Driver, Oracle, Outcome


@dataclass
class ExplorationResult:
    """All executions found within the budget."""

    outcomes: List[Outcome] = field(default_factory=list)
    exhausted: bool = True      # False if the path budget was hit
    paths_run: int = 0

    def distinct(self) -> List[Outcome]:
        """Deduplicate by observable behaviour."""
        seen = {}
        for o in self.outcomes:
            key = (o.status, o.exit_code, o.stdout,
                   o.ub.name if o.ub else None)
            if key not in seen:
                seen[key] = o
        return list(seen.values())

    def has_ub(self) -> bool:
        return any(o.is_ub for o in self.outcomes)

    def ub_names(self) -> List[str]:
        return sorted({o.ub.name for o in self.outcomes if o.ub})

    def behaviours(self) -> List[str]:
        return sorted({o.summary() for o in self.outcomes})


def explore_program(program, make_model: Callable[[], object],
                    max_paths: int = 500,
                    max_steps: int = 500_000,
                    entry: str = "main",
                    deadline_s: Optional[float] = None
                    ) -> ExplorationResult:
    """Enumerate every oracle path of a *pre-compiled* Core program.

    ``program`` is an elaborated :class:`repro.core.ast.Program` and
    ``make_model()`` builds a fresh memory model per path — so path
    enumeration replays execution only; the front end never re-runs.
    """

    def make_driver(oracle: Oracle) -> Driver:
        return Driver(program, make_model(), oracle, max_steps)

    return explore_all(make_driver, max_paths=max_paths, entry=entry,
                       deadline_s=deadline_s)


def explore_all(make_driver: Callable[[Oracle], Driver],
                max_paths: int = 2000,
                entry: str = "main",
                deadline_s: Optional[float] = None) -> ExplorationResult:
    """Run ``make_driver`` over every oracle path (up to ``max_paths``).

    ``make_driver`` must build a *fresh* driver (and fresh memory model)
    for the given oracle — runs are independent replays.

    ``deadline_s`` is a cooperative wall-clock budget for the whole
    enumeration (the farm's per-task timeout): when it expires, the
    paths explored so far are returned with ``exhausted=False`` —
    partial evidence instead of a killed worker.
    """
    result = ExplorationResult()
    deadline = (time.monotonic() + deadline_s
                if deadline_s is not None else None)
    stack: List[List[int]] = [[]]
    while stack:
        if result.paths_run >= max_paths or \
                (deadline is not None and
                 time.monotonic() >= deadline):
            result.exhausted = False
            break
        prefix = stack.pop()
        oracle = Oracle(list(prefix))
        driver = make_driver(oracle)
        outcome = driver.run(entry)
        result.paths_run += 1
        result.outcomes.append(outcome)
        trace = outcome.trace
        # Branch at every *new* choice point (beyond the replayed
        # prefix) that has untried alternatives. Push deepest-first so
        # the DFS pops the *earliest* flip next: early choices (thread
        # spawn order, first interleaving) reach distinct behaviours
        # fastest when the path budget is limited.
        for i in reversed(range(len(prefix), len(trace))):
            n = trace[i][1]
            chosen = trace[i][2]
            base = [t[2] for t in trace[:i]]
            for alt in range(n):
                if alt != chosen:
                    stack.append(base + [alt])
    return result
