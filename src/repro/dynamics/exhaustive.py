"""Back-compat shim: the exhaustive driver grew into the
:mod:`repro.dynamics.explore` subsystem (pluggable search strategies,
sleep-set partial-order reduction, farm-shardable frontiers).

``explore_all`` / ``explore_program`` with default arguments behave
exactly like the historical stateless-replay DFS this module used to
implement; import from :mod:`repro.dynamics.explore` for the full
engine (:class:`~repro.dynamics.explore.Explorer`, strategies, POR).
"""

from __future__ import annotations

from .explore import (
    ExplorationResult, Explorer, PathNode, explore_all, explore_program,
)

__all__ = [
    "ExplorationResult",
    "Explorer",
    "PathNode",
    "explore_all",
    "explore_program",
]
