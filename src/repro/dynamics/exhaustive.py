"""Deprecated alias of :mod:`repro.dynamics.explore`.

The exhaustive driver grew into the explore subsystem (pluggable
search strategies, sleep-set partial-order reduction, farm-shardable
frontiers); nothing in the repo imports this module any more.
``explore_all`` / ``explore_program`` with default arguments behave
exactly like the historical stateless-replay DFS this module used to
implement.

Importing names from here still works — one release's worth of
grace for external callers — but raises :class:`DeprecationWarning`;
import from :mod:`repro.dynamics.explore` instead.
"""

from __future__ import annotations

import warnings

_NAMES = (
    "ExplorationResult",
    "Explorer",
    "PathNode",
    "explore_all",
    "explore_program",
)

__all__ = list(_NAMES)


def __getattr__(name: str):
    if name in _NAMES:
        warnings.warn(
            "repro.dynamics.exhaustive is deprecated; import "
            f"{name} from repro.dynamics.explore instead",
            DeprecationWarning, stacklevel=2)
        from . import explore
        return getattr(explore, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
