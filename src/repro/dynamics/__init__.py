"""The Core operational semantics (paper §5.2, §5.6): a small-step,
oracle-driven evaluator with exhaustive and pseudorandom drivers."""

from .values import (
    Value, VUnit, VBool, VCtype, VTuple, VList, VInteger, VFloating,
    VPointer, VFunction, VSpecified, VUnspecified, VMemStruct,
)
from .driver import Driver, Outcome, run_program
from .exhaustive import explore_all, explore_program

__all__ = [
    "Value", "VUnit", "VBool", "VCtype", "VTuple", "VList", "VInteger",
    "VFloating", "VPointer", "VFunction", "VSpecified", "VUnspecified",
    "VMemStruct",
    "Driver", "Outcome", "run_program", "explore_all",
    "explore_program",
]
