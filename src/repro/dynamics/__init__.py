"""The Core operational semantics (paper §5.2, §5.6): a small-step,
oracle-driven evaluator plus a state-space explorer.

The evaluator yields every memory action, nondeterministic choice and
I/O as a request to the :class:`Driver`, which owns the memory model
and the :class:`~repro.dynamics.driver.Oracle` — a replayable choice
sequence recording a unified choice/action event log.  On top of that
seam, :mod:`repro.dynamics.explore` implements the paper's §5.1 search
modes as a real engine: pluggable frontier strategies (``dfs`` — the
oracle-of-record replay-DFS — ``bfs``, seeded ``random``, and
coverage-guided search), sleep-set partial-order reduction at
``unseq`` scheduling points, and frontiers that can be handed off
mid-flight for farm sharding (:mod:`repro.farm.frontier`)."""

from .values import (
    Value, VUnit, VBool, VCtype, VTuple, VList, VInteger, VFloating,
    VPointer, VFunction, VSpecified, VUnspecified, VMemStruct,
)
from .driver import Driver, Oracle, Outcome, PathPruned, run_program
from .explore import (
    ExplorationResult, Explorer, PathNode, STRATEGIES, explore_all,
    explore_program,
)

__all__ = [
    "Value", "VUnit", "VBool", "VCtype", "VTuple", "VList", "VInteger",
    "VFloating", "VPointer", "VFunction", "VSpecified", "VUnspecified",
    "VMemStruct",
    "Driver", "Oracle", "Outcome", "PathPruned", "run_program",
    "ExplorationResult", "Explorer", "PathNode", "STRATEGIES",
    "explore_all", "explore_program",
]
