"""The Core operational semantics (paper §5.2, §5.6): a small-step,
oracle-driven evaluator plus a state-space explorer.

The evaluator yields every memory action, nondeterministic choice and
I/O as a request to the :class:`Driver`, which owns the memory model
and the :class:`~repro.dynamics.driver.Oracle` — a replayable choice
sequence recording a unified choice/action event log.

There are **two interchangeable evaluator back ends** behind that
request protocol, selected by ``Driver(backend=...)`` and threaded
through every seam up to ``cerberus-py --backend``:

* ``"compiled"`` (the default, :mod:`repro.dynamics.compile`) lowers
  each Core procedure once into linear, closure-threaded instruction
  sequences over slot-indexed frames — pure sub-expressions become
  pre-resolved opcode closures with no per-step isinstance dispatch
  or dict lookups, and the lowered layout is cached in the
  :class:`~repro.farm.store.ArtifactStore` as a ``"lowered"`` record
  (≥3× steps/sec on straight-line code,
  ``benchmarks/perf_step_loop.json``);
* ``"tree"`` walks the Core AST directly and is the **oracle of
  record**: the back ends are pinned observably identical
  (``tests/test_compile_backend.py``, golden verdicts byte-identical
  across both), and any disagreement is a compiled-backend bug by
  definition — the tree evaluator settles the dispute.

On top of that seam, :mod:`repro.dynamics.explore` implements the
paper's §5.1 search modes as a real engine: pluggable frontier
strategies (``dfs`` — the replay-DFS of record — ``bfs``, seeded
``random``, and coverage-guided search), sleep-set partial-order
reduction at ``unseq`` scheduling points, and frontiers that can be
handed off mid-flight for farm sharding
(:mod:`repro.farm.frontier`).  Exploration records are keyed per
back end, so a persisted frontier is never resumed by the other
back end."""

from .values import (
    Value, VUnit, VBool, VCtype, VTuple, VList, VInteger, VFloating,
    VPointer, VFunction, VSpecified, VUnspecified, VMemStruct,
)
from .driver import Driver, Oracle, Outcome, PathPruned, run_program
from .explore import (
    ExplorationResult, Explorer, PathNode, STRATEGIES, explore_all,
    explore_program,
)

__all__ = [
    "Value", "VUnit", "VBool", "VCtype", "VTuple", "VList", "VInteger",
    "VFloating", "VPointer", "VFunction", "VSpecified", "VUnspecified",
    "VMemStruct",
    "Driver", "Oracle", "Outcome", "PathPruned", "run_program",
    "ExplorationResult", "Explorer", "PathNode", "STRATEGIES",
    "explore_all", "explore_program",
]
