"""Cerberus-py: an executable de facto semantics for C.

A reproduction of Memarian et al., *Into the Depths of C: Elaborating
the De Facto Standards* (PLDI 2016). The public surface:

* :func:`repro.pipeline.run_c` — compile and run a C program on a
  chosen memory object model;
* :func:`repro.pipeline.explore_c` — exhaustively enumerate all
  allowed executions (the test-oracle mode);
* :func:`repro.pipeline.compile_c` — the front half of the pipeline
  (Cabs -> Ail -> Typed Ail -> Core), memoised, returning a reusable
  :class:`repro.pipeline.CompiledProgram`;
* :func:`repro.pipeline.run_many` / :func:`repro.pipeline.explore_many`
  — execute one compiled program across many memory object models;
* :mod:`repro.memory` — the pluggable memory object models
  (concrete / provenance / strict / cheri);
* :mod:`repro.testsuite` — the 85 design-space questions and the
  executable de facto test suite;
* :mod:`repro.survey` — the paper's survey data and table generators.

* :mod:`repro.obs` — the observability layer: metrics, span tracing,
  and per-phase profiling hooks (``with repro.obs.tracing(path): ...``).

See README.md for a tour and DESIGN.md for the architecture.
"""

from . import obs
from .pipeline import (
    CompiledProgram, compile_c, explore_c, explore_many, run_c,
    run_many,
)

__version__ = "1.0.0"

__all__ = ["CompiledProgram", "compile_c", "explore_c", "explore_many",
           "obs", "run_c", "run_many", "__version__"]
