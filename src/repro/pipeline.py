"""The Cerberus-py pipeline facade (paper Fig. 1).

Translation is split from execution so the front end runs once per
program:

* :func:`compile_c` pushes C source through the whole front end —
  preprocess, parse (Cabs), desugar (Ail), typecheck (Typed Ail),
  elaborate (Core) — and returns a reusable :class:`CompiledProgram`.
  Results are memoised in a bounded content-addressed in-memory cache
  keyed on ``(source, impl, flags)``; see :func:`compile_cache_stats`
  and :func:`clear_compile_cache`.  A persistent cross-process second
  level (an artifact store from :mod:`repro.farm.store`) can be
  installed with :func:`set_artifact_store`: it is consulted after an
  in-memory miss and filled after each front-end translation, so
  repeated CLI / pytest / benchmark invocations skip the front end
  entirely.
* :meth:`CompiledProgram.run` / :meth:`CompiledProgram.explore` execute
  the compiled artifact against a chosen memory object model in
  single-path or exhaustive mode — any number of times, under any
  number of models, without re-elaborating.  ``explore(store=)``
  additionally persists exploration results in the artifact store
  (:mod:`repro.farm.explorestore`): unchanged programs are never
  re-explored, and interrupted explorations resume from their
  persisted frontier.
* :func:`run_c` / :func:`explore_c` are thin compile-then-execute
  wrappers over one model.
* :func:`run_many` / :func:`explore_many` execute one program across a
  whole list of models — the paper's §2–§5 methodology of comparing
  verdicts between memory object models — compiling once per distinct
  implementation environment (the ``cheri`` model needs the CHERI128
  environment; every other registered model shares one artifact).
"""

from __future__ import annotations

import hashlib
import random
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from . import obs
from .ail.desugar import desugar
from .ail import ast as A
from .cabs import ast as C
from .core import ast as K
from .core.typecheck import typecheck_program
from .cparser import parse_tokens
from .ctypes.implementation import Implementation, LP64, CHERI128
from .dynamics.driver import Oracle, Outcome, run_program
from .dynamics.explore import ExplorationResult, explore_program
from .elab import elaborate
from .errors import CoreTypeError
from .memory.base import MemoryModel, MemoryOptions
from .memory.cheri import CheriModel
from .memory.concrete import ConcreteModel
from .memory.provenance import GccPersonaModel, ProvenanceModel
from .memory.strict import StrictIsoModel
from .typing import typecheck

MODELS: Dict[str, type] = {
    "concrete": ConcreteModel,
    "provenance": ProvenanceModel,
    "strict": StrictIsoModel,
    "cheri": CheriModel,
    "gcc": GccPersonaModel,
}

#: The artifact-store record kind of cached static analyses.
STATICS_RECORD_KIND = "statics"

#: The artifact-store record kind of cached back-end lowerings.
LOWERED_RECORD_KIND = "lowered"


@dataclass
class LoweredRecord:
    """One persisted back-end lowering
    (:mod:`repro.dynamics.compile`): the positional frame/instruction
    layout of every lowered procedure, pure function, and global —
    enough to validate that a cached lowering still matches what
    :func:`~repro.dynamics.compile.lower_program` produces for this
    artifact (closures themselves are rebuilt per process; they are
    not serialisable)."""

    version: int
    layout: dict


@dataclass
class StaticsRecord:
    """One persisted static analysis (:mod:`repro.statics`): the
    positional per-``unseq`` annotation table (aligned with
    :func:`repro.statics.collect_unseqs` order), the lint findings,
    and whether the abstract interpretation ran to completion (an
    aborted analysis keeps its findings — each is independently
    sound — but discards annotations)."""

    version: int
    table: list
    findings: list
    complete: bool


def _as_artifact_store(store):
    """Normalise any store-ish argument (an ``ArtifactStore``, an
    ``ExploreStore`` view, or a directory path) to the backing
    :class:`~repro.farm.store.ArtifactStore`."""
    if store is None:
        return None
    if hasattr(store, "record_key"):
        return store
    inner = getattr(store, "store", None)
    if inner is not None and hasattr(inner, "record_key"):
        return inner
    from .farm.store import ArtifactStore
    return ArtifactStore(store)


@dataclass
class CompiledProgram:
    """A compiled C program: Cabs + Typed Ail + Core, ready to run under
    any memory object model, repeatedly, without re-elaboration."""

    source: str
    impl: Implementation
    cabs: C.TranslationUnit
    ail: A.Program
    core: K.Program

    def make_model(self, model: str = "provenance",
                   options: Optional[MemoryOptions] = None,
                   **model_kwargs) -> MemoryModel:
        cls = MODELS[model]
        if model == "cheri":
            return cls(self.impl, self.core.tags, options,
                       **model_kwargs)
        return cls(self.impl, self.core.tags, options)

    def run(self, model: str = "provenance",
            options: Optional[MemoryOptions] = None,
            oracle: Optional[Oracle] = None,
            max_steps: int = 2_000_000,
            seed: Optional[int] = None,
            backend: str = "compiled",
            **model_kwargs) -> Outcome:
        """Execute one path (default oracle choices, or a seeded random
        exploration when ``seed`` is given).  ``backend`` selects the
        evaluator: ``"compiled"`` (default) runs the slotted lowered
        code, ``"tree"`` walks the Core AST (the oracle of record)."""
        if oracle is None and seed is not None:
            oracle = Oracle(rng=random.Random(seed))
        mem = self.make_model(model, options, **model_kwargs)
        return run_program(self.core, mem, oracle, max_steps,
                           backend=backend)

    def lowered(self, store=None, name: str = "<string>"):
        """The compiled back end's lowering of this artifact
        (:class:`~repro.dynamics.compile.LoweredProgram`), cached on
        the Core term.

        With ``store`` (an artifact store or directory path) the
        lowering is persisted in two layers sharing one content
        address (artifact key + ``LOWERED_VERSION`` + schema):

        * the serializable frame/instruction layout as a ``"lowered"``
          store record (cross-process; a mismatched or corrupt record
          is silently replaced by a fresh lowering), and
        * the rebuilt closures themselves in the process-local
          :data:`repro.farm.store.WARM_CLOSURES` cache, so repeat
          explorations of the same artifact — even through a fresh
          ``CompiledProgram`` instance — skip re-lowering entirely.
          Adopted lowerings are safe across equivalent program
          objects: closures resolve the evaluator, model, and global
          environment at run time, and static annotations are keyed
          positionally (see ``CompiledEvaluator``).  One caveat:
          file-scope objects carry process-unique Core names, and the
          closures bake those names into their ``global_env``
          lookups — so a warm entry is adopted only when its glob
          names match this program's exactly; a recompile of the same
          source (fresh names) rejects the stale entry as a miss and
          re-lowers."""
        from .dynamics.compile import (
            LOWERED_VERSION, ensure_lowered,
        )
        from .farm.store import WARM_CLOSURES
        store = _as_artifact_store(store)
        key = None
        if store is not None:
            key = store.record_key(
                LOWERED_RECORD_KIND, self.source, repr(self.impl),
                name, str(LOWERED_VERSION))
            if getattr(self.core, "_lowered", None) is None:
                glob_names = tuple(g.name for g in self.core.globs)
                warm = WARM_CLOSURES.get(
                    key,
                    validate=lambda lp: lp.glob_names == glob_names)
                if warm is not None:
                    self.core._lowered = warm
                    return warm
            record = store.get_record(key, LoweredRecord,
                                      kind=LOWERED_RECORD_KIND)
            if record is not None \
                    and record.version == LOWERED_VERSION:
                lowered = ensure_lowered(self.core)
                if record.layout == lowered.layout():
                    WARM_CLOSURES.put(key, lowered)
                    return lowered
        ctx = obs.active()
        with obs.maybe_span(ctx, "pipeline.lower", profile=True,
                            file=name):
            lowered = ensure_lowered(self.core)
        if ctx is not None:
            for fkind, count in lowered.fused.items():
                if count:
                    ctx.inc(f"compile.fused.{fkind}", count)
        if store is not None and key is not None:
            store.put_record(
                key, LoweredRecord(LOWERED_VERSION, lowered.layout()),
                kind=LOWERED_RECORD_KIND)
            WARM_CLOSURES.put(key, lowered)
        return lowered

    def statics(self, store=None,
                name: str = "<string>") -> StaticsRecord:
        """The static analysis of this artifact (:mod:`repro.statics`):
        per-``unseq`` footprint/purity annotations — attached to the
        Core term as a side effect — plus the lint findings.

        With ``store`` (an artifact store or directory path) the
        record is cached under the ``"statics"`` kind, keyed like the
        compiled artifact itself plus ``STATICS_VERSION``, so repeated
        campaigns never re-analyse an unchanged program."""
        from .statics import (
            STATICS_VERSION, analyze_program, apply_annotations,
            serialize_unseq_info,
        )
        from .statics.lint import LintInterp
        store = _as_artifact_store(store)
        key = None
        if store is not None:
            key = store.record_key(
                STATICS_RECORD_KIND, self.source, repr(self.impl),
                name, str(STATICS_VERSION))
            record = store.get_record(key, StaticsRecord,
                                      kind=STATICS_RECORD_KIND)
            if record is not None \
                    and record.version == STATICS_VERSION \
                    and apply_annotations(self.core, record.table):
                return record
        with obs.maybe_span(obs.active(), "pipeline.statics",
                            profile=True, file=name):
            report = analyze_program(self.core, interp_cls=LintInterp)
        record = StaticsRecord(
            STATICS_VERSION,
            serialize_unseq_info(self.core, report),
            list(report.findings),
            report.complete)
        if store is not None and key is not None:
            store.put_record(key, record, kind=STATICS_RECORD_KIND)
        return record

    def lint(self, store=None, name: str = "<string>") -> list:
        """The definite-UB lint findings for this artifact
        (:class:`repro.statics.lint.Finding` list, sorted by source
        location)."""
        return self.statics(store, name).findings

    def explore(self, model: str = "provenance",
                options: Optional[MemoryOptions] = None,
                max_paths: int = 500,
                max_steps: int = 500_000,
                deadline_s: Optional[float] = None,
                strategy: str = "dfs",
                por: bool = False,
                seed: Optional[int] = None,
                store=None,
                resume: bool = True,
                name: str = "<string>",
                static_prune: bool = False,
                backend: str = "compiled",
                **model_kwargs) -> ExplorationResult:
        """Explore the allowed executions (the paper's test-oracle
        mode, §5.1).  ``deadline_s`` bounds the whole enumeration by
        wall-clock (farm per-task timeouts); ``strategy`` picks the
        frontier order (``dfs``/``bfs``/``random``/``coverage``,
        ``seed`` seeding the latter two) and ``por`` enables sleep-set
        partial-order reduction at unseq scheduling points.

        ``store`` (an :class:`~repro.farm.explorestore.ExploreStore`,
        an :class:`~repro.farm.store.ArtifactStore`, or a directory
        path) makes exploration incremental: a completed result for
        this ``(source, impl, model, entry, max_steps, strategy,
        seed, por)`` space is returned with zero paths re-run, an
        interrupted one persists its frontier, and ``resume=True``
        picks it up where it stopped.  ``name`` is folded into the
        record key (source locations embed it).  ``backend`` selects
        the per-path evaluator (``"compiled"`` default, ``"tree"``
        oracle of record); it is folded into the record key, so a
        frontier persisted by one backend is never resumed by the
        other."""
        cache_key = None
        if store is not None:
            from .farm.explorestore import ExploreStore
            store = ExploreStore.wrap(store)
            cache_key = store.key(self.source, self.impl, model,
                                  name=name, entry="main",
                                  max_steps=max_steps,
                                  strategy=strategy, seed=seed,
                                  por=por, options=options,
                                  model_kwargs=model_kwargs,
                                  static_prune=static_prune,
                                  backend=backend)
        if static_prune and store is not None:
            # Attach (store-cached) footprint annotations ahead of the
            # engine's own ensure_annotated fallback.
            self.statics(store, name=name)
        if backend == "compiled" and store is not None:
            # Pre-warm (and persist the layout of) the lowering so
            # per-path drivers find the cached artifact on the Core
            # term instead of each racing to lower it.
            self.lowered(store, name=name)
        return explore_program(
            self.core,
            lambda: self.make_model(model, options, **model_kwargs),
            max_paths=max_paths, max_steps=max_steps,
            deadline_s=deadline_s, strategy=strategy, por=por,
            seed=seed, store=store, resume=resume,
            cache_key=cache_key, static_prune=static_prune,
            backend=backend)


# Historical name for the compiled artifact.
Pipeline = CompiledProgram


# -- the content-addressed compile cache --------------------------------------

_CACHE_CAPACITY = 128
_cache_lock = threading.Lock()
_compile_cache: "OrderedDict[str, CompiledProgram]" = OrderedDict()
_cache_stats = {"hits": 0, "misses": 0, "evictions": 0,
                "translations": 0, "store_hits": 0}

# Optional second cache level: a persistent cross-process artifact
# store (duck-typed to repro.farm.store.ArtifactStore — get/put/stats).
# Consulted after an in-memory miss and before the front end runs.
_artifact_store = None


def set_artifact_store(store):
    """Install (or with ``None``, remove) the persistent artifact
    store behind :func:`compile_c`; returns the previous store so
    callers can restore it."""
    global _artifact_store
    with _cache_lock:
        previous = _artifact_store
        _artifact_store = store
    return previous


def get_artifact_store():
    """The currently installed persistent artifact store, if any."""
    return _artifact_store


def _cache_key(source: str, impl: Implementation, name: str,
               check_core: bool) -> str:
    """Content address of one front-end translation: the source text,
    the implementation environment (``repr`` of the frozen dataclass is
    a complete fingerprint), and the compile flags."""
    h = hashlib.sha256()
    for part in (source, repr(impl), name, str(check_core)):
        h.update(part.encode("utf-8", "surrogateescape"))
        h.update(b"\x00")
    return h.hexdigest()


def clear_compile_cache() -> None:
    """Drop every cached artifact and reset the hit/miss counters."""
    with _cache_lock:
        _compile_cache.clear()
        for k in _cache_stats:
            _cache_stats[k] = 0


def compile_cache_stats() -> Dict[str, int]:
    """Cache observability: hits, misses, evictions, current size."""
    with _cache_lock:
        return dict(_cache_stats, size=len(_compile_cache))


def compile_c(source: str, impl: Implementation = LP64,
              name: str = "<string>",
              check_core: bool = True,
              use_cache: bool = True) -> CompiledProgram:
    """Run the front half of the pipeline: source -> Core.

    Translations are memoised (``use_cache=False`` bypasses the cache,
    e.g. for benchmarking the raw front end); the returned artifact is
    shared, and safe to share, because execution state lives entirely
    in per-run drivers and memory models."""
    ctx = obs.active()
    key = _cache_key(source, impl, name, check_core) if use_cache \
        else None
    if key is not None:
        with _cache_lock:
            cached = _compile_cache.get(key)
            if cached is not None:
                _compile_cache.move_to_end(key)
                _cache_stats["hits"] += 1
            else:
                _cache_stats["misses"] += 1
        if ctx is not None:
            ctx.inc("pipeline.cache_hits" if cached is not None
                    else "pipeline.cache_misses")
        if cached is not None:
            store = _artifact_store
            touch = getattr(store, "touch", None)
            if touch is not None:
                # Keep the persistent entry's LRU recency in step with
                # in-memory hits, or a hot artifact is evicted from
                # disk while cold ones survive.
                touch(source, impl, name, check_core)
            return cached
        store = _artifact_store
        if store is not None:
            program = store.get(source, impl, name, check_core)
            if program is not None:
                with _cache_lock:
                    _cache_stats["store_hits"] += 1
                    _compile_cache[key] = program
                    _compile_cache.move_to_end(key)
                    while len(_compile_cache) > _CACHE_CAPACITY:
                        _compile_cache.popitem(last=False)
                        _cache_stats["evictions"] += 1
                return program
    from .ctypes.types import IntKind
    predefined = {
        # Implementation-defined limit constants used by <limits.h>
        # and <stdint.h> (Fig. 2: "definitions of implementation-
        # defined constants").
        "__cerberus_long_max":
            f"{impl.int_max(IntKind.LONG)}L",
        "__cerberus_ulong_max":
            f"{impl.int_max(IntKind.ULONG)}UL",
    }
    with _cache_lock:
        _cache_stats["translations"] += 1
    if ctx is not None:
        ctx.inc("pipeline.translations")
    from .cpp.preprocessor import preprocess
    with obs.maybe_span(ctx, "pipeline.lex", profile=True, file=name):
        tokens = preprocess(source, name, predefined=predefined)
    with obs.maybe_span(ctx, "pipeline.parse", profile=True):
        cabs = parse_tokens(tokens)
    with obs.maybe_span(ctx, "pipeline.desugar", profile=True):
        ail = desugar(cabs, impl)
    with obs.maybe_span(ctx, "pipeline.typecheck", profile=True):
        typecheck(ail, impl)
    with obs.maybe_span(ctx, "pipeline.elaborate", profile=True):
        core = elaborate(ail, impl)
    if check_core:
        with obs.maybe_span(ctx, "pipeline.check_core", profile=True):
            errors = typecheck_program(core)
        if errors:
            raise CoreTypeError("ill-formed Core produced by "
                                "elaboration:\n" + "\n".join(errors))
    program = CompiledProgram(source, impl, cabs, ail, core)
    if key is not None:
        with _cache_lock:
            _compile_cache[key] = program
            _compile_cache.move_to_end(key)
            while len(_compile_cache) > _CACHE_CAPACITY:
                _compile_cache.popitem(last=False)
                _cache_stats["evictions"] += 1
        store = _artifact_store
        if store is not None:
            store.put(source, impl, name, check_core, program)
    return program


def impl_for_model(model: str,
                   impl: Implementation = LP64) -> Implementation:
    """The implementation environment a model runs under: the cheri
    model needs capability pointers, so the default LP64 choice is
    upgraded to CHERI128 for it (an explicit non-LP64 ``impl`` wins)."""
    if model == "cheri" and impl is LP64:
        return CHERI128
    return impl


def compile_for_model(source: str, model: str,
                      impl: Implementation = LP64,
                      **kwargs) -> CompiledProgram:
    """Compile ``source`` under the environment ``model`` requires."""
    return compile_c(source, impl_for_model(model, impl), **kwargs)


def run_c(source: str, model: str = "provenance",
          impl: Implementation = LP64,
          options: Optional[MemoryOptions] = None,
          max_steps: int = 2_000_000,
          seed: Optional[int] = None,
          backend: str = "compiled",
          **model_kwargs) -> Outcome:
    """One-shot: compile (memoised) and run a C program on the chosen
    memory object model, returning the observable Outcome."""
    return compile_for_model(source, model, impl).run(
        model, options, max_steps=max_steps, seed=seed,
        backend=backend, **model_kwargs)


def explore_c(source: str, model: str = "provenance",
              impl: Implementation = LP64,
              options: Optional[MemoryOptions] = None,
              max_paths: int = 500,
              max_steps: int = 500_000,
              strategy: str = "dfs",
              por: bool = False,
              seed: Optional[int] = None,
              store=None,
              resume: bool = True,
              static_prune: bool = False,
              backend: str = "compiled",
              **model_kwargs) -> ExplorationResult:
    """One-shot: compile (memoised) and explore a C program under the
    chosen search strategy, optionally with partial-order reduction.
    ``store``/``resume`` persist and reuse exploration results and
    ``static_prune`` pre-prunes statically-commuting ``unseq`` points
    (see :meth:`CompiledProgram.explore`)."""
    return compile_for_model(source, model, impl).explore(
        model, options, max_paths=max_paths, max_steps=max_steps,
        strategy=strategy, por=por, seed=seed, store=store,
        resume=resume, static_prune=static_prune, backend=backend,
        **model_kwargs)


def _compile_per_impl(source: str, models: Iterable[str],
                      impl: Implementation, name: str,
                      use_cache: bool) -> Dict[str, CompiledProgram]:
    """One front-end translation per distinct implementation
    environment, shared by every model that runs under it."""
    compiled: Dict[str, CompiledProgram] = {}
    by_model: Dict[str, CompiledProgram] = {}
    for model in models:
        m_impl = impl_for_model(model, impl)
        if m_impl.name not in compiled:
            compiled[m_impl.name] = compile_c(source, m_impl, name=name,
                                              use_cache=use_cache)
        by_model[model] = compiled[m_impl.name]
    return by_model


def run_many(source: str, models: Optional[Iterable[str]] = None,
             impl: Implementation = LP64,
             options: Optional[MemoryOptions] = None,
             max_steps: int = 2_000_000,
             seed: Optional[int] = None,
             name: str = "<string>",
             use_cache: bool = True,
             backend: str = "compiled",
             **model_kwargs) -> Dict[str, Outcome]:
    """Run one program under many memory object models (default: all
    registered), compiling once per distinct implementation
    environment. Returns ``{model: Outcome}`` in request order, with
    verdicts identical to per-model :func:`run_c` calls."""
    programs = _compile_per_impl(source,
                                 tuple(MODELS) if models is None
                                 else tuple(models),
                                 impl, name, use_cache)
    return {model: program.run(model, options, max_steps=max_steps,
                               seed=seed, backend=backend,
                               **model_kwargs)
            for model, program in programs.items()}


def explore_many(source: str, models: Optional[Iterable[str]] = None,
                 impl: Implementation = LP64,
                 options: Optional[MemoryOptions] = None,
                 max_paths: int = 500,
                 max_steps: int = 500_000,
                 name: str = "<string>",
                 use_cache: bool = True,
                 deadline_s: Optional[float] = None,
                 strategy: str = "dfs",
                 por: bool = False,
                 seed: Optional[int] = None,
                 store=None,
                 resume: bool = True,
                 static_prune: bool = False,
                 backend: str = "compiled",
                 **model_kwargs) -> Dict[str, ExplorationResult]:
    """Explore one program under many memory object models (default:
    all registered), compiling once per distinct implementation
    environment.  ``deadline_s`` is a per-model wall-clock budget for
    the enumeration; ``strategy``/``por``/``seed`` select the search
    strategy and partial-order reduction per model; ``store``/
    ``resume`` persist and reuse per-model exploration records (see
    :meth:`CompiledProgram.explore`)."""
    if store is not None:
        from .farm.explorestore import ExploreStore
        store = ExploreStore.wrap(store)
    programs = _compile_per_impl(source,
                                 tuple(MODELS) if models is None
                                 else tuple(models),
                                 impl, name, use_cache)
    return {model: program.explore(model, options, max_paths=max_paths,
                                   max_steps=max_steps,
                                   deadline_s=deadline_s,
                                   strategy=strategy, por=por,
                                   seed=seed, store=store,
                                   resume=resume, name=name,
                                   static_prune=static_prune,
                                   backend=backend,
                                   **model_kwargs)
            for model, program in programs.items()}

def lint_c(source: str, impl: Implementation = LP64,
           name: str = "<string>", store=None,
           use_cache: bool = True) -> list:
    """One-shot: compile (memoised) and lint a C program — the
    definite-UB findings of :mod:`repro.statics.lint`, sorted by
    source location."""
    return compile_c(source, impl, name=name,
                     use_cache=use_cache).lint(store, name=name)

