"""The Cerberus-py pipeline facade (paper Fig. 1).

``run_c`` / ``explore_c`` push C source through the full pipeline —
preprocess, parse (Cabs), desugar (Ail), typecheck (Typed Ail),
elaborate (Core) — and execute it against a chosen memory object model
in single-path or exhaustive mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .ail.desugar import desugar
from .ail import ast as A
from .cabs import ast as C
from .core import ast as K
from .core.typecheck import typecheck_program
from .cparser import parse_text
from .ctypes.implementation import Implementation, LP64, CHERI128
from .ctypes.types import TagEnv
from .dynamics.driver import Driver, Oracle, Outcome, run_program
from .dynamics.exhaustive import ExplorationResult, explore_all
from .elab import elaborate
from .errors import CoreTypeError
from .memory.base import MemoryModel, MemoryOptions
from .memory.cheri import CheriModel
from .memory.concrete import ConcreteModel
from .memory.provenance import GccPersonaModel, ProvenanceModel
from .memory.strict import StrictIsoModel
from .typing import typecheck

MODELS: Dict[str, type] = {
    "concrete": ConcreteModel,
    "provenance": ProvenanceModel,
    "strict": StrictIsoModel,
    "cheri": CheriModel,
    "gcc": GccPersonaModel,
}


@dataclass
class Pipeline:
    """A compiled C program: Typed Ail + Core, ready to run under any
    memory object model."""

    source: str
    impl: Implementation
    cabs: C.TranslationUnit
    ail: A.Program
    core: K.Program

    def make_model(self, model: str = "provenance",
                   options: Optional[MemoryOptions] = None,
                   **model_kwargs) -> MemoryModel:
        cls = MODELS[model]
        if model == "cheri":
            return cls(self.impl, self.core.tags, options,
                       **model_kwargs)
        return cls(self.impl, self.core.tags, options)

    def run(self, model: str = "provenance",
            options: Optional[MemoryOptions] = None,
            oracle: Optional[Oracle] = None,
            max_steps: int = 2_000_000,
            seed: Optional[int] = None,
            **model_kwargs) -> Outcome:
        """Execute one path (default oracle choices, or a seeded random
        exploration when ``seed`` is given)."""
        if oracle is None and seed is not None:
            oracle = Oracle(rng=random.Random(seed))
        mem = self.make_model(model, options, **model_kwargs)
        return run_program(self.core, mem, oracle, max_steps)

    def explore(self, model: str = "provenance",
                options: Optional[MemoryOptions] = None,
                max_paths: int = 500,
                max_steps: int = 500_000,
                **model_kwargs) -> ExplorationResult:
        """Exhaustively explore all allowed executions (the paper's
        test-oracle mode, §5.1)."""

        def make_driver(oracle: Oracle) -> Driver:
            mem = self.make_model(model, options, **model_kwargs)
            return Driver(self.core, mem, oracle, max_steps)

        return explore_all(make_driver, max_paths=max_paths)


def compile_c(source: str, impl: Implementation = LP64,
              name: str = "<string>",
              check_core: bool = True) -> Pipeline:
    """Run the front half of the pipeline: source -> Core."""
    from .ctypes.types import IntKind
    predefined = {
        # Implementation-defined limit constants used by <limits.h>
        # and <stdint.h> (Fig. 2: "definitions of implementation-
        # defined constants").
        "__cerberus_long_max":
            f"{impl.int_max(IntKind.LONG)}L",
        "__cerberus_ulong_max":
            f"{impl.int_max(IntKind.ULONG)}UL",
    }
    cabs = parse_text(source, name, predefined=predefined)
    ail = desugar(cabs, impl)
    typecheck(ail, impl)
    core = elaborate(ail, impl)
    if check_core:
        errors = typecheck_program(core)
        if errors:
            raise CoreTypeError("ill-formed Core produced by "
                                "elaboration:\n" + "\n".join(errors))
    return Pipeline(source, impl, cabs, ail, core)


def run_c(source: str, model: str = "provenance",
          impl: Implementation = LP64,
          options: Optional[MemoryOptions] = None,
          max_steps: int = 2_000_000,
          seed: Optional[int] = None,
          **model_kwargs) -> Outcome:
    """One-shot: compile and run a C program on the chosen memory
    object model, returning the observable Outcome."""
    if model == "cheri" and impl is LP64:
        impl = CHERI128
    return compile_c(source, impl).run(model, options,
                                       max_steps=max_steps, seed=seed,
                                       **model_kwargs)


def explore_c(source: str, model: str = "provenance",
              impl: Implementation = LP64,
              options: Optional[MemoryOptions] = None,
              max_paths: int = 500,
              max_steps: int = 500_000,
              **model_kwargs) -> ExplorationResult:
    """One-shot: compile and exhaustively explore a C program."""
    if model == "cheri" and impl is LP64:
        impl = CHERI128
    return compile_c(source, impl).explore(model, options,
                                           max_paths=max_paths,
                                           max_steps=max_steps,
                                           **model_kwargs)
