"""The farm server's wire client: a small blocking JSON-over-unix-
socket speaker for the :mod:`repro.farm.server` protocol.

One :class:`FarmClient` talks to one daemon socket; every request
opens a fresh connection (the protocol allows connection reuse, but
one-shot connections keep the client trivially safe to share across
threads — the E2E dedup tests hammer one daemon from ten threads
through ten of these).  Structured server rejections surface as
:class:`ServerError` carrying the protocol error code; transport
failures (no socket, connection refused, daemon died mid-request)
surface as the underlying :class:`OSError`.

    >>> client = FarmClient("/run/cerberus.sock")
    >>> client.health()["status"]
    'serving'
    >>> report = client.submit("int main(void){ return 0; }",
    ...                        models=["concrete"])["report"]

``submit(wait=True)`` (the default) blocks until the job finishes and
returns the response with its ``report`` payload; ``wait=False``
returns the acknowledgement immediately and :meth:`wait_result`
polls ``result`` until the job leaves the queue — which also picks
up jobs accepted by a *previous* daemon incarnation (the crash-safe
queue), so a client that outlives a ``kill -9`` just keeps polling
the restarted server.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .server import PROTOCOL_VERSION


class ServerError(Exception):
    """A structured protocol rejection: ``code`` is one of the
    documented error codes (``bad-json``, ``unknown-field``,
    ``quota-exceeded``, ...), ``detail`` the human explanation,
    ``field`` the offending field when the server named one."""

    def __init__(self, code: str, detail: str = "",
                 field: Optional[str] = None):
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail
        self.field = field

    @classmethod
    def from_payload(cls, payload: dict) -> "ServerError":
        error = payload.get("error")
        if not isinstance(error, dict):
            return cls("internal", f"malformed error payload: "
                       f"{payload!r}")
        return cls(error.get("code", "internal"),
                   error.get("detail", ""), error.get("field"))


class FarmClient:
    """Blocking client for one daemon socket.

    ``timeout`` bounds each non-waiting request round-trip;
    ``wait=True`` submissions use ``wait_timeout`` (``None`` = wait
    as long as the job takes — the server's own two-level timeouts
    bound that)."""

    def __init__(self, socket_path, timeout: float = 30.0,
                 wait_timeout: Optional[float] = None,
                 client: str = "anon"):
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.wait_timeout = wait_timeout
        self.client = client

    # -- transport ------------------------------------------------------------

    def request(self, message: dict,
                timeout: Optional[float] = -1) -> dict:
        """One request/response round-trip.  Raises
        :class:`ServerError` on a structured rejection, ``OSError``
        on transport failure, and ``ConnectionError`` if the server
        closed without answering (e.g. killed mid-job)."""
        if timeout == -1:
            timeout = self.timeout
        message.setdefault("v", PROTOCOL_VERSION)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.settimeout(timeout)
            s.connect(self.socket_path)
            s.sendall(json.dumps(message).encode("utf-8") + b"\n")
            line = self._read_line(s)
        if not line:
            raise ConnectionError(
                "server closed the connection without a response")
        payload = json.loads(line)
        if not payload.get("ok"):
            raise ServerError.from_payload(payload)
        return payload

    @staticmethod
    def _read_line(s: socket.socket) -> bytes:
        chunks = []
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    # -- ops ------------------------------------------------------------------

    def submit(self, source: str, *, name: str = "<submit>",
               models="all", mode: str = "run",
               impl: str = "LP64", strategy: str = "dfs",
               por: bool = False, static_prune: bool = False,
               backend: str = "compiled",
               max_steps: int = 2_000_000, max_paths: int = 500,
               seed: Optional[int] = None, lint: bool = False,
               wait: bool = True, label: Optional[str] = None,
               client: Optional[str] = None) -> dict:
        message = {"op": "submit", "source": source, "name": name,
                   "models": models if models == "all"
                   else list(models),
                   "mode": mode, "impl": impl, "strategy": strategy,
                   "por": por, "static_prune": static_prune,
                   "backend": backend, "max_steps": max_steps,
                   "max_paths": max_paths, "seed": seed,
                   "lint": lint, "wait": wait,
                   "client": client or self.client}
        if label is not None:
            message["label"] = label
        return self.request(message, timeout=self.wait_timeout
                            if wait else -1)

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "job": job_id})

    def result(self, job_id: str) -> dict:
        return self.request({"op": "result", "job": job_id})

    def wait_result(self, job_id: str, poll_s: float = 0.1,
                    timeout: Optional[float] = None) -> dict:
        """Poll ``result`` until the job leaves the queue.  Transient
        transport failures (the daemon restarting after a kill) are
        retried until ``timeout``; a structured ``pending`` error
        just means poll again."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except ServerError as exc:
                if exc.code != "pending":
                    raise
            except (OSError, ConnectionError):
                pass   # daemon down/restarting: keep polling
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still unfinished after "
                    f"{timeout:g}s")
            time.sleep(poll_s)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def health(self) -> dict:
        return self.request({"op": "health"})

    def shutdown(self, drain: bool = True) -> dict:
        return self.request({"op": "shutdown", "drain": drain})

    def wait_healthy(self, timeout: float = 30.0,
                     poll_s: float = 0.1) -> dict:
        """Block until the daemon answers ``health`` (used right
        after booting one)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ConnectionError, ValueError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(poll_s)


def server_sweep(socket_path, programs: Sequence[Tuple[str, str]],
                 *, models="all", mode: str = "run",
                 impl: str = "LP64", strategy: str = "dfs",
                 por: bool = False, static_prune: bool = False,
                 backend: str = "compiled",
                 max_steps: int = 2_000_000, max_paths: int = 500,
                 seed: Optional[int] = None, lint: bool = False,
                 client: str = "sweep", poll_s: float = 0.05,
                 timeout: Optional[float] = None) -> List:
    """Run an ad-hoc ``(name, source)`` corpus through a live daemon:
    submit everything without waiting (the server interleaves jobs
    across its pre-warmed pool and coalesces duplicates), then
    collect each payload in corpus order as farm
    :class:`~repro.farm.pool.TaskResult` objects — the server-backed
    twin of :func:`repro.farm.pool.sweep`, consumed by
    :func:`repro.farm.campaign.sweep_campaign(server=...)
    <repro.farm.campaign.sweep_campaign>`."""
    from .pool import task_result_from_json
    fc = FarmClient(socket_path, client=client)
    jobs: List[Tuple[int, str, str]] = []
    for index, (name, source) in enumerate(programs):
        while True:
            try:
                ack = fc.submit(source, name=name, models=models,
                                mode=mode, impl=impl,
                                strategy=strategy, por=por,
                                static_prune=static_prune,
                                backend=backend,
                                max_steps=max_steps,
                                max_paths=max_paths, seed=seed,
                                lint=lint, wait=False)
                break
            except ServerError as exc:
                # A corpus larger than the per-client quota drains
                # itself: wait for in-flight jobs, then resubmit.
                if exc.code != "quota-exceeded":
                    raise
                time.sleep(poll_s)
        jobs.append((index, name, ack["job"]))
    results = []
    for index, name, job_id in jobs:
        response = fc.wait_result(job_id, poll_s=poll_s,
                                  timeout=timeout)
        result = task_result_from_json(response["report"],
                                       index=index)
        result.name = name
        results.append(result)
    return results
