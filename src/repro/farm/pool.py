"""Parallel sweep execution: a ``multiprocessing`` worker pool over
compiled-artifact tasks.

One task = one program swept across a list of memory object models
(via :func:`repro.pipeline.run_many` / ``explore_many``), or one test
suite entry, or one Csmith seed.  Tasks are deterministic value
objects, so:

* **sharding** is a pure function of the task list —
  :func:`shard_select` keeps every item whose position is congruent to
  ``shard_index`` modulo ``shard_count``, so ``N`` campaign workers
  started with ``--shard 0/N`` … ``--shard N-1/N`` partition a corpus
  exactly, with no coordination;
* **aggregation** is order-independent — results carry the task index
  and are re-sorted, so a parallel sweep reports in the same order as
  a serial one;
* **timeouts** are two-level — a cooperative wall-clock deadline
  inside the worker (exploration stops at the deadline, single runs
  are bounded by ``max_steps``), and a hard ``AsyncResult.get(timeout)``
  backstop in the parent that marks the task timed out and recycles
  the pool.

``jobs=1`` runs the same task loop serially in-process — one code
path for every caller, no fork required.  Workers are forked where
available (Linux) and each installs its own handle on the shared
:class:`~repro.farm.store.ArtifactStore`, so a warm store makes a
parallel sweep execution-only: zero front-end translations.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..ctypes.implementation import Implementation, LP64
from ..errors import CerberusError
from ..pipeline import (
    MODELS, compile_cache_stats, clear_compile_cache,
    explore_many, get_artifact_store, run_many, set_artifact_store,
)
from .store import ArtifactStore

_STAT_KEYS = ("translations", "memory_hits", "memory_misses",
              "store_hits", "store_misses", "store_puts",
              "store_corrupt",
              "explore_hits", "explore_misses", "explore_puts",
              "explore_resumes", "explore_live_paths")


@dataclass
class Verdict:
    """The observable result of one run, stripped for IPC (no trace)."""

    status: str
    exit_code: Optional[int] = None
    stdout: str = ""
    ub: Optional[str] = None
    ub_detail: str = ""
    error: str = ""
    ub_loc: str = ""

    @classmethod
    def from_outcome(cls, o) -> "Verdict":
        return cls(o.status, o.exit_code, o.stdout,
                   o.ub.name if o.ub else None, o.ub_detail, o.error,
                   str(o.loc) if o.ub and o.loc.line > 0 else "")

    def summary(self) -> str:
        if self.status == "ub":
            from ..dynamics.driver import format_ub
            return format_ub(self.ub, self.ub_loc)
        if self.status in ("done", "exit"):
            return f"exit={self.exit_code} stdout={self.stdout!r}"
        if self.status == "error":
            return f"error: {self.error}"
        return self.status


@dataclass
class ExploreSummary:
    """An :class:`~repro.dynamics.explore.ExplorationResult`
    stripped for IPC: distinct behaviours only, no traces."""

    paths_run: int
    exhausted: bool
    behaviours: List[str]
    has_ub: bool
    pruned: int = 0
    diverged: int = 0
    abandoned: int = 0


@dataclass
class SweepTask:
    """One unit of farm work.  ``kind`` selects the worker recipe:

    * ``"run"`` — run ``source`` once per model (:func:`run_many`);
    * ``"explore"`` — explore per model (``strategy``/``por`` select
      the search strategy and partial-order reduction;
      ``explore_store`` — a record-store directory — publishes and
      reuses per-model exploration records, ``resume`` continuing
      interrupted ones from their persisted frontier);
    * ``"explore_shard"`` — explore only the subtree rooted at the
      oracle choice ``prefix`` (with its POR ``sleep`` set) under
      ``models[0]`` — one shard of a farm-split frontier, returning a
      slimmed :class:`~repro.dynamics.explore.ExplorationResult` in
      ``data["shard"]`` (plus the unexplored remainder of the subtree
      in ``data["pending"]``) for
      :func:`~repro.farm.frontier.explore_farm` to merge;
    * ``"suite"`` — the named de facto test-suite entry across models;
    * ``"csmith"`` — generate the seeded program, run it across
      models, classify against the generator's expected output.
    """

    index: int
    name: str
    kind: str = "run"
    source: str = ""
    models: Tuple[str, ...] = ()
    impl: Implementation = LP64
    max_steps: int = 2_000_000
    max_paths: int = 500
    seed: Optional[int] = None          # "run": oracle seed
    csmith_seed: int = 0                # "csmith": generator seed
    csmith_size: int = 12
    deadline_s: Optional[float] = None  # cooperative in-task deadline
    strategy: str = "dfs"               # explore*: search strategy
    por: bool = False                   # explore*: partial-order red.
    prefix: Tuple[int, ...] = ()        # explore_shard: subtree root
    sleep: Tuple = ()                   # explore_shard: POR sleep set
    entry: str = "main"                 # explore_shard: entry proc
    explore_store: Optional[str] = None  # explore: record store dir
    resume: bool = True                 # explore: resume partials
    # explore_shard: requeue deadline-aborted paths uncounted (set
    # when the parent persists frontiers; off, the serial behaviour —
    # the timeout outcome is counted — is preserved).
    requeue_interrupted: bool = False
    # explore*: consume repro.statics footprint annotations (never
    # branch statically-commuting unseq points, seed sleep sets from
    # precomputed footprint hulls).
    static_prune: bool = False
    # run/explore/explore_shard/csmith: the per-path evaluator back
    # end ("compiled" slotted linear code, or the "tree" oracle of
    # record) — part of exploration record keys, so persisted
    # frontiers never cross back ends.
    backend: str = "compiled"
    # run/explore/suite: attach static lint findings to the result
    # ("lint" data key); campaign layers use definite findings as a
    # pre-exploration filter.
    lint: bool = False
    # Collect a repro.obs metrics snapshot around the task and ship it
    # back in data["metrics"] — the farm's worker-to-parent metrics
    # channel (campaigns set it; plain run_tasks callers opt in).
    collect_metrics: bool = False
    # time.monotonic() at submission, stamped by run_tasks; the worker
    # reports the queue wait (start - submitted) in the result.
    submitted_m: Optional[float] = None


@dataclass
class TaskResult:
    index: int
    name: str
    kind: str
    ok: bool = True
    error: str = ""
    timed_out: bool = False
    wall_s: float = 0.0
    # seconds the task sat between submission and a worker picking it
    # up (0.0 when the submission time was not stamped)
    queue_wait_s: float = 0.0
    # deltas of the compile/store counters attributable to this task
    stats: Dict[str, int] = field(default_factory=dict)
    # kind-specific payload: "verdicts" ({model: Verdict}),
    # "explorations" ({model: ExploreSummary}), "results"
    # (List[TestResult]), "category" (csmith classification)
    data: Dict[str, object] = field(default_factory=dict)


def task_result_to_json(result: TaskResult) -> dict:
    """The wire form of one :class:`TaskResult` — what the farm
    server ships to clients (and persists as ``"jobresult"``
    records).  ``verdicts`` / ``explorations`` dataclasses flatten to
    dicts; ``lint`` / ``metrics`` / ``lint_filtered`` are already
    JSON-able; anything else in ``data`` (e.g. suite ``TestResult``
    lists) is dropped — server jobs only ever carry run/explore
    payloads."""
    from dataclasses import asdict
    data: Dict[str, object] = {}
    if "verdicts" in result.data:
        data["verdicts"] = {m: asdict(v) for m, v
                            in result.data["verdicts"].items()}
    if "explorations" in result.data:
        data["explorations"] = {m: asdict(e) for m, e
                                in result.data["explorations"].items()}
    for key in ("lint", "lint_filtered", "metrics"):
        if key in result.data:
            data[key] = result.data[key]
    return {"index": result.index, "name": result.name,
            "kind": result.kind, "ok": result.ok,
            "error": result.error, "timed_out": result.timed_out,
            "wall_s": result.wall_s,
            "queue_wait_s": result.queue_wait_s,
            "stats": dict(result.stats), **data}


def task_result_from_json(payload: dict,
                          index: Optional[int] = None) -> TaskResult:
    """Rebuild a :class:`TaskResult` from its wire form, so
    server-backed campaigns flow through the exact same
    :class:`~repro.farm.campaign.CampaignReport` aggregation as local
    pool sweeps."""
    result = TaskResult(
        index=payload.get("index", 0) if index is None else index,
        name=payload.get("name", ""),
        kind=payload.get("kind", "run"),
        ok=payload.get("ok", False),
        error=_error_text(payload),
        timed_out=payload.get("timed_out", False),
        wall_s=payload.get("wall_s", 0.0),
        queue_wait_s=payload.get("queue_wait_s", 0.0),
        stats=dict(payload.get("stats", {})))
    if "verdicts" in payload:
        result.data["verdicts"] = {
            m: Verdict(**v) for m, v in payload["verdicts"].items()}
    if "explorations" in payload:
        result.data["explorations"] = {
            m: ExploreSummary(**e)
            for m, e in payload["explorations"].items()}
    for key in ("lint", "lint_filtered", "metrics"):
        if key in payload:
            result.data[key] = payload[key]
    return result


def _error_text(payload: dict) -> str:
    """A payload's error as a flat string: worker errors arrive as
    plain text, server-side rejections as structured
    ``{"code", "detail"}`` objects."""
    error = payload.get("error", "")
    if isinstance(error, dict):
        code = error.get("code", "error")
        detail = error.get("detail", "")
        return f"{code}: {detail}" if detail else code
    return error or ""


def shard_select(items: Sequence, shard_index: int,
                 shard_count: int) -> list:
    """The deterministic ``shard_index``-th of ``shard_count``
    partitions: item ``i`` belongs to shard ``i % shard_count``."""
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard_index {shard_index} not in "
                         f"[0, {shard_count})")
    return [item for i, item in enumerate(items)
            if i % shard_count == shard_index]


# -- counter snapshots ---------------------------------------------------------

def _snapshot() -> Dict[str, int]:
    cs = compile_cache_stats()
    snap = {"translations": cs["translations"],
            "memory_hits": cs["hits"],
            "memory_misses": cs["misses"],
            "store_hits": 0, "store_misses": 0, "store_puts": 0}
    store = get_artifact_store()
    if store is not None:
        ss = store.stats()
        snap["store_hits"] = ss["hits"]
        snap["store_misses"] = ss["misses"]
        snap["store_puts"] = ss["stores"]
        snap["store_corrupt"] = ss["corrupt"]
    return snap


def _delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    # Exploration-record counters are per-task-handle (filled in by
    # execute_task), not process-global, so snapshots omit them.
    return {k: after.get(k, 0) - before.get(k, 0) for k in _STAT_KEYS}


def merge_stats(results: Iterable[TaskResult]) -> Dict[str, int]:
    """Sum the per-task counter deltas of a whole sweep."""
    total = {k: 0 for k in _STAT_KEYS}
    for r in results:
        for k in _STAT_KEYS:
            total[k] += r.stats.get(k, 0)
    return total


# -- the worker ---------------------------------------------------------------

def execute_task(task: SweepTask) -> TaskResult:
    """Run one task in the current process (workers and the serial
    path both come through here).  With ``task.collect_metrics`` the
    task runs inside an isolated :func:`repro.obs.collecting` scope
    and ships the snapshot back in ``data["metrics"]`` — the parent
    (campaign / trace) merges it, so a parallel sweep's metric totals
    equal a serial one's."""
    if not task.collect_metrics:
        return _execute_task(task)
    with obs.collecting() as registry:
        result = _execute_task(task)
        ctx = obs.active()
        ctx.inc("farm.tasks")
        if not result.ok:
            ctx.inc("farm.task_failures")
        ctx.observe("farm.task_s", result.wall_s)
        if result.queue_wait_s:
            ctx.observe("farm.queue_wait_s", result.queue_wait_s)
    result.data["metrics"] = registry.to_dict()
    return result


def _execute_task(task: SweepTask) -> TaskResult:
    before = _snapshot()
    start = time.perf_counter()
    result = TaskResult(task.index, task.name, task.kind)
    if task.submitted_m is not None:
        result.queue_wait_s = max(0.0,
                                  time.monotonic() - task.submitted_m)
    explore_store = None
    if task.explore_store is not None:
        # A fresh per-task handle on the shared record store: its
        # counters are this task's deltas by construction.
        from .explorestore import ExploreStore
        explore_store = ExploreStore(task.explore_store)
    try:
        if task.kind == "run":
            outcomes = run_many(task.source, models=task.models,
                                impl=task.impl,
                                max_steps=task.max_steps,
                                seed=task.seed, name=task.name,
                                backend=task.backend)
            result.data["verdicts"] = {
                m: Verdict.from_outcome(o) for m, o in outcomes.items()}
        elif task.kind == "explore":
            findings = []
            if task.lint:
                findings = _lint_findings(task, explore_store)
                result.data["lint"] = findings
            if any(f["severity"] == "definite" for f in findings):
                # Pre-exploration filter: a definite static finding
                # already names a guaranteed behaviour — skip the
                # (possibly expensive) path enumeration entirely.
                result.data["lint_filtered"] = True
                result.data["explorations"] = {}
            else:
                explorations = explore_many(
                    task.source, models=task.models,
                    impl=task.impl,
                    max_paths=task.max_paths,
                    max_steps=task.max_steps,
                    name=task.name,
                    deadline_s=task.deadline_s,
                    strategy=task.strategy,
                    por=task.por, seed=task.seed,
                    store=explore_store,
                    resume=task.resume,
                    static_prune=task.static_prune,
                    backend=task.backend)
                result.data["explorations"] = {
                    m: ExploreSummary(r.paths_run, r.exhausted,
                                      r.behaviours(), r.has_ub(),
                                      r.pruned, r.diverged,
                                      r.abandoned)
                    for m, r in explorations.items()}
        elif task.kind == "explore_shard":
            shard, shard_pending = _explore_shard(task)
            result.data["shard"] = shard
            result.data["pending"] = shard_pending
        elif task.kind == "suite":
            from ..testsuite.programs import TESTS
            from ..testsuite.runner import run_test_many
            results = run_test_many(TESTS[task.name], list(task.models),
                                    max_steps=task.max_steps)
            result.data["results"] = results
            if task.lint:
                lint_task = SweepTask(task.index, task.name,
                                      source=TESTS[task.name].source,
                                      impl=task.impl)
                result.data["lint"] = _lint_findings(lint_task,
                                                     explore_store)
        elif task.kind == "csmith":
            from ..csmith.generator import generate_program
            from ..csmith.reference import classify_outcomes
            program = generate_program(task.csmith_seed,
                                       task.csmith_size)
            try:
                outcomes = run_many(program.source, models=task.models,
                                    impl=task.impl,
                                    max_steps=task.max_steps,
                                    name=task.name,
                                    backend=task.backend)
            except CerberusError as exc:
                result.data["category"] = "failed"
                result.data["verdicts"] = {}
                result.error = f"{type(exc).__name__}: {exc}"
            else:
                result.data["category"] = classify_outcomes(program,
                                                            outcomes)
                result.data["verdicts"] = {
                    m: Verdict.from_outcome(o)
                    for m, o in outcomes.items()}
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")
    except CerberusError as exc:
        result.ok = False
        result.error = f"{type(exc).__name__}: {exc}"
    result.wall_s = time.perf_counter() - start
    result.stats = _delta(before, _snapshot())
    if explore_store is not None:
        es = explore_store.stats()
        result.stats["explore_hits"] = es["hits"]
        result.stats["explore_misses"] = es["misses"]
        result.stats["explore_puts"] = es["stores"]
        result.stats["explore_resumes"] = es["resumes"]
        result.stats["explore_live_paths"] = es["live_paths"]
    return result


def _lint_findings(task: SweepTask, explore_store=None):
    """The slim lint payload of one task: finding dicts, IPC-safe."""
    from ..pipeline import compile_c
    try:
        program = compile_c(task.source, task.impl, name=task.name)
        findings = program.lint(explore_store, name=task.name)
    except CerberusError:
        return []
    return [f.to_dict() for f in findings]


def _explore_shard(task: SweepTask):
    """Worker recipe for one frontier shard: compile (store-warm),
    explore the subtree rooted at the task's prefix, and slim the
    result for IPC (distinct outcomes only, traces stripped).

    Returns ``(result, pending)``: the nodes a budget or deadline left
    unexplored travel back as plain ``(choices, sleep)`` tuples so
    :func:`~repro.farm.frontier.explore_farm` can persist a resumable
    frontier.  With ``task.requeue_interrupted`` (set when the parent
    has a record store) a path the deadline aborted mid-run is
    requeued uncounted — resumed accounting must equal an
    uninterrupted run's; without it the historical behaviour (the
    timeout outcome is counted) keeps sharded results identical to a
    serial run's."""
    from dataclasses import replace
    from ..dynamics.driver import Driver
    from ..dynamics.explore import (
        ExplorationResult, Explorer, PathNode,
    )
    from ..pipeline import compile_for_model
    model = task.models[0]
    program = compile_for_model(task.source, model, task.impl,
                                name=task.name)
    node = PathNode(tuple(task.prefix), tuple(task.sleep))

    if task.static_prune:
        # Shards must resolve choice points exactly like the seeding
        # phase or replayed prefixes would diverge: same annotations.
        program.statics(task.explore_store, name=task.name)

    def make_driver(oracle):
        return Driver(program.core, program.make_model(model), oracle,
                      task.max_steps, static_prune=task.static_prune,
                      backend=task.backend)

    explorer = Explorer(
        make_driver, max_paths=task.max_paths, entry=task.entry,
        deadline_s=task.deadline_s, strategy=task.strategy,
        por=task.por, seed=task.seed, initial=[node],
        requeue_interrupted=task.requeue_interrupted)
    r = explorer.run()
    slim = [replace(o, trace=[]) for o in r.distinct()]
    result = ExplorationResult(outcomes=slim, exhausted=r.exhausted,
                               paths_run=r.paths_run, pruned=r.pruned,
                               diverged=r.diverged,
                               abandoned=r.abandoned)
    pending = [(tuple(n.choices), tuple(n.sleep))
               for n in explorer.pending]
    return result, pending


def explore_store_path(explore_store) -> Optional[str]:
    """Normalise an exploration-record store argument to the
    picklable directory path tasks carry: accepts ``None``, a path,
    an :class:`ArtifactStore`, or an
    :class:`~repro.farm.explorestore.ExploreStore`.  Explicit type
    checks, not ``getattr`` duck-typing: ``pathlib.Path`` has a
    ``.root`` attribute of its own (the filesystem root!)."""
    if explore_store is None:
        return None
    from .explorestore import ExploreStore
    if isinstance(explore_store, ExploreStore):
        explore_store = explore_store.store
    if isinstance(explore_store, ArtifactStore):
        return str(explore_store.root)
    return str(explore_store)


def _resolve_store(store):
    """Normalise the ``store`` argument: ``None`` falls back to the
    globally installed store (so ``set_artifact_store`` + a farm run
    compose), a path builds an :class:`ArtifactStore`, an existing
    store passes through."""
    if store is None:
        return get_artifact_store()
    if hasattr(store, "get"):
        return store
    return ArtifactStore(store)


def _store_spec(store) -> Optional[Tuple[str, int, int]]:
    """A picklable description of the store for worker initialisers."""
    if store is None:
        return None
    return (str(store.root), store.max_bytes, store.schema_version)


def _init_worker(store_spec: Optional[Tuple[str, int, int]]) -> None:
    """Per-worker setup: a clean in-memory cache (fork inherits the
    parent's — clearing keeps per-task counter deltas honest) and this
    worker's own handle on the shared on-disk store.  Any inherited
    observability context is dropped too: a forked child must never
    double-write the parent's trace file."""
    obs.reset()
    clear_compile_cache()
    if store_spec is None:
        set_artifact_store(None)
    else:
        root, max_bytes, schema_version = store_spec
        set_artifact_store(ArtifactStore(root, max_bytes,
                                         schema_version))


def _timeout_result(task: SweepTask, timeout: float) -> TaskResult:
    return TaskResult(task.index, task.name, task.kind, ok=False,
                      timed_out=True,
                      error=f"task exceeded {timeout:g}s wall-clock")


def run_tasks(tasks: Sequence[SweepTask], jobs: int = 1,
              store=None,
              task_timeout: Optional[float] = None) -> List[TaskResult]:
    """Execute tasks and return results in task order.

    ``jobs=1`` runs serially in this process (installing ``store``
    for the duration); ``jobs>1`` forks a worker pool, each worker
    opening its own handle on the shared store.  ``store=None`` falls
    back to the globally installed artifact store, so
    ``set_artifact_store`` + farm runs compose.

    ``task_timeout`` bounds each task's wall-clock.  In worker mode
    it is a hard limit: a task that exceeds it is reported
    ``timed_out``, the wedged pool is terminated, and a fresh pool
    resumes the remaining tasks (already-finished results are kept).
    In serial mode the limit is cooperative only — exploration stops
    at the deadline; a single non-terminating run is bounded by
    ``max_steps``, not wall-clock."""
    tasks = list(tasks)
    submitted = time.monotonic()
    for t in tasks:
        if task_timeout is not None and t.deadline_s is None:
            t.deadline_s = task_timeout
        if t.submitted_m is None:
            t.submitted_m = submitted
    store = _resolve_store(store)
    if jobs <= 1 or len(tasks) <= 1:
        previous = set_artifact_store(store)
        try:
            return [execute_task(t) for t in tasks]
        finally:
            set_artifact_store(previous)
    results = _run_tasks_pooled(tasks, jobs, _store_spec(store),
                                task_timeout)
    results.sort(key=lambda r: r.index)
    return results


def _run_tasks_pooled(tasks: List[SweepTask], jobs: int, spec,
                      task_timeout: Optional[float]
                      ) -> List[TaskResult]:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])

    def fresh_pool():
        return ctx.Pool(jobs, initializer=_init_worker,
                        initargs=(spec,))

    results: List[TaskResult] = []
    remaining = list(tasks)
    pool = fresh_pool()
    try:
        while remaining:
            pending = [(t, pool.apply_async(execute_task, (t,)))
                       for t in remaining]
            remaining = []
            restart = False
            for task, async_result in pending:
                if restart:
                    # A wedged worker poisoned this pool; collect
                    # whatever already finished and resubmit the rest
                    # on a fresh pool instead of charging them the
                    # dead pool's queueing delay.
                    if async_result.ready():
                        try:
                            results.append(async_result.get())
                        except Exception as exc:
                            results.append(_failure_result(task, exc))
                    else:
                        remaining.append(task)
                    continue
                try:
                    if task_timeout is None:
                        results.append(async_result.get())
                    else:
                        results.append(async_result.get(task_timeout))
                except multiprocessing.TimeoutError:
                    results.append(_timeout_result(task, task_timeout))
                    restart = True
                except Exception as exc:  # worker died / unpicklable
                    results.append(_failure_result(task, exc))
            if restart:
                pool.terminate()   # reclaim wedged workers
                pool.join()
                pool = fresh_pool() if remaining else None
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    return results


def _failure_result(task: SweepTask, exc: Exception) -> TaskResult:
    return TaskResult(task.index, task.name, task.kind, ok=False,
                      error=f"worker failure: {type(exc).__name__}: "
                            f"{exc}")


def sweep(programs: Iterable, models: Optional[Iterable[str]] = None,
          jobs: int = 1,
          impl: Implementation = LP64,
          mode: str = "run",
          store=None,
          shard_index: int = 0, shard_count: int = 1,
          max_steps: int = 2_000_000, max_paths: int = 500,
          seed: Optional[int] = None,
          strategy: str = "dfs", por: bool = False,
          explore_store=None, resume: bool = True,
          static_prune: bool = False, lint: bool = False,
          backend: str = "compiled",
          task_timeout: Optional[float] = None,
          collect_metrics: bool = True) -> List[TaskResult]:
    """Sweep a corpus of C programs across memory object models.

    ``programs`` is an iterable of ``(name, source)`` pairs (bare
    source strings get positional names).  Returns one
    :class:`TaskResult` per (sharded) program, in corpus order.
    ``explore_store`` (a directory path) persists ``mode="explore"``
    results as exploration records workers publish and reuse.
    ``static_prune`` turns on static pre-pruning of ``unseq`` choice
    points for ``mode="explore"``; ``lint`` attaches the static
    findings to each task result."""
    model_list = tuple(MODELS) if models is None else tuple(models)
    named = []
    for i, entry in enumerate(programs):
        if isinstance(entry, str):
            named.append((f"program-{i}", entry))
        else:
            name, source = entry
            named.append((str(name), source))
    named = shard_select(named, shard_index, shard_count)
    explore_store = explore_store_path(explore_store)
    tasks = [SweepTask(index=i, name=name, kind=mode, source=source,
                       models=model_list, impl=impl,
                       max_steps=max_steps, max_paths=max_paths,
                       seed=seed, strategy=strategy, por=por,
                       explore_store=explore_store, resume=resume,
                       static_prune=static_prune, lint=lint,
                       backend=backend,
                       collect_metrics=collect_metrics)
             for i, (name, source) in enumerate(named)]
    return run_tasks(tasks, jobs=jobs, store=store,
                     task_timeout=task_timeout)
