"""Campaign drivers: whole-corpus sweeps with JSON reports.

A *campaign* is a corpus × models sweep executed through the farm
pool and summarised in a :class:`CampaignReport`: per-program
verdicts, aggregated cache counters (front-end translations, in-memory
and artifact-store hit rates), and wall-clock.  Two stock campaigns
re-back the repo's batch consumers:

* :func:`suite_campaign` — the §2-§5 de facto test suite
  (behind :func:`repro.testsuite.runner.run_suite_many`);
* :func:`csmith_campaign` — the §6 Csmith differential validation
  (behind :func:`repro.csmith.reference.validate_programs`);

and :func:`sweep_campaign` runs ad-hoc corpora (the ``cerberus-py
farm sweep`` subcommand).  Sharded workers (``shard=(i, n)``) report
on disjoint slices of the corpus; their JSON reports can be
concatenated because program entries carry corpus-global names.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.metrics import merge_metric_dicts
from ..pipeline import MODELS
from .pool import (
    SweepTask, TaskResult, merge_stats, run_tasks, shard_select, sweep,
)


def _hit_rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    return round(hits / total, 4) if total else None


@dataclass
class CampaignReport:
    """The JSON-able record of one farm campaign.

    ``metrics`` is the unified observability block: per-worker
    :mod:`repro.obs` snapshots merged into one (``workers``), plus
    derived ``compile`` / ``explore`` / ``farm`` summaries.
    Exploration-record counters live only in ``metrics["explore"]``
    (the transitional ``cache`` scalar aliases — ``explore_hit_rate``,
    ``explore_live_paths``, ... — are gone); ``cache`` keeps the
    front-end compile/store counters."""

    kind: str
    models: List[str]
    jobs: int
    shard: Tuple[int, int]
    programs: int
    wall_s: float
    cache: Dict[str, object] = field(default_factory=dict)
    summary: Dict[str, int] = field(default_factory=dict)
    results: List[dict] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def build(cls, kind: str, models: Sequence[str], jobs: int,
              shard: Tuple[int, int], task_results: List[TaskResult],
              wall_s: float, summary: Dict[str, int],
              results: List[dict]) -> "CampaignReport":
        stats = dict(merge_stats(task_results))
        # Exploration-record counters report through the unified
        # metrics block only; cache keeps the compile/store counters.
        explore = {k: stats.pop(k) for k in tuple(stats)
                   if k.startswith("explore_")}
        cache = stats
        cache["memory_hit_rate"] = _hit_rate(cache["memory_hits"],
                                             cache["memory_misses"])
        cache["store_hit_rate"] = _hit_rate(cache["store_hits"],
                                            cache["store_misses"])
        metrics = cls._build_metrics(cache, explore, task_results,
                                     wall_s)
        return cls(kind, list(models), jobs, tuple(shard),
                   len(task_results), round(wall_s, 4), cache,
                   summary, results, metrics)

    @staticmethod
    def _build_metrics(cache: Dict[str, object],
                       explore: Dict[str, int],
                       task_results: List[TaskResult],
                       wall_s: float) -> Dict[str, object]:
        """The unified ``metrics`` block: every worker's obs snapshot
        merged (exact under merging — see
        :class:`repro.obs.MetricsRegistry`), plus derived summaries.
        When an observability context is active (``--trace`` around
        the campaign), the merged worker metrics and farm counters are
        folded into it too, so the trace's final metrics record covers
        work done in forked workers."""
        workers = merge_metric_dicts(
            r.data.get("metrics") for r in task_results)
        timeouts = sum(1 for r in task_results if r.timed_out)
        failures = sum(1 for r in task_results
                       if not r.ok and not r.timed_out)
        queue_wait = sum(r.queue_wait_s for r in task_results)
        task_walls = [r.wall_s for r in task_results]
        farm = {
            "tasks": len(task_results),
            "timeouts": timeouts,
            "failures": failures,
            "queue_wait_s": round(queue_wait, 4),
            "task_max_s": round(max(task_walls), 4) if task_walls
            else 0.0,
            "task_mean_s": round(sum(task_walls) / len(task_walls), 4)
            if task_walls else 0.0,
            "wall_s": round(wall_s, 4),
        }
        metrics = {
            "compile": {
                "translations": cache["translations"],
                "memory_hit_rate": cache["memory_hit_rate"],
                "store_hit_rate": cache["store_hit_rate"],
                "store_corrupt": cache.get("store_corrupt", 0),
            },
            # Exploration-record reuse (mode="explore" with an explore
            # store): warm campaigns show hit rate 1.0 and zero live
            # paths.
            "explore": {
                "hits": explore.get("explore_hits", 0),
                "misses": explore.get("explore_misses", 0),
                "puts": explore.get("explore_puts", 0),
                "hit_rate": _hit_rate(
                    explore.get("explore_hits", 0),
                    explore.get("explore_misses", 0)),
                "live_paths": explore.get("explore_live_paths", 0),
                "resumes": explore.get("explore_resumes", 0),
            },
            "farm": farm,
            "workers": workers,
        }
        ctx = obs.active()
        if ctx is not None:
            ctx.merge(workers)
            ctx.inc("farm.timeouts", timeouts)
            if failures:
                ctx.inc("farm.failures", failures)
        return metrics

    def to_json(self) -> dict:
        return {
            "campaign": self.kind,
            "models": self.models,
            "jobs": self.jobs,
            "shard": list(self.shard),
            "programs": self.programs,
            "wall_s": self.wall_s,
            "cache": self.cache,
            "metrics": self.metrics,
            "summary": self.summary,
            "results": self.results,
        }

    def write(self, path) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=2)
            f.write("\n")


def _base_entry(r: TaskResult) -> dict:
    entry = {"program": r.name, "wall_s": round(r.wall_s, 4)}
    if r.queue_wait_s:
        entry["queue_wait_s"] = round(r.queue_wait_s, 4)
    if r.timed_out:
        entry["timed_out"] = True
    if r.error:
        entry["error"] = r.error
    return entry


# -- the de facto test suite ---------------------------------------------------

def suite_campaign(models: Sequence[str],
                   names: Optional[Sequence[str]] = None,
                   jobs: int = 1,
                   store=None,
                   shard: Tuple[int, int] = (0, 1),
                   max_steps: int = 400_000,
                   task_timeout: Optional[float] = None,
                   lint: bool = False):
    """Sweep the de facto test suite across ``models``.

    Returns ``(SuiteReport, CampaignReport)`` — the first identical in
    shape to a serial :func:`~repro.testsuite.runner.run_suite_many`,
    the second the farm's JSON campaign record.  ``lint`` attaches the
    static findings (:mod:`repro.statics.lint`) to each program's
    report entry — attach-only here: suite verdicts stay the dynamic
    ground truth the static findings are gated against."""
    from ..testsuite.programs import TESTS
    from ..testsuite.runner import SuiteReport, TestResult

    all_names = list(names) if names is not None else sorted(TESTS)
    sharded = shard_select(all_names, *shard)
    tasks = [SweepTask(index=i, name=name, kind="suite",
                       models=tuple(models), max_steps=max_steps,
                       lint=lint, collect_metrics=True)
             for i, name in enumerate(sharded)]
    start = time.perf_counter()
    task_results = run_tasks(tasks, jobs=jobs, store=store,
                             task_timeout=task_timeout)
    wall = time.perf_counter() - start

    suite = SuiteReport()
    entries: List[dict] = []
    for r in task_results:
        entry = _base_entry(r)
        if r.timed_out or (not r.ok and "results" not in r.data):
            # The whole task died: surface one error row per model so
            # the suite report stays per-test × per-model shaped.
            test = TESTS.get(r.name)
            for model in models:
                expected = test.expect.get(model) if test else None
                verdict = "error:FarmTimeout" if r.timed_out \
                    else f"error:{r.error}"
                suite.results.append(TestResult(
                    r.name, model, verdict, expected,
                    None if expected is None else False))
            entry["verdicts"] = {}
            entries.append(entry)
            continue
        results = r.data["results"]
        suite.results.extend(results)
        entry["verdicts"] = {t.model: t.verdict for t in results}
        entry["matches"] = {t.model: t.matches for t in results}
        if "lint" in r.data:
            entry["lint"] = r.data["lint"]
        entries.append(entry)

    summary = {
        "passed": len(suite.passed()),
        "failed": len(suite.failed()),
        "flagged": len(suite.flagged()),
        "rows": len(suite.results),
    }
    campaign = CampaignReport.build("suite", models, jobs, shard,
                                    task_results, wall, summary,
                                    entries)
    return suite, campaign


# -- csmith differential validation -------------------------------------------

def csmith_campaign(seeds: Optional[Sequence[int]] = None,
                    count: Optional[int] = None,
                    size: int = 12,
                    models: Optional[Sequence[str]] = None,
                    jobs: int = 1,
                    store=None,
                    shard: Tuple[int, int] = (0, 1),
                    max_steps: int = 300_000,
                    seed_base: int = 1000,
                    task_timeout: Optional[float] = None):
    """Differentially validate a reproducible Csmith corpus.

    The corpus is an explicit ``seeds`` list (or ``range(seed_base,
    seed_base + count)``) — sharded campaign workers therefore
    partition exactly the same corpus deterministically.  Returns
    ``(ValidationReport, CampaignReport)``."""
    from ..csmith.reference import ValidationReport, resolve_seeds

    seeds = resolve_seeds(count, seeds, seed_base)
    model_list = list(models) if models else ["concrete"]
    sharded = shard_select(list(seeds), *shard)
    tasks = [SweepTask(index=i, name=f"csmith-{seed}", kind="csmith",
                       models=tuple(model_list), max_steps=max_steps,
                       csmith_seed=seed, csmith_size=size,
                       collect_metrics=True)
             for i, seed in enumerate(sharded)]
    start = time.perf_counter()
    task_results = run_tasks(tasks, jobs=jobs, store=store,
                             task_timeout=task_timeout)
    wall = time.perf_counter() - start

    report = ValidationReport()
    entries: List[dict] = []
    for seed, r in zip(sharded, task_results):
        report.total += 1
        entry = _base_entry(r)
        entry["seed"] = seed
        category = r.data.get("category")
        if r.timed_out:
            category = "timeout"
        elif category is None:
            category = "failed"
        entry["category"] = category
        if category == "agree":
            report.agree += 1
        elif category == "timeout":
            report.timeout += 1
        elif category == "failed":
            report.failed += 1
            report.failures.append(seed)
        else:
            report.disagree += 1
            report.disagreements.append(seed)
        entry["verdicts"] = {m: v.summary() for m, v in
                             r.data.get("verdicts", {}).items()}
        entries.append(entry)

    summary = {"agree": report.agree, "disagree": report.disagree,
               "timeout": report.timeout, "failed": report.failed}
    campaign = CampaignReport.build("csmith", model_list, jobs, shard,
                                    task_results, wall, summary,
                                    entries)
    return report, campaign


# -- ad-hoc corpora ------------------------------------------------------------

def sweep_campaign(programs: Iterable[Tuple[str, str]],
                   models: Optional[Sequence[str]] = None,
                   jobs: int = 1,
                   mode: str = "run",
                   store=None,
                   shard: Tuple[int, int] = (0, 1),
                   max_steps: int = 2_000_000,
                   max_paths: int = 500,
                   strategy: str = "dfs",
                   por: bool = False,
                   seed: Optional[int] = None,
                   explore_store=None,
                   resume: bool = True,
                   static_prune: bool = False,
                   lint: bool = False,
                   backend: str = "compiled",
                   task_timeout: Optional[float] = None,
                   server=None):
    """Sweep an ad-hoc ``(name, source)`` corpus; returns
    ``(task_results, CampaignReport)``.  ``strategy``/``por``/``seed``
    select the search strategy, partial-order reduction, and the
    random/coverage strategy seed for ``mode="explore"`` tasks (the
    seed makes random-strategy campaigns reproducible).
    ``explore_store`` (a directory, :class:`~repro.farm.store.
    ArtifactStore`, or :class:`~repro.farm.explorestore.ExploreStore`)
    persists per-program × per-model exploration records: shards
    publish what they explore, warm re-sweeps re-run zero paths (the
    report's ``metrics["explore"]`` block shows it), and ``resume``
    continues interrupted explorations from their persisted frontier.
    ``backend`` selects the per-path evaluator for every task
    (``"compiled"`` default, ``"tree"`` the Core-walking oracle of
    record).  ``static_prune`` turns on static
    pre-pruning of ``unseq`` choice points (:mod:`repro.statics`) for
    explore tasks; ``lint`` runs the definite-UB linter per program
    and, in explore mode, acts as a *pre-exploration filter*: a
    program with a definite finding reports the finding instead of
    being path-enumerated (its report entry carries
    ``lint_filtered``).

    ``server`` (a unix socket path) routes the sweep through a running
    farm daemon (``cerberus-py serve``) instead of a local pool: jobs
    coalesce with identical in-flight submissions from other clients,
    results come from the daemon's crash-safe queue, and ``jobs`` /
    ``store`` / ``explore_store`` / ``resume`` are the *daemon's*
    choices, not this call's (the local values are ignored)."""
    model_list = list(models) if models is not None else list(MODELS)
    start = time.perf_counter()
    if server is not None:
        from .client import server_sweep
        sharded = shard_select(list(programs), *shard)
        task_results = server_sweep(
            server, sharded, models=model_list, mode=mode,
            max_steps=max_steps, max_paths=max_paths, seed=seed,
            strategy=strategy, por=por, static_prune=static_prune,
            lint=lint, backend=backend, timeout=task_timeout)
    else:
        task_results = sweep(programs, models=model_list, jobs=jobs,
                             mode=mode, store=store,
                             shard_index=shard[0],
                             shard_count=shard[1],
                             max_steps=max_steps, max_paths=max_paths,
                             seed=seed, strategy=strategy, por=por,
                             explore_store=explore_store,
                             resume=resume,
                             static_prune=static_prune, lint=lint,
                             backend=backend,
                             task_timeout=task_timeout)
    wall = time.perf_counter() - start

    entries: List[dict] = []
    statuses = {"ub": 0, "ok": 0, "other": 0, "lint_filtered": 0}
    for r in task_results:
        entry = _base_entry(r)
        if "lint" in r.data:
            entry["lint"] = r.data["lint"]
        if r.data.get("lint_filtered"):
            # Exploration skipped: the definite findings are the
            # verdict (each names a guaranteed UB behaviour).
            entry["lint_filtered"] = True
            statuses["lint_filtered"] += 1
            statuses["ub"] += 1
        if "verdicts" in r.data:
            entry["verdicts"] = {m: v.summary() for m, v in
                                 r.data["verdicts"].items()}
            for v in r.data["verdicts"].values():
                if v.status == "ub":
                    statuses["ub"] += 1
                elif v.status in ("done", "exit"):
                    statuses["ok"] += 1
                else:
                    statuses["other"] += 1
        if "explorations" in r.data:
            entry["explorations"] = {
                m: {"paths": e.paths_run, "exhausted": e.exhausted,
                    "behaviours": e.behaviours, "pruned": e.pruned}
                for m, e in r.data["explorations"].items()}
            for e in r.data["explorations"].values():
                if e.has_ub:
                    statuses["ub"] += 1
                else:
                    statuses["ok"] += 1
        entries.append(entry)
    campaign = CampaignReport.build(f"sweep:{mode}", model_list, jobs,
                                    shard, task_results, wall,
                                    statuses, entries)
    return task_results, campaign
