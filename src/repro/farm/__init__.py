"""``repro.farm`` — persistent artifact store + parallel sweep execution.

The paper's method is inherently batch-shaped: one C program is swept
across many memory object models (§2-§5), and whole corpora — the §5
de facto test suite, the §6 Csmith differential validation — are swept
across all of them. PR 1 split translation from execution
(:mod:`repro.pipeline`'s ``compile_c`` -> :class:`CompiledProgram`);
this subsystem turns that in-process seam into a cross-process,
parallel execution farm.

Layers
======

:mod:`repro.farm.store` — :class:`~repro.farm.store.ArtifactStore`
    A persistent, on-disk, content-addressed store of compiled
    artifacts (pickled :class:`~repro.pipeline.CompiledProgram`
    objects) keyed on ``(source, impl, flags, schema_version)``.
    Writes are atomic (temp file + ``os.replace``), corrupt or
    truncated entries fall back to silent recompilation, and the store
    is bounded by total size with LRU eviction (reads refresh an
    entry's recency).  Installed into the pipeline with
    :func:`repro.pipeline.set_artifact_store`, it is consulted after
    the in-memory compile cache and lets repeated CLI / pytest /
    benchmark invocations skip the front end entirely.

:mod:`repro.farm.pool` — :func:`~repro.farm.pool.sweep` and friends
    A ``multiprocessing`` worker pool (fork-based where available)
    with deterministic sharding (``shard_index``/``shard_count``),
    per-task timeouts (cooperative wall-clock deadlines inside the
    worker, a hard ``get(timeout)`` backstop in the parent), and
    deterministic result aggregation.  ``sweep(programs, models,
    jobs=N)`` runs a corpus of C programs across a list of memory
    object models on top of ``run_many`` / ``explore_many``;
    ``jobs=1`` degrades to a serial in-process loop, so every caller
    has one code path.

:mod:`repro.farm.explorestore` — incremental re-exploration
    :class:`~repro.farm.explorestore.ExplorationRecord` persists
    completed exploration results *and* interrupted frontiers
    (picklable :class:`~repro.dynamics.explore.PathNode` prefixes +
    sleep sets) as kind-prefixed records in the same
    :class:`~repro.farm.store.ArtifactStore`, keyed on the exploration
    space — source, implementation, model, entry, step budget,
    strategy, seed, POR, schema version.  A warm hit returns the
    recorded result with **zero** paths re-run; a resumed interrupted
    campaign merges to exactly what an uninterrupted serial run would
    have produced.  Seams: ``CompiledProgram.explore(store=)``,
    ``explore_many(store=)``, ``explore_farm(explore_store=)``,
    ``sweep_campaign(explore_store=, resume=)``, CLI
    ``--explore-store`` / ``farm sweep --resume``.

:mod:`repro.farm.frontier` — farm-sharded state-space exploration
    :func:`~repro.farm.frontier.explore_farm` splits one program's
    exploration frontier (oracle choice prefixes from a breadth-first
    seeding phase) into subtree shards dispatched across the worker
    pool, and merges the shard results into a single
    :class:`~repro.dynamics.explore.ExplorationResult` with correct
    ``exhausted``/``paths_run`` accounting.  Strategy and sleep-set
    partial-order reduction settings travel with each shard (prefixes
    and sleep sets are plain picklable tuples).  CLI:
    ``cerberus-py file.c --exhaustive --explore-jobs N``.

:mod:`repro.farm.server` / :mod:`repro.farm.client` — the daemon
    Semantics-as-a-service: :class:`~repro.farm.server.FarmServer` is
    a persistent asyncio daemon owning one store + a pre-warmed worker
    pool behind a JSON protocol on a unix socket (submit / status /
    result / stats / health / shutdown).  Identical in-flight
    submissions coalesce into one computation (semantic content
    addressing à la ``run_id_for``), the job queue persists as store
    records so a ``kill -9`` server resumes every accepted job, and
    finished payloads are served from ``"jobresult"`` records across
    restarts.  :class:`~repro.farm.client.FarmClient` speaks the
    protocol; :func:`~repro.farm.client.server_sweep` /
    ``sweep_campaign(server=...)`` run whole corpora through a live
    daemon.  CLI: ``cerberus-py serve`` / ``cerberus-py submit`` /
    ``cerberus-py farm sweep --server SOCKET``.

:mod:`repro.farm.campaign` — campaign drivers and JSON reports
    Drivers that re-back the repo's batch consumers:
    :func:`~repro.farm.campaign.suite_campaign` behind
    :func:`repro.testsuite.runner.run_suite_many`,
    :func:`~repro.farm.campaign.csmith_campaign` behind
    :func:`repro.csmith.reference.validate_programs`, and the
    ``cerberus-py farm`` CLI subcommand.  Each campaign produces a
    :class:`~repro.farm.campaign.CampaignReport` — per-program
    verdicts, aggregated cache counters (front-end translations,
    in-memory and store hit rates), and wall-clock — serialisable to
    JSON for CI perf records.

Quick start
===========

>>> from repro.farm import ArtifactStore, sweep, suite_campaign
>>> results = sweep([("p", "int main(void){ return 0; }")],
...                 models=["concrete", "provenance"], jobs=2)
>>> report, campaign = suite_campaign(["concrete"], jobs=4,
...                                   store="/tmp/cerberus-store")

CLI::

    cerberus-py file.c --models all --store DIR
    cerberus-py farm suite  --models all --jobs 4 --store DIR --report r.json
    cerberus-py farm csmith --seeds 1,2,3 --jobs 4 --shard 0/2
    cerberus-py farm sweep a.c b.c --models concrete,cheri --jobs 2
    cerberus-py serve --socket /run/cerb.sock --store DIR --workers 4
    cerberus-py submit file.c --socket /run/cerb.sock --models all
"""

from __future__ import annotations

from .store import STORE_SCHEMA_VERSION, ArtifactStore
from .explorestore import ExplorationRecord, ExploreStore
from .pool import (
    SweepTask, TaskResult, Verdict, shard_select, sweep,
    task_result_from_json, task_result_to_json,
)
from .campaign import (
    CampaignReport, csmith_campaign, suite_campaign, sweep_campaign,
)
from .frontier import explore_farm

__all__ = [
    "ArtifactStore",
    "STORE_SCHEMA_VERSION",
    "ExplorationRecord",
    "ExploreStore",
    "SweepTask",
    "TaskResult",
    "Verdict",
    "shard_select",
    "sweep",
    "task_result_from_json",
    "task_result_to_json",
    "CampaignReport",
    "suite_campaign",
    "csmith_campaign",
    "sweep_campaign",
    "explore_farm",
]
