"""Incremental re-exploration: persisted exploration results.

The paper's method re-runs the same de facto test programs under many
memory-object models and compares the resulting behaviour sets — and
until now every campaign re-explored every program from scratch even
when nothing changed.  This module makes exploration itself a cached,
resumable artifact, the way PR 1/2 did for translation:

* a **completed** :class:`~repro.dynamics.explore.ExplorationResult`
  (distinct behaviour set, ``paths_run``/``pruned``/``diverged``
  accounting) is persisted as an :class:`ExplorationRecord` in the
  content-addressed :class:`~repro.farm.store.ArtifactStore`, keyed on
  everything that determines the exploration — source text,
  implementation environment, memory model, entry procedure, step
  budget, search strategy, seed, partial-order reduction, and the
  store schema version.  A warm hit returns the recorded result with
  **zero** paths re-run;
* an **interrupted** exploration (wall-clock deadline, path budget,
  task kill) persists its live frontier — the picklable
  :class:`~repro.dynamics.explore.PathNode` prefixes (+ sleep sets)
  the engine had not yet expanded — together with the accounting so
  far.  A later run under the same key *resumes* from that frontier:
  the merged result's behaviour set and accounting equal an
  uninterrupted serial run's, because exploration is a tree of
  independent subtrees and the frontier is an exact cut through it.

Keying deliberately excludes the wall-clock deadline and the path
budget: they bound *how much* of the state space one invocation walks,
not *which* state space it walks, so a campaign interrupted under one
budget can be finished under another.

Entry points: :meth:`repro.pipeline.CompiledProgram.explore(store=)`,
``explore_many(store=)``, :func:`repro.farm.frontier.explore_farm`
(``explore_store=``), ``sweep_campaign(explore_store=)``, and the CLI
(``cerberus-py --explore-store DIR``, ``farm sweep --resume``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..dynamics.explore import ExplorationResult, Explorer, PathNode
from .store import ArtifactStore

#: The record kind folded into every exploration content address.
RECORD_KIND = "exploration"


@dataclass
class ExplorationRecord:
    """One persisted exploration: either a finished result, or the
    accounting-so-far of an interrupted one plus the frontier needed
    to finish it.

    ``outcomes`` are slimmed for storage exactly like farm-shard IPC:
    deduplicated by observable behaviour (UB name *and* site) with
    traces stripped — ``paths_run`` keeps the full count.  For a
    partial record (``complete=False``, non-empty ``frontier``) the
    stored ``exhausted`` flag is merge-neutral: ``True`` when the
    only unexplored work is the frontier itself (exhaustion of the
    merged exploration is then decided by the resumed remainder — a
    partial returned *without* resuming is flagged not-exhausted by
    the caller), but ``False`` when a diverged replay or a
    deadline-abandoned path lost a subtree, because that loss is
    permanent: no frontier node can re-mine it, so an uninterrupted
    run would report not-exhausted too.

    ``budget`` records the ``max_paths`` of the producing request:
    farm-sharded runs can overshoot their budget by up to one path
    per shard (ceiling split), so "is this record reusable under the
    caller's budget" must compare against what the identical call
    would have produced, not against ``paths_run`` alone (see
    :func:`plan_cached`)."""

    complete: bool
    exhausted: bool
    paths_run: int
    pruned: int
    diverged: int
    outcomes: List
    frontier: Tuple[PathNode, ...] = ()
    abandoned: int = 0
    budget: Optional[int] = None

    @classmethod
    def from_result(cls, result: ExplorationResult,
                    frontier: Sequence[PathNode] = (),
                    budget: Optional[int] = None
                    ) -> "ExplorationRecord":
        frontier = tuple(frontier)
        slim = [replace(o, trace=[]) for o in result.distinct()]
        return cls(complete=not frontier,
                   exhausted=result.exhausted if not frontier
                   else result.diverged == 0 and result.abandoned == 0,
                   paths_run=result.paths_run,
                   pruned=result.pruned,
                   diverged=result.diverged,
                   outcomes=slim,
                   frontier=frontier,
                   abandoned=result.abandoned,
                   budget=budget)

    def to_result(self) -> ExplorationResult:
        return ExplorationResult(outcomes=list(self.outcomes),
                                 exhausted=self.exhausted,
                                 paths_run=self.paths_run,
                                 pruned=self.pruned,
                                 diverged=self.diverged,
                                 abandoned=self.abandoned)


class ExploreStore:
    """Exploration records in (a view of) an :class:`ArtifactStore`.

    Wraps an existing store, a store directory path, or another
    ``ExploreStore`` (passed through), so every caller seam accepts
    whatever the user already has.  Records share the backing store's
    durability contract — atomic writes, corruption -> silent
    re-explore, size-bounded LRU eviction (exploration bytes count),
    and ``schema_version`` invalidation."""

    def __init__(self, store):
        self.store = store if hasattr(store, "get_record") \
            else ArtifactStore(store)
        # Per-handle counters beyond the backing store's record_*:
        # how often a partial frontier was resumed, and how many paths
        # were actually run live (warm hits add zero).
        self._counters: Dict[str, int] = {"resumes": 0,
                                          "live_paths": 0}

    @classmethod
    def wrap(cls, store) -> "ExploreStore":
        return store if isinstance(store, cls) else cls(store)

    # -- content addressing ---------------------------------------------------

    def key(self, source: str, impl, model: str,
            name: str = "<string>",
            entry: str = "main",
            max_steps: int = 500_000,
            strategy="dfs",
            seed: Optional[int] = None,
            por: bool = False,
            options=None,
            model_kwargs: Optional[Dict] = None,
            static_prune: bool = False,
            backend: str = "compiled") -> str:
        """The content address of one exploration *space*: everything
        that determines which paths exist and what they do — the
        memory-model ``options`` and extra model constructor kwargs
        included (both are dataclass/plain values with deterministic
        reprs), or explorations under different semantic knobs would
        alias to one record.  ``static_prune`` is part of the key
        because it changes which choice points exist (statically
        commuting ``unseq`` nodes are not branched), hence the
        accounting and frontier shape, even though the behaviour set
        is invariant.  ``backend`` is part of the key for the same
        reason: the two evaluator back ends are behaviourally
        interchangeable, but a frontier persisted by one is never
        resumed by the other — each backend re-keys to its own
        record.  Budgets (``max_paths``, ``deadline_s``) are
        deliberately excluded — they decide how much of the space one
        invocation walks, and live in the record as accounting
        instead."""
        strategy_name = strategy if isinstance(strategy, str) \
            else getattr(strategy, "name", strategy.__class__.__name__)
        return self.store.record_key(
            RECORD_KIND, source, repr(impl), model, name, entry,
            str(max_steps), str(strategy_name), str(seed), str(por),
            repr(options),
            repr(sorted((model_kwargs or {}).items())),
            str(static_prune), str(backend))

    # -- record round-trip ----------------------------------------------------

    def get(self, key: str) -> Optional[ExplorationRecord]:
        # A foreign object under our key is a (counted) miss and is
        # dropped like any corrupt entry — the backing store does the
        # type check so its hit/miss counters stay truthful.
        return self.store.get_record(key, ExplorationRecord,
                                     kind=RECORD_KIND)

    def put(self, key: str, record: ExplorationRecord) -> None:
        self.store.put_record(key, record, kind=RECORD_KIND)

    # -- observability --------------------------------------------------------

    def note_resume(self) -> None:
        self._counters["resumes"] += 1
        ctx = obs.active()
        if ctx is not None:
            ctx.inc("explore.resumes")

    def note_live(self, paths: int) -> None:
        self._counters["live_paths"] += paths
        ctx = obs.active()
        if ctx is not None:
            ctx.inc("explore.live_paths", paths)

    def stats(self) -> Dict[str, int]:
        """Hits/misses/stores of exploration records in the backing
        store, plus this handle's resume and live-path counters.
        Reads the per-``"exploration"``-kind counters, not the flat
        record totals — the backing store also holds ``"statics"``
        and ``"lowered"`` records whose traffic must not be billed to
        exploration."""
        ss = self.store.stats()
        per = ss.get("by_kind", {}).get(RECORD_KIND, {})
        return {"hits": per.get("hits", 0),
                "misses": per.get("misses", 0),
                "stores": per.get("stores", 0),
                "corrupt": per.get("corrupt", 0),
                **self._counters}


def plan_cached(store: ExploreStore, key: str,
                max_paths: int
                ) -> Tuple[Optional[ExplorationRecord], bool]:
    """The record-cache pre-flight shared by the serial
    (:func:`cached_explore`) and farm
    (:func:`repro.farm.frontier.explore_farm`) seams — one copy of
    the reuse rule, so the two can never drift:

    returns ``(record, publish)``.  ``record`` is the stored record
    when it is reusable under the caller's ``max_paths`` — its
    ``paths_run`` fits the budget, or it overshot only because its
    own producing ``budget`` (<= the caller's) was ceiling-split
    across farm shards, i.e. the identical call would have produced
    it — and ``None`` otherwise.  ``publish`` says whether a live
    run's result may overwrite the store entry: ``False`` exactly
    when an unusable *fuller* record exists, which a smaller
    re-exploration must not clobber."""
    rec = store.get(key)
    if rec is not None and rec.paths_run > max_paths and \
            (rec.budget is None or rec.budget > max_paths):
        return None, False
    return rec, True


def cached_explore(make_driver, *, store: ExploreStore, key: str,
                   resume: bool = True,
                   max_paths: int = 500,
                   entry: str = "main",
                   deadline_s: Optional[float] = None,
                   strategy="dfs",
                   por: bool = False,
                   seed: Optional[int] = None) -> ExplorationResult:
    """The incremental exploration loop behind every ``store=`` seam.

    * complete record within the budget -> returned as-is, **zero**
      paths re-run;
    * record covering *more* paths than ``max_paths`` -> ignored (a
      warm hit would return behaviours a cold bounded run cannot
      see), the request is explored live, and the fuller record is
      left intact — not clobbered by the smaller result;
    * partial record + ``resume`` -> the engine restarts from the
      persisted frontier with the budget that remains, and the merged
      result (behaviour set *and* accounting) equals an uninterrupted
      run's;
    * partial record, budget exactly spent -> the accounting-so-far
      is returned, flagged not-exhausted, exactly like the equivalent
      cold budget-truncated run;
    * no / unusable record -> a cold exploration, persisted afterwards
      (complete, or partial with its frontier if interrupted).
    """
    rec, publish = plan_cached(store, key, max_paths)
    if rec is not None and rec.complete:
        return rec.to_result()
    base = None
    initial = None
    budget = max_paths
    if rec is not None and resume:
        base = rec.to_result()
        initial = list(rec.frontier)
        budget = max_paths - base.paths_run
        if budget <= 0:
            base.exhausted = False
            return base
        store.note_resume()
    explorer = Explorer(make_driver, max_paths=budget, entry=entry,
                        deadline_s=deadline_s, strategy=strategy,
                        por=por, seed=seed, initial=initial,
                        requeue_interrupted=True)
    fresh = explorer.run()
    store.note_live(fresh.paths_run)
    result = fresh if base is None \
        else ExplorationResult.merge([base, fresh])
    if publish:
        store.put(key, ExplorationRecord.from_result(
            result, explorer.pending, budget=max_paths))
    return result
