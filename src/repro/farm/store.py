"""Persistent, content-addressed store of compiled artifacts.

The in-memory compile cache (:mod:`repro.pipeline`) dies with the
process; every fresh CLI invocation, pytest worker, or benchmark round
re-pays the whole front end.  :class:`ArtifactStore` persists pickled
:class:`~repro.pipeline.CompiledProgram` artifacts on disk, keyed on
the same content address as the in-memory cache — the source text, the
implementation environment, the compile flags — plus a
``schema_version`` so that incompatible artifact layouts can never be
deserialised into a newer interpreter.

Beyond compiled artifacts, the store holds arbitrary *records* under
kind-prefixed content addresses (:meth:`ArtifactStore.record_key` /
``get_record`` / ``put_record``): :mod:`repro.farm.explorestore`
persists completed and partial exploration results this way, sharing
the same durability, eviction, and schema-versioning machinery.

Durability properties:

* **Atomic writes** — artifacts are written to a temp file in the
  object directory and published with ``os.replace``; readers see the
  old entry or the new one, never a torn write.
* **Corruption fallback** — a truncated, garbled, or foreign file
  deserialises into a miss (and is unlinked best-effort): callers
  recompile or re-explore, they never crash on a bad store.  Each
  such fallback is *visible*: a :class:`StoreCorruptionWarning` is
  issued, the per-kind ``corrupt`` counters in :meth:`stats` tick,
  and an obs counter (``store.<kind>.corrupt``) records it in traces
  and campaign reports.
* **Bounded size, LRU eviction** — the store never holds more than
  ``max_bytes`` of artifacts; reads refresh an entry's mtime, and the
  least-recently-used entries are evicted first (the newest entry is
  always kept, even if it alone exceeds the bound).
* **Concurrency** — many processes may share one store directory:
  writes are atomic, reads tolerate concurrent eviction, and eviction
  tolerates concurrent unlinks.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, Optional

from .. import obs

# Bump when CompiledProgram / the AST layout changes incompatibly: the
# version is folded into the content address, so old entries simply
# stop matching (and age out via LRU eviction).
#
# 2: bit-field members (Member.bit_width), variable length arrays
#    (VarArray ctype, EVlaCreate Core node, loadbf/storebf actions) —
#    artifacts pickled under version 1 predate these layouts.
# 3: exploration records (repro.farm.explorestore.ExplorationRecord)
#    join compiled artifacts in the store, and every content address
#    is now kind-prefixed; version-2 compiled artifacts and any
#    pre-record exploration state are invalidated together.
# 4: static-analysis records ("statics" kind: per-unseq footprint
#    annotation tables + lint findings, repro.pipeline.StaticsRecord)
#    join the store, and exploration keys gain a static_prune part.
# 5: back-end lowering records ("lowered" kind: frame/instruction
#    layout tables, repro.pipeline.LoweredRecord) join the store, and
#    exploration keys gain a backend part — version-4 exploration
#    records predate the compiled back end and are invalidated.
STORE_SCHEMA_VERSION = 5

_MAGIC = "cerberus-farm-artifact"

_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class StoreCorruptionWarning(UserWarning):
    """A store entry failed to deserialise (truncated, garbled, wrong
    schema, or a foreign object under the key).  The entry was dropped
    and the caller fell back to recompiling / re-exploring — correct
    but slow, so the fallback is surfaced rather than silent."""


class WarmCache:
    """A process-local keyed cache of rebuilt per-artifact objects —
    the in-memory layer of the two-level persistence scheme for
    compiled-back-end lowerings.

    The artifact store persists only the serializable *layout* of a
    lowering (``"lowered"`` records); the closures themselves are
    process-local and were, before this cache, rebuilt once per
    :class:`~repro.pipeline.CompiledProgram` instance.  The warm cache
    keeps the rebuilt :class:`~repro.dynamics.compile.LoweredProgram`
    keyed by the *same* content address as its store record — source,
    implementation, name, ``LOWERED_VERSION``, and (via
    :meth:`ArtifactStore.record_key`) ``STORE_SCHEMA_VERSION`` — so
    repeat explorations of the same artifact in one process skip
    re-lowering entirely, and a schema or lowering-version bump
    invalidates the warm entries exactly as it invalidates the
    persisted ones.  Lowered closures read the memory model and
    global environment through the evaluator at run time, so one
    entry soundly serves every memory model; only the compiled back
    end reads or writes it (``backend="tree"`` has no lowerings).

    Entries are LRU-bounded by count.  Hit/miss counters mirror to
    the active obs context as ``store.warm_closures.{hits,misses}``.
    """

    def __init__(self, max_entries: int = 64,
                 kind: str = "warm_closures"):
        self.max_entries = max_entries
        self.kind = kind
        self.hits = 0
        self.misses = 0
        self._entries: "Dict[str, object]" = {}

    def _event(self, event: str) -> None:
        ctx = obs.active()
        if ctx is not None:
            ctx.inc(f"store.{self.kind}.{event}")

    def get(self, key: str, validate=None):
        entry = self._entries.pop(key, None)
        if entry is not None and validate is not None \
                and not validate(entry):
            # An entry the caller can never use — e.g. a lowering
            # whose baked-in uniquified symbol names belong to a
            # different compile of the same source.  Evict it (it can
            # serve no future caller either) and report a miss; the
            # caller's fresh rebuild re-populates the slot.
            entry = None
        if entry is None:
            self.misses += 1
            self._event("misses")
            return None
        # Re-insert to refresh recency (dicts preserve insertion
        # order, so the first key is always the least recently used).
        self._entries[key] = entry
        self.hits += 1
        self._event("hits")
        return entry

    def put(self, key: str, value) -> None:
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}


# The process-wide warm-closure cache for compiled-back-end lowerings
# (see repro.pipeline.CompiledProgram.lowered).  Tests may clear() it
# or swap it out; it is intentionally tiny state with no disk
# footprint.
WARM_CLOSURES = WarmCache()


class ArtifactStore:
    """An on-disk compile cache shared across processes.

    Install into the pipeline with
    :func:`repro.pipeline.set_artifact_store`; ``compile_c`` then
    consults it after the in-memory cache and before the front end.
    """

    def __init__(self, root, max_bytes: int = _DEFAULT_MAX_BYTES,
                 schema_version: Optional[int] = None):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.schema_version = (STORE_SCHEMA_VERSION
                               if schema_version is None
                               else schema_version)
        self._counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0,
            "record_hits": 0, "record_misses": 0, "record_stores": 0,
            "evictions": 0, "corrupt": 0,
        }
        # Per record kind ("compiled" / "exploration" / "statics" /
        # ...): {kind: {"hits": n, "misses": n, "stores": n,
        # "corrupt": n}}, additive to the flat totals above.
        self._kind_counters: Dict[str, Dict[str, int]] = {}
        # Approximate on-disk footprint, maintained incrementally so
        # a put under the bound costs O(1) — the full directory scan
        # only runs when the estimate crosses ``max_bytes``.  It may
        # drift below reality when other processes write the same
        # store; the scan resynchronises it on every eviction pass.
        self._approx_bytes: Optional[int] = None
        # LRU recency is recorded in entry mtimes.  Wall-clock alone is
        # not enough: a put and a hit within one filesystem timestamp
        # tick would tie, and the name tiebreak could evict the entry
        # that was just touched.  This per-process monotonic clock
        # makes every recency stamp strictly newer than the last one
        # this process assigned.
        self._last_stamp = 0.0

    # -- content addressing ---------------------------------------------------

    def record_key(self, kind: str, *parts: str) -> str:
        """The content address of one stored record: the record
        ``kind`` (``"compiled"``, ``"exploration"``, ...), its
        identifying parts, and the schema version.  The kind prefix
        keeps different record families from ever colliding in one
        store directory."""
        h = hashlib.sha256()
        for part in (kind, *parts, str(self.schema_version)):
            h.update(part.encode("utf-8", "surrogateescape"))
            h.update(b"\x00")
        return h.hexdigest()

    def key(self, source: str, impl, name: str = "<string>",
            check_core: bool = True) -> str:
        """The content address of one translation: source text,
        implementation environment (``repr`` of the frozen dataclass
        is a complete fingerprint), compile flags, schema version."""
        return self.record_key("compiled", source, repr(impl), name,
                               str(check_core))

    def _path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.pkl"

    # -- read side ------------------------------------------------------------

    def _kind_event(self, kind: str, event: str) -> None:
        """One per-kind counter tick, mirrored to the active obs
        context (``store.<kind>.<event>``) when observability is on."""
        per = self._kind_counters.setdefault(
            kind, {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0})
        per[event] += 1
        ctx = obs.active()
        if ctx is not None:
            ctx.inc(f"store.{kind}.{event}")

    def _load(self, key: str, hit: str, miss: str, expect=None,
              kind: str = "compiled"):
        """Load any stored object by key, or ``None`` on miss.

        Any failure — missing file, short read, unpickling error,
        wrong magic or schema, or (with ``expect``) an object of the
        wrong type under the key — is a miss; a damaged entry is
        dropped so the regenerated object can replace it, with a
        :class:`StoreCorruptionWarning` so the fallback is visible."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._counters[miss] += 1
            self._kind_event(kind, "misses")
            return None
        try:
            magic, version, stored_key, obj = pickle.loads(blob)
            if (magic != _MAGIC or version != self.schema_version
                    or stored_key != key):
                raise ValueError("store entry header mismatch")
            if expect is not None and not isinstance(obj, expect):
                raise ValueError("foreign object under the key")
        except Exception:
            self._counters["corrupt"] += 1
            self._counters[miss] += 1
            self._kind_event(kind, "corrupt")
            self._kind_event(kind, "misses")
            warnings.warn(
                f"dropping corrupt {kind!r} store entry "
                f"{key[:12]}... (falling back to regeneration)",
                StoreCorruptionWarning, stacklevel=3)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        # Refresh recency for LRU eviction.
        self._stamp_recency(path)
        self._counters[hit] += 1
        self._kind_event(kind, "hits")
        return obj

    def get(self, source: str, impl, name: str = "<string>",
            check_core: bool = True):
        """Load a compiled artifact, or ``None`` on miss (callers
        silently recompile — they never crash on a bad store)."""
        return self._load(self.key(source, impl, name, check_core),
                          "hits", "misses")

    def get_record(self, key: str, expect=None,
                   kind: str = "record"):
        """Load an auxiliary record (e.g. an exploration record) by a
        :meth:`record_key` address, or ``None`` on miss.  Damaged,
        stale-schema, or (with ``expect``) wrong-type entries are
        misses — counted as such — exactly as for artifacts.  Pass
        the same ``kind`` used to build the key so the per-kind
        counters attribute the access correctly."""
        return self._load(key, "record_hits", "record_misses", expect,
                          kind=kind)

    def touch(self, source: str, impl, name: str = "<string>",
              check_core: bool = True) -> None:
        """Refresh an entry's LRU recency without deserialising it.

        The pipeline's in-memory cache absorbs repeated ``compile_c``
        calls, so a *hot* artifact would otherwise never have its
        on-disk mtime refreshed after the first read — it looks cold to
        eviction while genuinely cold entries written later survive.
        ``compile_c`` calls this on every in-memory hit."""
        self._stamp_recency(self._path(self.key(source, impl, name,
                                                check_core)))

    def _stamp_recency(self, path: Path) -> None:
        """Mark ``path`` as the most recently used entry: a timestamp
        strictly newer than any this process has assigned before (plain
        ``os.utime(path, None)`` can tie with a put in the same
        filesystem timestamp tick)."""
        stamp = max(time.time(), self._last_stamp + 1e-4)
        self._last_stamp = stamp
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass

    # -- write side -----------------------------------------------------------

    def _save(self, key: str, obj, counter: str,
              kind: str = "compiled") -> None:
        """Persist any object atomically under ``key``, then enforce
        the size bound (records and artifacts share one LRU budget)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            (_MAGIC, self.schema_version, key, obj),
            protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stamp_recency(path)
        self._counters[counter] += 1
        self._kind_event(kind, "stores")
        if self._approx_bytes is None:
            self._approx_bytes = self.size_bytes()
        else:
            self._approx_bytes += len(payload)
        if self._approx_bytes > self.max_bytes:
            self._evict(keep=path)

    def put(self, source: str, impl, name: str, check_core: bool,
            program) -> None:
        """Persist a compiled artifact atomically, then enforce the
        size bound."""
        self._save(self.key(source, impl, name, check_core), program,
                   "stores")

    def put_record(self, key: str, obj, kind: str = "record") -> None:
        """Persist an auxiliary record under a :meth:`record_key`
        address.  Records ride the exact same durability machinery as
        compiled artifacts: atomic publish, corruption -> miss, and
        the shared size-bounded LRU (exploration bytes count against
        ``max_bytes`` like any other entry)."""
        self._save(key, obj, "record_stores", kind=kind)

    def _entries(self):
        """All stored artifacts as (mtime, size, path), oldest first."""
        out = []
        for path in self.objects.glob("*/*.pkl"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                st = path.stat()
            except OSError:
                continue  # concurrently evicted
            out.append((st.st_mtime, st.st_size, path))
        out.sort(key=lambda e: (e[0], e[2].name))
        return out

    def _evict(self, keep: Optional[Path] = None) -> None:
        """Drop least-recently-used entries until the store fits in
        ``max_bytes`` (the ``keep`` entry survives regardless)."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue  # another process got there first
            total -= size
            evicted += 1
        self._approx_bytes = total  # resynchronised with the scan
        if evicted:
            self._counters["evictions"] += evicted
            ctx = obs.active()
            if ctx is not None:
                ctx.inc("store.evictions", evicted)

    # -- observability --------------------------------------------------------

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def stats(self) -> Dict[str, int]:
        """Per-process counters plus the current on-disk footprint.
        ``by_kind`` breaks hits/misses/stores/corrupt down per record
        kind, additively to the flat totals.  ``warm_closures``
        reports the process-wide :data:`WARM_CLOSURES` cache — not
        per-store state, but surfaced here so campaign reports and
        ``cerberus-py stats`` see the closure-reuse rate next to the
        record traffic it rides on."""
        return dict(self._counters,
                    by_kind={k: dict(v) for k, v
                             in sorted(self._kind_counters.items())},
                    entries=len(self._entries()),
                    size_bytes=self.size_bytes(),
                    warm_closures=WARM_CLOSURES.stats())

    def reset_stats(self) -> None:
        for k in self._counters:
            self._counters[k] = 0
        self._kind_counters.clear()

    def clear(self) -> None:
        """Drop every stored artifact (counters are kept)."""
        for _, _, path in self._entries():
            try:
                path.unlink()
            except OSError:
                pass
        self._approx_bytes = 0
