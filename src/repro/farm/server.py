"""Semantics-as-a-service: the long-lived farm daemon.

The batch tool this repo grew up as pays its startup cost — process
boot, imports, cold caches — on every invocation.  :class:`FarmServer`
is the service seam the ROADMAP (and PRs 2 and 5) named next: one
persistent asyncio daemon owns one :class:`~repro.farm.store.
ArtifactStore` (and, through it, the exploration-record store) plus a
pre-warmed forked worker pool, and serves C-semantics verdicts over a
small JSON protocol on a unix socket.  Clients POST C source plus the
semantic knobs (impl, models, mode, strategy, por, static_prune,
backend, budgets) and get campaign-report payloads back.

Robustness properties
=====================

* **In-flight dedup** — every request is content-addressed by its
  *semantic* identity (:meth:`JobSpec.identity`, hashed with
  :func:`repro.obs.run_id_for` exactly like trace run ids): source
  text + every behaviour-determining knob, with client names, labels,
  wait flags, and any output/cache paths excluded.  Two identical
  submissions — concurrent or not — coalesce into **one**
  computation; later waiters attach to the in-flight job
  (``server.dedup_coalesced``), and finished payloads are persisted
  so re-submissions are served from the result record
  (``server.result_cache_hits``) without touching the pool.
* **Crash-safe queue** — accepting a job persists it *before* the
  submit response: a ``"job"`` record (the spec) plus membership in
  the ``"jobqueue"`` pending-index record, both in the artifact
  store (atomic writes, schema-versioned).  A killed ``-9`` server
  restarted on the same store re-enqueues every accepted-but-
  unfinished job (``server.resumed``); completed payloads were
  persisted as ``"jobresult"`` records, so clients that re-connect
  and poll ``result`` get every answer.  Job explorations run
  through the exploration-record store in the same directory, so a
  restart also rides PR 5's frontier/record resume: per-model cells
  finished before the kill are never re-explored.
* **Quotas** — at most ``quota`` unfinished jobs *accepted* per
  client name (attaching to an in-flight duplicate is free);
  exceeding it is a structured ``quota-exceeded`` error.
* **Two-level timeouts** — a cooperative per-job wall-clock deadline
  travels into the worker (``job_timeout``: exploration stops at the
  deadline exactly like farm tasks), and a hard ``hard_timeout``
  backstop in the daemon marks a silent job ``job-timeout`` so its
  waiters are never wedged.
* **Graceful drain** — SIGTERM or the ``shutdown`` op stops
  accepting submissions (``shutting-down``), waits up to
  ``drain_timeout`` for in-flight jobs, persists what remains in the
  pending index, and exits; nothing accepted is ever lost.

Observability: the daemon mirrors its counters to the active
:mod:`repro.obs` context (``server.*`` counters, a
``server.queue_depth`` gauge, one ``server.job`` span per executed
job carrying the job id and state), so ``cerberus-py serve --trace
FILE`` produces a trace readable by ``cerberus-py stats``; worker-side
metrics ship back with each payload and are merged in, exactly like
farm campaigns.

The JSON protocol (version 1)
=============================

Transport: a unix stream socket; one JSON object per ``\\n``-
terminated line per request, one JSON object line in response.
Connections may be reused sequentially.  A request line longer than
``max_request_bytes`` is answered with an ``oversized`` error and the
connection is closed (the stream cannot be resynchronised).

Every request carries ``"op"`` and optionally ``"v"`` (the protocol
version, default 1 — any other value is a ``protocol-version``
error).  Unknown fields are **rejected** (``unknown-field``), not
ignored: a typo'd knob must not silently change a job's semantics.

Requests::

    {"op": "submit", "v": 1, "source": "int main(void){...}",
     "name": "t.c", "impl": "LP64", "models": ["concrete", ...]|"all",
     "mode": "run"|"explore", "strategy": "dfs", "por": false,
     "static_prune": false, "backend": "compiled"|"tree",
     "max_steps": 2000000, "max_paths": 500, "seed": null,
     "lint": false,
     "client": "ci", "label": "anything", "wait": true}
    {"op": "status", "job": JOB_ID}
    {"op": "result", "job": JOB_ID}
    {"op": "stats"}
    {"op": "health"}
    {"op": "shutdown", "drain": true}

``submit`` semantic fields (everything except ``client`` / ``label``
/ ``wait``) form the job identity; only ``source`` is required.
Responses (success)::

    submit, wait=false: {"ok": true, "job": ID, "state": "queued"|
                         "running"|"done"|"failed",
                         "coalesced": bool, "cached": bool}
    submit, wait=true:  {"ok": true, "job": ID, "state": ...,
                         "coalesced": ..., "cached": ...,
                         "report": PAYLOAD}
    status:             {"ok": true, "job": ID, "state": ...,
                         "wall_s": seconds-since-accept}
    result:             {"ok": true, "job": ID, "state": "done"|
                         "failed", "report": PAYLOAD}
    stats:              {"ok": true, "protocol": 1, "server": {...},
                         "store": ArtifactStore.stats()}
    health:             {"ok": true, "protocol": 1, "status":
                         "serving"|"draining", "pid": N}
    shutdown:           {"ok": true, "draining": true, "inflight": N}

``PAYLOAD`` is the JSON form of one farm
:class:`~repro.farm.pool.TaskResult`
(:func:`~repro.farm.pool.task_result_to_json`): ``ok`` / ``error`` /
``timed_out`` / ``wall_s`` / per-task store counter deltas
(``stats``) / ``verdicts`` ({model: verdict}) or ``explorations``
({model: {paths, exhausted, behaviours, ...}}) / worker ``metrics``.
``explorations[*].behaviours`` is byte-identical to the direct
:func:`repro.pipeline.explore_many` behaviour set — pinned by
``tests/test_server_conformance.py`` against the golden suite.

Errors are structured, never tracebacks::

    {"ok": false, "error": {"code": CODE, "detail": "...",
                            "field": OPTIONAL}}

with distinct codes: ``bad-json`` (unparsable line), ``bad-request``
(not a JSON object / missing op), ``protocol-version``,
``unknown-op``, ``unknown-field``, ``missing-field``, ``bad-field``
(wrong type or value, named in ``field``), ``oversized`` (request
line or source over the cap), ``unknown-job``, ``pending`` (result
requested before completion), ``quota-exceeded``, ``shutting-down``,
``job-failed``, ``job-timeout``, and ``internal``.

Versioning: ``PROTOCOL_VERSION`` gates the wire schema (bump on
incompatible request/response changes — old clients get a
``protocol-version`` error, not garbage); persisted job/jobresult
records additionally ride the store's ``STORE_SCHEMA_VERSION``, so a
store-format bump invalidates stale queue state wholesale.

Entry points: ``cerberus-py serve --socket S --store DIR`` /
``cerberus-py submit file.c --socket S ...`` (:mod:`repro.cli`),
:class:`repro.farm.client.FarmClient`, and
:func:`repro.farm.campaign.sweep_campaign(server=...)
<repro.farm.campaign.sweep_campaign>`.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .. import obs
from ..obs.trace import run_id_for
from .pool import (
    SweepTask, _init_worker, _store_spec, execute_task,
    task_result_to_json,
)
from .store import ArtifactStore

#: Wire-protocol version: folded into every health/stats response and
#: checked against each request's ``v`` field.
PROTOCOL_VERSION = 1

#: Store record kinds of the crash-safe queue.
JOB_RECORD_KIND = "job"
RESULT_RECORD_KIND = "jobresult"
QUEUE_RECORD_KIND = "jobqueue"

_DEFAULT_MAX_REQUEST = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A structured request rejection: becomes the JSON error payload
    (code + human detail + optionally the offending field), never a
    server-side traceback."""

    def __init__(self, code: str, detail: str,
                 field: Optional[str] = None):
        super().__init__(detail)
        self.code = code
        self.detail = detail
        self.field = field

    def to_json(self) -> dict:
        error = {"code": self.code, "detail": self.detail}
        if self.field is not None:
            error["field"] = self.field
        return {"ok": False, "error": error}


def error_payload(code: str, detail: str,
                  field: Optional[str] = None) -> dict:
    return ProtocolError(code, detail, field).to_json()


# -- request identity ----------------------------------------------------------

#: submit fields that determine behaviour — and ONLY those: they form
#: the job identity.  ``client`` / ``label`` / ``wait`` (and any
#: future output-path or cache-dir field) are deliberately excluded,
#: mirroring the discipline of ``repro.cli._main_identity``: two
#: clients differing only in who they are or where they want their
#: trace written must coalesce to one computation.
SEMANTIC_FIELDS = ("source", "name", "impl", "models", "mode",
                   "strategy", "por", "static_prune", "backend",
                   "max_steps", "max_paths", "seed", "lint")


@dataclass(frozen=True)
class JobSpec:
    """The validated, semantic-only content of one submission."""

    source: str
    name: str = "<submit>"
    impl: str = "LP64"
    models: Tuple[str, ...] = ()
    mode: str = "run"
    strategy: str = "dfs"
    por: bool = False
    static_prune: bool = False
    backend: str = "compiled"
    max_steps: int = 2_000_000
    max_paths: int = 500
    seed: Optional[int] = None
    lint: bool = False

    def identity(self) -> str:
        """The semantic identity string — hashed into the job id the
        same way trace run ids are derived
        (:func:`repro.obs.run_id_for`): content only, never client
        names, wait flags, output paths, or cache directories."""
        return "\x00".join([
            "farm-job", str(PROTOCOL_VERSION), self.source, self.name,
            self.impl, ",".join(self.models), self.mode,
            self.strategy, str(self.por), str(self.static_prune),
            self.backend, str(self.max_steps), str(self.max_paths),
            str(self.seed), str(self.lint)])

    def job_id(self) -> str:
        return run_id_for(self.identity())

    def to_dict(self) -> dict:
        return {"source": self.source, "name": self.name,
                "impl": self.impl, "models": list(self.models),
                "mode": self.mode, "strategy": self.strategy,
                "por": self.por, "static_prune": self.static_prune,
                "backend": self.backend, "max_steps": self.max_steps,
                "max_paths": self.max_paths, "seed": self.seed,
                "lint": self.lint}

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        d = dict(d)
        d["models"] = tuple(d.get("models") or ())
        return cls(**d)


# -- request validation --------------------------------------------------------

def _field(msg: dict, name: str, types, default,
           choices=None, required: bool = False):
    """One validated request field: wrong type or value is a
    ``bad-field`` error naming the field, absence of a required field
    is ``missing-field``."""
    if name not in msg:
        if required:
            raise ProtocolError("missing-field",
                                f"{name!r} is required", name)
        return default
    value = msg[name]
    type_tuple = types if isinstance(types, tuple) else (types,)
    ok = isinstance(value, type_tuple)
    if ok and isinstance(value, bool) and bool not in type_tuple:
        ok = False   # JSON true/false is not an acceptable integer
    if not ok:
        raise ProtocolError(
            "bad-field", f"{name!r} has the wrong type "
            f"({type(value).__name__})", name)
    if choices is not None and value not in choices:
        raise ProtocolError(
            "bad-field",
            f"{name!r} must be one of {sorted(choices)}, "
            f"got {value!r}", name)
    return value


_SUBMIT_FIELDS = frozenset(
    SEMANTIC_FIELDS) | {"op", "v", "client", "label", "wait"}
_OP_FIELDS = {
    "submit": _SUBMIT_FIELDS,
    "status": frozenset({"op", "v", "job"}),
    "result": frozenset({"op", "v", "job"}),
    "stats": frozenset({"op", "v"}),
    "health": frozenset({"op", "v"}),
    "shutdown": frozenset({"op", "v", "drain"}),
}


def _check_fields(msg: dict, op: str) -> None:
    """Unknown protocol fields are rejected, not ignored — a typo'd
    semantic knob must never silently change what a job means."""
    unknown = sorted(set(msg) - _OP_FIELDS[op])
    if unknown:
        raise ProtocolError(
            "unknown-field",
            f"unknown field(s) for {op!r}: {', '.join(unknown)}",
            unknown[0])


def validate_submit(msg: dict, max_source_bytes: int) -> JobSpec:
    """The full submit schema check: types, value domains, the source
    size cap, and unknown-field rejection — every failure a distinct
    structured error code."""
    from ..dynamics.explore import STRATEGIES
    from ..pipeline import MODELS
    _check_fields(msg, "submit")
    source = _field(msg, "source", str, None, required=True)
    if len(source.encode("utf-8", "surrogateescape")) \
            > max_source_bytes:
        raise ProtocolError(
            "oversized", f"source exceeds {max_source_bytes} bytes",
            "source")
    models = msg.get("models", "all")
    if models == "all":
        models = sorted(MODELS)
    if not isinstance(models, list) or not models \
            or not all(isinstance(m, str) for m in models):
        raise ProtocolError("bad-field", "'models' must be 'all' or "
                            "a non-empty list of model names",
                            "models")
    unknown = sorted(set(models) - set(MODELS))
    if unknown:
        raise ProtocolError(
            "bad-field", f"unknown model(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(MODELS))})", "models")
    seed = msg.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool)):
        raise ProtocolError("bad-field", "'seed' must be an integer "
                            "or null", "seed")
    max_steps = _field(msg, "max_steps", int, 2_000_000)
    max_paths = _field(msg, "max_paths", int, 500)
    if max_steps <= 0 or max_paths <= 0:
        raise ProtocolError("bad-field",
                            "budgets must be positive integers",
                            "max_steps" if max_steps <= 0
                            else "max_paths")
    return JobSpec(
        source=source,
        name=_field(msg, "name", str, "<submit>"),
        impl=_field(msg, "impl", str, "LP64",
                    choices={"LP64", "ILP32"}),
        models=tuple(models),
        mode=_field(msg, "mode", str, "run",
                    choices={"run", "explore"}),
        strategy=_field(msg, "strategy", str, "dfs",
                        choices=set(STRATEGIES)),
        por=_field(msg, "por", bool, False),
        static_prune=_field(msg, "static_prune", bool, False),
        backend=_field(msg, "backend", str, "compiled",
                       choices={"compiled", "tree"}),
        max_steps=max_steps,
        max_paths=max_paths,
        seed=seed,
        lint=_field(msg, "lint", bool, False))


# -- the worker side -----------------------------------------------------------

def _init_server_worker(store_spec) -> None:
    """Pool-worker bootstrap for the daemon: the normal farm worker
    init, plus SIGTERM/SIGINT ignored — a terminal or service manager
    signalling the daemon's process group must drain through the
    daemon, not shoot the workers mid-job (SIGKILL still works; the
    crash tests rely on it)."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _init_worker(store_spec)


def _warm_worker() -> int:
    """A no-op task submitted once per worker at startup, so forking
    and module imports happen before the first request, not during
    it."""
    import repro.pipeline  # noqa: F401  (fork keeps it warm)
    return os.getpid()


def _execute_job(spec_dict: dict, explore_dir: Optional[str],
                 deadline_s: Optional[float]) -> dict:
    """Run one job in a pool worker: exactly the farm task recipe
    (:func:`repro.farm.pool.execute_task`), so server-path verdicts
    ride the same ``run_many`` / ``explore_many`` seams as the direct
    API, with the job's explorations persisted as records in the
    server's store (``explore_dir``) — that persistence is what makes
    a SIGKILL'd campaign resumable."""
    spec = JobSpec.from_dict(spec_dict)
    from ..ctypes.implementation import ILP32, LP64
    task = SweepTask(
        index=0, name=spec.name, kind=spec.mode, source=spec.source,
        models=spec.models,
        impl=LP64 if spec.impl == "LP64" else ILP32,
        max_steps=spec.max_steps, max_paths=spec.max_paths,
        seed=spec.seed, strategy=spec.strategy, por=spec.por,
        static_prune=spec.static_prune, backend=spec.backend,
        lint=spec.lint, deadline_s=deadline_s,
        explore_store=explore_dir if spec.mode == "explore" else None,
        resume=True, collect_metrics=True)
    return task_result_to_json(execute_task(task))


# -- the daemon ----------------------------------------------------------------

@dataclass
class Job:
    """One accepted job's in-memory state (its spec and payload are
    additionally persisted as store records)."""

    spec: JobSpec
    job_id: str
    state: str = "queued"            # queued | running | done | failed
    accepted_m: float = 0.0
    payload: Optional[dict] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    clients: Set[str] = field(default_factory=set)


class FarmServer:
    """The long-lived daemon.  Construct, then ``await serve()`` (or
    drive :meth:`start` / :meth:`wait_closed` separately from an
    existing event loop, as the E2E tests do)."""

    def __init__(self, socket_path, store, workers: int = 2,
                 quota: int = 16,
                 job_timeout: Optional[float] = None,
                 hard_timeout: Optional[float] = None,
                 drain_timeout: float = 30.0,
                 max_request_bytes: int = _DEFAULT_MAX_REQUEST):
        self.socket_path = str(socket_path)
        self.store = store if isinstance(store, ArtifactStore) \
            else ArtifactStore(store)
        self.workers = max(1, int(workers))
        self.quota = int(quota)
        self.job_timeout = job_timeout
        # The hard backstop must strictly dominate the cooperative
        # deadline or it would fire first on healthy jobs.
        if hard_timeout is None and job_timeout is not None:
            hard_timeout = 4.0 * job_timeout + 30.0
        self.hard_timeout = hard_timeout
        self.drain_timeout = drain_timeout
        self.max_request_bytes = int(max_request_bytes)
        self._explore_dir = str(self.store.root)
        self._jobs: Dict[str, Job] = {}
        self._client_jobs: Dict[str, Set[str]] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._draining = False       # refuse new submissions
        self._drain_started = False  # drain() re-entry guard
        self._started_m = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._executor = None
        self.counters: Dict[str, int] = {
            "requests": 0, "submits": 0, "accepted": 0,
            "dedup_coalesced": 0, "result_cache_hits": 0,
            "jobs_executed": 0, "jobs_completed": 0,
            "jobs_failed": 0, "jobs_timeout": 0, "resumed": 0,
            "rejects": 0,
        }
        self._queue_key = self.store.record_key(QUEUE_RECORD_KIND,
                                                "pending")

    # -- counters / obs mirrors -----------------------------------------------

    def _inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        ctx = obs.active()
        if ctx is not None:
            ctx.inc(f"server.{name}", n)

    def _queue_depth(self) -> int:
        return sum(1 for j in self._jobs.values()
                   if j.state in ("queued", "running"))

    def _gauge_depth(self) -> None:
        ctx = obs.active()
        if ctx is not None:
            ctx.gauge("server.queue_depth", self._queue_depth())

    # -- crash-safe queue records ---------------------------------------------

    def _job_key(self, job_id: str) -> str:
        return self.store.record_key(JOB_RECORD_KIND, job_id)

    def _result_key(self, job_id: str) -> str:
        return self.store.record_key(RESULT_RECORD_KIND, job_id)

    def _persist_pending(self) -> None:
        pending = sorted(j.job_id for j in self._jobs.values()
                         if j.state in ("queued", "running"))
        self.store.put_record(self._queue_key, pending,
                              kind=QUEUE_RECORD_KIND)

    def _persist_job(self, job: Job) -> None:
        self.store.put_record(self._job_key(job.job_id),
                              job.spec.to_dict(),
                              kind=JOB_RECORD_KIND)

    def _persist_result(self, job: Job) -> None:
        self.store.put_record(self._result_key(job.job_id),
                              job.payload, kind=RESULT_RECORD_KIND)

    def _recover_queue(self) -> int:
        """Re-enqueue every job the previous incarnation accepted but
        never finished: the pending-index record names them, each
        ``"job"`` record carries the spec, and a ``"jobresult"``
        record (present when the crash hit between result persist and
        index rewrite) short-circuits straight to done."""
        pending = self.store.get_record(self._queue_key, list,
                                        kind=QUEUE_RECORD_KIND) or []
        resumed = 0
        for job_id in pending:
            payload = self.store.get_record(self._result_key(job_id),
                                            dict,
                                            kind=RESULT_RECORD_KIND)
            if payload is not None:
                job = Job(JobSpec(source=""), job_id,
                          state="done" if payload.get("ok")
                          else "failed",
                          accepted_m=time.monotonic(),
                          payload=payload)
                spec_dict = self.store.get_record(
                    self._job_key(job_id), dict, kind=JOB_RECORD_KIND)
                if spec_dict is not None:
                    job.spec = JobSpec.from_dict(spec_dict)
                job.done.set()
                self._jobs[job_id] = job
                continue
            spec_dict = self.store.get_record(self._job_key(job_id),
                                              dict,
                                              kind=JOB_RECORD_KIND)
            if spec_dict is None:
                continue   # evicted or corrupt: nothing to resume
            job = Job(JobSpec.from_dict(spec_dict), job_id,
                      accepted_m=time.monotonic())
            self._jobs[job_id] = job
            self._spawn(job)
            resumed += 1
        if resumed:
            self._inc("resumed", resumed)
        self._persist_pending()
        return resumed

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> int:
        """Bind the socket, pre-warm the pool, recover the persisted
        queue; returns the number of resumed jobs."""
        self._stopped = asyncio.Event()
        methods = multiprocessing.get_all_start_methods()
        mp_ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0])
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers, mp_context=mp_ctx,
            initializer=_init_server_worker,
            initargs=(_store_spec(self.store),))
        # Fork + import every worker now, not on the first request.
        warm = [self._executor.submit(_warm_worker)
                for _ in range(self.workers)]
        concurrent.futures.wait(warm, timeout=60)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path,
            limit=self.max_request_bytes + 1024)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain()))
            except (NotImplementedError, RuntimeError):
                pass
        return self._recover_queue()

    async def wait_closed(self) -> None:
        await self._stopped.wait()

    async def serve(self) -> None:
        """start + run until drained (the ``cerberus-py serve``
        main loop)."""
        await self.start()
        await self.wait_closed()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new submissions, wait (bounded)
        for in-flight jobs, persist the pending index, close."""
        if self._drain_started:
            return
        self._drain_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._tasks:
            await asyncio.wait(set(self._tasks),
                               timeout=self.drain_timeout)
        self._persist_pending()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._server is not None:
            await self._server.wait_closed()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._stopped.set()

    # -- connection handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(writer, error_payload(
                        "oversized",
                        f"request line exceeds "
                        f"{self.max_request_bytes} bytes"))
                    break    # stream unsynchronised: drop it
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                close = response.pop("_close", False)
                await self._reply(writer, response)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reply(self, writer: asyncio.StreamWriter,
                     response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, line: bytes) -> dict:
        self._inc("requests")
        try:
            try:
                msg = json.loads(line)
            except ValueError:
                raise ProtocolError("bad-json",
                                    "request is not valid JSON")
            if not isinstance(msg, dict):
                raise ProtocolError("bad-request",
                                    "request must be a JSON object")
            version = msg.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    "protocol-version",
                    f"server speaks protocol {PROTOCOL_VERSION}, "
                    f"request says {version!r}", "v")
            op = msg.get("op")
            if not isinstance(op, str):
                raise ProtocolError("bad-request",
                                    "request needs a string 'op'")
            if op not in _OP_FIELDS:
                raise ProtocolError("unknown-op",
                                    f"unknown op {op!r}", "op")
            _check_fields(msg, op)
            handler = getattr(self, f"_op_{op}")
            return await handler(msg)
        except ProtocolError as exc:
            self._inc("rejects")
            ctx = obs.active()
            if ctx is not None:
                ctx.inc(f"server.errors.{exc.code}")
            return exc.to_json()
        except Exception as exc:   # never a traceback on the wire
            self._inc("rejects")
            return error_payload("internal",
                                 f"{type(exc).__name__}: {exc}")

    # -- ops ------------------------------------------------------------------

    async def _op_submit(self, msg: dict) -> dict:
        self._inc("submits")
        if self._draining:
            raise ProtocolError("shutting-down",
                                "server is draining; resubmit to the "
                                "next incarnation")
        spec = validate_submit(msg, self.max_request_bytes)
        client = _field(msg, "client", str, "anon")
        wait = _field(msg, "wait", bool, True)
        _field(msg, "label", str, None)   # type-checked, non-semantic
        job_id = spec.job_id()
        coalesced = cached = False

        job = self._jobs.get(job_id)
        if job is not None:
            if job.state in ("queued", "running"):
                coalesced = True
                self._inc("dedup_coalesced")
            else:
                cached = True
                self._inc("result_cache_hits")
        else:
            payload = self.store.get_record(
                self._result_key(job_id), dict,
                kind=RESULT_RECORD_KIND)
            if payload is not None:
                # A previous incarnation finished this exact request.
                cached = True
                self._inc("result_cache_hits")
                job = Job(spec, job_id, accepted_m=time.monotonic(),
                          state="done" if payload.get("ok")
                          else "failed",
                          payload=payload)
                job.done.set()
                self._jobs[job_id] = job
            else:
                active = self._client_jobs.setdefault(client, set())
                active &= {j for j in active
                           if self._unfinished(j)}
                if self.quota and len(active) >= self.quota:
                    raise ProtocolError(
                        "quota-exceeded",
                        f"client {client!r} already has "
                        f"{len(active)} unfinished jobs "
                        f"(quota {self.quota})")
                job = Job(spec, job_id, accepted_m=time.monotonic())
                job.clients.add(client)
                active.add(job_id)
                self._jobs[job_id] = job
                # Persist BEFORE acknowledging: once the client sees
                # the job id, a kill -9 cannot lose the job.
                self._persist_job(job)
                self._persist_pending()
                self._inc("accepted")
                self._spawn(job)
        self._gauge_depth()
        response = {"ok": True, "job": job_id, "state": job.state,
                    "coalesced": coalesced, "cached": cached}
        if wait:
            await job.done.wait()
            response["state"] = job.state
            response["report"] = job.payload
        return response

    def _unfinished(self, job_id: str) -> bool:
        job = self._jobs.get(job_id)
        return job is not None and job.state in ("queued", "running")

    async def _op_status(self, msg: dict) -> dict:
        job = self._lookup(msg)
        return {"ok": True, "job": job.job_id, "state": job.state,
                "wall_s": round(time.monotonic() - job.accepted_m, 4)}

    async def _op_result(self, msg: dict) -> dict:
        job = self._lookup(msg)
        if job.state in ("queued", "running"):
            raise ProtocolError(
                "pending", f"job {job.job_id} is {job.state}; poll "
                f"again", "job")
        return {"ok": True, "job": job.job_id, "state": job.state,
                "report": job.payload}

    def _lookup(self, msg: dict) -> Job:
        job_id = _field(msg, "job", str, None, required=True)
        job = self._jobs.get(job_id)
        if job is None:
            # Maybe a previous incarnation finished it.
            payload = self.store.get_record(
                self._result_key(job_id), dict,
                kind=RESULT_RECORD_KIND)
            if payload is None:
                raise ProtocolError("unknown-job",
                                    f"unknown job {job_id!r}", "job")
            job = Job(JobSpec(source=""), job_id,
                      accepted_m=time.monotonic(),
                      state="done" if payload.get("ok") else "failed",
                      payload=payload)
            job.done.set()
            self._jobs[job_id] = job
        return job

    async def _op_stats(self, msg: dict) -> dict:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True, "protocol": PROTOCOL_VERSION,
            "server": {
                "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self._started_m,
                                  3),
                "draining": self._draining,
                "workers": self.workers,
                "quota": self.quota,
                "queue_depth": self._queue_depth(),
                "jobs": states,
                "counters": dict(self.counters),
            },
            "store": self.store.stats(),
        }

    async def _op_health(self, msg: dict) -> dict:
        return {"ok": True, "protocol": PROTOCOL_VERSION,
                "status": "draining" if self._draining
                else "serving",
                "pid": os.getpid()}

    async def _op_shutdown(self, msg: dict) -> dict:
        drain = _field(msg, "drain", bool, True)
        inflight = self._queue_depth()
        self._draining = True
        if drain:
            asyncio.ensure_future(self.drain())
        else:
            for task in self._tasks:
                task.cancel()
            asyncio.ensure_future(self.drain())
        return {"ok": True, "draining": True, "inflight": inflight,
                "_close": True}

    # -- job execution --------------------------------------------------------

    def _spawn(self, job: Job) -> None:
        task = asyncio.ensure_future(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        self._inc("jobs_executed")
        self._gauge_depth()
        ctx = obs.active()
        t0 = ctx.tracer.now() if ctx is not None \
            and ctx.tracer is not None else 0.0
        w0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(
                self._executor, _execute_job, job.spec.to_dict(),
                self._explore_dir, self.job_timeout)
            if self.hard_timeout is not None:
                payload = await asyncio.wait_for(future,
                                                 self.hard_timeout)
            else:
                payload = await future
        except asyncio.CancelledError:
            # Drain-without-wait: leave the job queued-on-disk for
            # the next incarnation.
            job.state = "queued"
            job.done.set()
            return
        except asyncio.TimeoutError:
            payload = dict(error_payload(
                "job-timeout",
                f"job exceeded the {self.hard_timeout:g}s hard "
                f"backstop"), timed_out=True)
            self._inc("jobs_timeout")
        except Exception as exc:
            payload = error_payload(
                "job-failed", f"worker failure: "
                f"{type(exc).__name__}: {exc}")
        job.payload = payload
        job.state = "done" if payload.get("ok") else "failed"
        if job.state == "done":
            self._inc("jobs_completed")
        elif not payload.get("timed_out"):
            self._inc("jobs_failed")   # timeouts counted above
        wall = time.perf_counter() - w0
        if ctx is not None:
            ctx.merge(payload.get("metrics"))
            ctx.observe("span.server.job", wall)
            if ctx.tracer is not None:
                ctx.tracer.emit_span(
                    "server.job", t0, wall, 0.0, 0,
                    {"job": job.job_id, "name": job.spec.name,
                     "mode": job.spec.mode, "state": job.state})
        self._persist_result(job)
        self._persist_pending()
        for client in job.clients:
            self._client_jobs.get(client, set()).discard(job.job_id)
        self._gauge_depth()
        job.done.set()


def serve_forever(socket_path, store_dir, **kwargs) -> None:
    """Blocking entry point used by ``cerberus-py serve``."""
    server = FarmServer(socket_path, store_dir, **kwargs)
    asyncio.run(server.serve())
