"""Farm-sharded frontier exploration: one program's state space split
across worker processes.

Exploration is a tree of oracle choice prefixes, and every subtree is
independent — a prefix fully determines its replay.  So the frontier
parallelises the same way corpora do:

1. a *seeding* phase runs the explorer in-process with the ``bfs``
   strategy until the frontier is wide enough (``jobs *
   frontier_factor`` pending prefixes), producing balanced, shallow
   subtrees;
2. each pending :class:`~repro.dynamics.explore.PathNode` (prefix +
   POR sleep set — plain picklable tuples) becomes an
   ``"explore_shard"`` :class:`~repro.farm.pool.SweepTask` dispatched
   through :func:`~repro.farm.pool.run_tasks`, sharing the artifact
   store so workers skip the front end;
3. shard results merge into one
   :class:`~repro.dynamics.explore.ExplorationResult`:
   outcomes concatenate (each shard pre-deduplicates and strips
   traces), ``paths_run``/``pruned``/``diverged`` sum — seeding plus
   shards pop exactly the nodes a serial run would, so when no budget
   is hit the totals equal a serial exploration's — and the merge is
   ``exhausted`` only when the seed phase and every shard were, with
   no worker failures.

The global ``max_paths`` budget is split evenly across shards
(ceiling), which bounds the merged total near the serial budget but
makes the split a *per-shard* budget: one unbalanced subtree can hit
its slice (marking the merge non-exhausted) while sibling shards
leave theirs unused — unlike a serial run, which would have spent the
idle budget on the deep subtree.  When an exploration comes back
non-exhausted with ``paths_run`` well under ``max_paths``, re-run
with a larger budget (or more ``frontier_factor`` subtrees, which
shrinks and rebalances the slices).  ``deadline_s`` is likewise one
wall-clock budget: shards receive only what the seeding phase left.

``explore_store=`` makes the whole farm exploration incremental
(:mod:`repro.farm.explorestore`): a complete record for the program's
exploration space returns with **zero** paths re-run; an interrupted
campaign — deadline, per-shard budget, worker timeout or kill —
persists the surviving frontier (un-mined shard roots plus every
shard's unexplored remainder) together with the accounting so far;
and with ``resume=True`` a later call skips seeding entirely and
dispatches the persisted frontier straight to the shards, merging to
exactly what an uninterrupted serial run would have produced.
"""

from __future__ import annotations

import time
from typing import List, Optional

from .. import obs
from ..ctypes.implementation import Implementation, LP64
from ..dynamics.driver import Driver
from ..dynamics.explore import ExplorationResult, Explorer, PathNode
from ..pipeline import compile_for_model
from .explorestore import (
    ExplorationRecord, ExploreStore, plan_cached,
)
from .pool import SweepTask, run_tasks


def explore_farm(source: str,
                 model: str = "provenance",
                 impl: Implementation = LP64,
                 max_paths: int = 500,
                 max_steps: int = 500_000,
                 strategy: str = "dfs",
                 por: bool = False,
                 seed: Optional[int] = None,
                 jobs: int = 1,
                 store=None,
                 explore_store=None,
                 resume: bool = True,
                 deadline_s: Optional[float] = None,
                 frontier_factor: int = 4,
                 name: str = "<string>",
                 entry: str = "main",
                 task_timeout: Optional[float] = None,
                 backend: str = "compiled"
                 ) -> ExplorationResult:
    """Explore one program's state space across ``jobs`` farm workers.

    ``jobs <= 1`` degrades to a plain in-process exploration with the
    requested strategy — one code path for every caller.  Otherwise
    the frontier is seeded breadth-first, split into per-prefix shard
    tasks (each running ``strategy``/``por`` on its subtree), and the
    shard results merged with correct ``exhausted``/``paths_run``
    accounting.  ``store`` is the compiled-artifact store workers
    share; ``explore_store`` persists the exploration itself (warm
    hit = zero paths re-run, interruption = resumable frontier)."""
    program = compile_for_model(source, model, impl, name=name)

    def make_model():
        return program.make_model(model)

    def make_driver(oracle):
        return Driver(program.core, make_model(), oracle, max_steps,
                      backend=backend)

    es = None if explore_store is None \
        else ExploreStore.wrap(explore_store)
    key = None
    if es is not None:
        key = es.key(source, program.impl, model, name=name,
                     entry=entry, max_steps=max_steps,
                     strategy=strategy, seed=seed, por=por,
                     backend=backend)

    if jobs <= 1:
        if es is not None:
            from .explorestore import cached_explore
            return cached_explore(make_driver, store=es, key=key,
                                  resume=resume, max_paths=max_paths,
                                  entry=entry, deadline_s=deadline_s,
                                  strategy=strategy, por=por,
                                  seed=seed)
        return Explorer(make_driver, max_paths=max_paths, entry=entry,
                        deadline_s=deadline_s, strategy=strategy,
                        por=por, seed=seed).run()

    ctx = obs.active()
    with obs.maybe_span(ctx, "explore_farm", jobs=jobs, model=model):
        start = time.monotonic()
        base: Optional[ExplorationResult] = None
        frontier: List[PathNode] = []
        recorded_paths = 0  # paths served from the record, not run live
        # One shared reuse rule with the serial seam: an unusable
        # fuller record is neither served nor clobbered (publish=False).
        rec, publish = plan_cached(es, key, max_paths) \
            if es is not None else (None, True)
        if rec is not None and rec.complete:
            return rec.to_result()      # zero paths re-run
        resumed = rec is not None and resume
        if resumed:
            # Skip seeding: the persisted frontier is already an exact
            # cut through the exploration tree; dispatch it straight
            # to shards.
            base = rec.to_result()
            recorded_paths = base.paths_run
            frontier = list(rec.frontier)
        else:
            seeder = Explorer(make_driver, max_paths=max_paths,
                              entry=entry, deadline_s=deadline_s,
                              strategy="bfs", por=por,
                              frontier_target=max(
                                  2, jobs * frontier_factor),
                              requeue_interrupted=es is not None)
            base = seeder.run()
            frontier = seeder.pending
            if not frontier:
                # Seeding already finished (or truncated) the space.
                if es is not None:
                    es.note_live(base.paths_run)
                    if publish:
                        es.put(key, ExplorationRecord.from_result(
                            base, budget=max_paths))
                return base

        remaining = max_paths - base.paths_run
        shard_deadline = deadline_s
        if deadline_s is not None:
            # deadline_s is one wall-clock budget for the whole
            # exploration: shards only get what seeding left of it.
            shard_deadline = deadline_s - (time.monotonic() - start)
        if remaining <= 0 or \
                (shard_deadline is not None and shard_deadline <= 0):
            # Budget spent before any shard could run.  A fresh
            # seeding phase persists its frontier (resumable) and
            # counts its live paths; a resumed record that ran nothing
            # is neither re-stored (byte-identical) nor counted as a
            # resume.
            if es is not None and not resumed:
                es.note_live(base.paths_run)
                if publish:
                    es.put(key, ExplorationRecord.from_result(
                        base, frontier, budget=max_paths))
            base.exhausted = False
            return base
        if resumed:
            es.note_resume()
        per_shard = -(-remaining // len(frontier))      # ceiling split
        tasks = [SweepTask(index=i, name=f"{name}#shard{i}",
                           kind="explore_shard", source=source,
                           models=(model,), impl=impl,
                           max_steps=max_steps, max_paths=per_shard,
                           deadline_s=shard_deadline, strategy=strategy,
                           por=por, seed=seed, entry=entry,
                           prefix=tuple(node.choices),
                           sleep=tuple(node.sleep),
                           requeue_interrupted=es is not None,
                           backend=backend,
                           collect_metrics=ctx is not None)
                 for i, node in enumerate(frontier)]
        if ctx is not None:
            ctx.inc("farm.shards", len(tasks))
        results = run_tasks(tasks, jobs=jobs, store=store,
                            task_timeout=task_timeout)
        parts: List[ExplorationResult] = [base]
        leftover: List[PathNode] = []
        all_ok = True
        for task, r in zip(tasks, results):
            if ctx is not None:
                ctx.merge(r.data.get("metrics"))
            shard = r.data.get("shard") if r.ok else None
            if shard is None:
                # Worker died or timed out hard: its partial work is
                # lost and uncounted, so the whole subtree root goes
                # back on the frontier — a resume re-mines it from
                # scratch.
                all_ok = False
                if ctx is not None:
                    ctx.inc("farm.shard_requeues")
                leftover.append(PathNode(tuple(task.prefix),
                                         tuple(task.sleep)))
                continue
            parts.append(shard)
            leftover.extend(
                PathNode(tuple(choices), tuple(sleep))
                for choices, sleep in r.data.get("pending", ()))
        merged = ExplorationResult.merge(parts)
        if not all_ok:
            merged.exhausted = False
        if es is not None:
            es.note_live(merged.paths_run - recorded_paths)
            if publish:
                es.put(key, ExplorationRecord.from_result(
                    merged, leftover, budget=max_paths))
        return merged
