"""Farm-sharded frontier exploration: one program's state space split
across worker processes.

Exploration is a tree of oracle choice prefixes, and every subtree is
independent — a prefix fully determines its replay.  So the frontier
parallelises the same way corpora do:

1. a *seeding* phase runs the explorer in-process with the ``bfs``
   strategy until the frontier is wide enough (``jobs *
   frontier_factor`` pending prefixes), producing balanced, shallow
   subtrees;
2. each pending :class:`~repro.dynamics.explore.PathNode` (prefix +
   POR sleep set — plain picklable tuples) becomes an
   ``"explore_shard"`` :class:`~repro.farm.pool.SweepTask` dispatched
   through :func:`~repro.farm.pool.run_tasks`, sharing the artifact
   store so workers skip the front end;
3. shard results merge into one
   :class:`~repro.dynamics.explore.ExplorationResult`:
   outcomes concatenate (each shard pre-deduplicates and strips
   traces), ``paths_run``/``pruned``/``diverged`` sum — seeding plus
   shards pop exactly the nodes a serial run would, so when no budget
   is hit the totals equal a serial exploration's — and the merge is
   ``exhausted`` only when the seed phase and every shard were, with
   no worker failures.

The global ``max_paths`` budget is split evenly across shards
(ceiling), which bounds the merged total near the serial budget but
makes the split a *per-shard* budget: one unbalanced subtree can hit
its slice (marking the merge non-exhausted) while sibling shards
leave theirs unused — unlike a serial run, which would have spent the
idle budget on the deep subtree.  When an exploration comes back
non-exhausted with ``paths_run`` well under ``max_paths``, re-run
with a larger budget (or more ``frontier_factor`` subtrees, which
shrinks and rebalances the slices).  ``deadline_s`` is likewise one
wall-clock budget: shards receive only what the seeding phase left.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..ctypes.implementation import Implementation, LP64
from ..dynamics.driver import Driver
from ..dynamics.explore import ExplorationResult, Explorer
from ..pipeline import compile_for_model
from .pool import SweepTask, run_tasks


def explore_farm(source: str,
                 model: str = "provenance",
                 impl: Implementation = LP64,
                 max_paths: int = 500,
                 max_steps: int = 500_000,
                 strategy: str = "dfs",
                 por: bool = False,
                 seed: Optional[int] = None,
                 jobs: int = 1,
                 store=None,
                 deadline_s: Optional[float] = None,
                 frontier_factor: int = 4,
                 name: str = "<string>",
                 entry: str = "main",
                 task_timeout: Optional[float] = None
                 ) -> ExplorationResult:
    """Explore one program's state space across ``jobs`` farm workers.

    ``jobs <= 1`` degrades to a plain in-process exploration with the
    requested strategy — one code path for every caller.  Otherwise
    the frontier is seeded breadth-first, split into per-prefix shard
    tasks (each running ``strategy``/``por`` on its subtree), and the
    shard results merged with correct ``exhausted``/``paths_run``
    accounting."""
    program = compile_for_model(source, model, impl, name=name)

    def make_model():
        return program.make_model(model)

    def make_driver(oracle):
        return Driver(program.core, make_model(), oracle, max_steps)

    if jobs <= 1:
        return Explorer(make_driver, max_paths=max_paths, entry=entry,
                        deadline_s=deadline_s, strategy=strategy,
                        por=por, seed=seed).run()

    target = max(2, jobs * frontier_factor)
    seed_start = time.monotonic()
    seeder = Explorer(make_driver, max_paths=max_paths, entry=entry,
                      deadline_s=deadline_s, strategy="bfs", por=por,
                      frontier_target=target)
    seed_result = seeder.run()
    frontier = seeder.pending
    if not frontier:
        return seed_result      # seeding already finished the space
    remaining = max_paths - seed_result.paths_run
    if remaining <= 0:
        seed_result.exhausted = False
        return seed_result
    # deadline_s is one wall-clock budget for the whole exploration:
    # shards only get what the seeding phase left of it.
    shard_deadline = deadline_s
    if deadline_s is not None:
        shard_deadline = deadline_s - (time.monotonic() - seed_start)
        if shard_deadline <= 0:
            seed_result.exhausted = False
            return seed_result
    per_shard = -(-remaining // len(frontier))      # ceiling split
    tasks = [SweepTask(index=i, name=f"{name}#shard{i}",
                       kind="explore_shard", source=source,
                       models=(model,), impl=impl,
                       max_steps=max_steps, max_paths=per_shard,
                       deadline_s=shard_deadline, strategy=strategy,
                       por=por, seed=seed, entry=entry,
                       prefix=tuple(node.choices),
                       sleep=tuple(node.sleep))
             for i, node in enumerate(frontier)]
    results = run_tasks(tasks, jobs=jobs, store=store,
                        task_timeout=task_timeout)
    parts: List[ExplorationResult] = [seed_result]
    all_ok = True
    for r in results:
        shard = r.data.get("shard")
        if shard is None or not r.ok:
            all_ok = False      # worker died / timed out: incomplete
            continue
        parts.append(shard)
    merged = ExplorationResult.merge(parts)
    if not all_ok:
        merged.exhausted = False
    return merged
