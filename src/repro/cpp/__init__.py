"""The C preprocessor (ISO C11 §6.10) and built-in library headers."""

from .preprocessor import Preprocessor, preprocess
from .headers import BUILTIN_HEADERS

__all__ = ["Preprocessor", "preprocess", "BUILTIN_HEADERS"]
