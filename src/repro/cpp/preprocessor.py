"""The C preprocessor (ISO C11 §6.10, translation phase 4).

Supports: ``#include`` of built-in and user-supplied virtual headers,
object-like and function-like ``#define`` (with ``#`` stringising and
``##`` pasting), ``#undef``, the conditional family (``#if``/``#ifdef``/
``#ifndef``/``#elif``/``#else``/``#endif``) with full constant-expression
evaluation including ``defined``, ``#error``, and ``#pragma`` (ignored).

Macro replacement implements argument prescan, rescanning, and blue paint
(a macro name is not re-expanded inside its own expansion, §6.10.3.4p2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PreprocessorError
from ..source import Loc, SourceFile
from ..lex.lexer import Lexer
from ..lex.tokens import Token, TokenKind
from .headers import BUILTIN_HEADERS

_MAX_INCLUDE_DEPTH = 32


@dataclass
class Macro:
    """One ``#define`` entry."""

    name: str
    body: List[Token]
    is_function: bool = False
    params: List[str] = field(default_factory=list)
    variadic: bool = False
    loc: Loc = field(default_factory=Loc.unknown)

    def same_definition(self, other: "Macro") -> bool:
        if (self.is_function != other.is_function
                or self.params != other.params
                or self.variadic != other.variadic):
            return False
        mine = [(t.kind, t.text) for t in self.body]
        theirs = [(t.kind, t.text) for t in other.body]
        return mine == theirs


class Preprocessor:
    """Runs phase 4 over a token stream, producing the C token stream
    (without NEWLINE tokens) ready for the parser."""

    def __init__(self, extra_headers: Optional[Dict[str, str]] = None,
                 predefined: Optional[Dict[str, str]] = None):
        self.headers: Dict[str, str] = dict(BUILTIN_HEADERS)
        if extra_headers:
            self.headers.update(extra_headers)
        self.macros: Dict[str, Macro] = {}
        self.output: List[Token] = []
        self._include_depth = 0
        for name, body in (predefined or {}).items():
            self.define_text(name, body)
        self.define_text("__CERBERUS__", "1")
        self.define_text("__STDC__", "1")
        self.define_text("__STDC_VERSION__", "201112L")

    # -- public API ----------------------------------------------------------

    def define_text(self, name: str, body: str) -> None:
        """Define an object-like macro from body text."""
        toks = [t for t in Lexer(SourceFile("<predef>", body)).tokens()
                if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        self.macros[name] = Macro(name, toks)

    def preprocess(self, source: SourceFile) -> List[Token]:
        """Preprocess a whole translation unit; returns C tokens + EOF."""
        self._process_tokens(Lexer(source).tokens(), source.name)
        eof_loc = self.output[-1].loc if self.output else Loc(source.name)
        self.output.append(Token(TokenKind.EOF, "", eof_loc))
        return self.output

    # -- line-structured processing -------------------------------------------

    def _process_tokens(self, toks: List[Token], filename: str) -> None:
        lines = _split_lines(toks)
        # Conditional stack entries: (live, taken_before, seen_else).
        cond: List[List[bool]] = []
        for line in lines:
            if not line:
                continue
            first = line[0]
            is_directive = first.is_punct("#") and first.at_line_start
            live = all(c[0] for c in cond)
            if is_directive:
                self._directive(line, cond, live, filename)
            elif live:
                self._expand_into_output(line)

    def _directive(self, line: List[Token], cond: List[List[bool]],
                   live: bool, filename: str) -> None:
        if len(line) == 1:
            return  # null directive
        name_tok = line[1]
        name = name_tok.text
        rest = line[2:]
        loc = name_tok.loc
        if name == "ifdef" or name == "ifndef":
            if not rest or not rest[0].is_ident():
                raise PreprocessorError(f"#{name} expects an identifier",
                                        loc, iso="6.10.1")
            defined = rest[0].text in self.macros
            take = live and (defined if name == "ifdef" else not defined)
            cond.append([take, take, False])
        elif name == "if":
            take = live and bool(self._eval_condition(rest, loc))
            cond.append([take, take, False])
        elif name == "elif":
            if not cond:
                raise PreprocessorError("#elif without #if", loc,
                                        iso="6.10.1")
            entry = cond[-1]
            if entry[2]:
                raise PreprocessorError("#elif after #else", loc,
                                        iso="6.10.1")
            outer_live = all(c[0] for c in cond[:-1])
            if entry[1] or not outer_live:
                entry[0] = False
            else:
                take = bool(self._eval_condition(rest, loc))
                entry[0] = take
                entry[1] = take
        elif name == "else":
            if not cond:
                raise PreprocessorError("#else without #if", loc,
                                        iso="6.10.1")
            entry = cond[-1]
            if entry[2]:
                raise PreprocessorError("duplicate #else", loc, iso="6.10.1")
            outer_live = all(c[0] for c in cond[:-1])
            entry[0] = outer_live and not entry[1]
            entry[2] = True
        elif name == "endif":
            if not cond:
                raise PreprocessorError("#endif without #if", loc,
                                        iso="6.10.1")
            cond.pop()
        elif not live:
            return
        elif name == "define":
            self._define(rest, loc)
        elif name == "undef":
            if not rest or not rest[0].is_ident():
                raise PreprocessorError("#undef expects an identifier", loc,
                                        iso="6.10.3.5")
            self.macros.pop(rest[0].text, None)
        elif name == "include":
            self._include(rest, loc)
        elif name == "error":
            msg = " ".join(t.text for t in rest)
            raise PreprocessorError(f"#error {msg}", loc, iso="6.10.5")
        elif name == "pragma":
            return
        elif name == "line":
            return
        else:
            raise PreprocessorError(f"unknown directive #{name}", loc,
                                    iso="6.10")

    def _define(self, rest: List[Token], loc: Loc) -> None:
        if not rest or not rest[0].is_ident():
            raise PreprocessorError("#define expects an identifier", loc,
                                    iso="6.10.3")
        name = rest[0].text
        after = rest[1:]
        if after and after[0].is_punct("(") and not after[0].preceded_by_space:
            params, variadic, body_start = self._parse_params(after, loc)
            macro = Macro(name, after[body_start:], is_function=True,
                          params=params, variadic=variadic, loc=loc)
        else:
            macro = Macro(name, after, loc=loc)
        old = self.macros.get(name)
        if old is not None and not old.same_definition(macro):
            raise PreprocessorError(
                f"macro '{name}' redefined incompatibly", loc,
                iso="6.10.3p2")
        self.macros[name] = macro

    @staticmethod
    def _parse_params(after: List[Token],
                      loc: Loc) -> Tuple[List[str], bool, int]:
        params: List[str] = []
        variadic = False
        i = 1  # after '('
        if after[i].is_punct(")"):
            return params, variadic, i + 1
        while True:
            tok = after[i]
            if tok.is_punct("..."):
                variadic = True
                i += 1
            elif tok.is_ident():
                params.append(tok.text)
                i += 1
            else:
                raise PreprocessorError("bad macro parameter list", loc,
                                        iso="6.10.3")
            if after[i].is_punct(")"):
                return params, variadic, i + 1
            if not after[i].is_punct(","):
                raise PreprocessorError("bad macro parameter list", loc,
                                        iso="6.10.3")
            i += 1

    def _include(self, rest: List[Token], loc: Loc) -> None:
        if self._include_depth >= _MAX_INCLUDE_DEPTH:
            raise PreprocessorError("#include nested too deeply", loc,
                                    iso="6.10.2")
        rest = self._expand_sequence(rest)
        header: Optional[str] = None
        if rest and rest[0].kind is TokenKind.STRING:
            header = rest[0].text.strip('"')
        elif rest and rest[0].is_punct("<"):
            parts = []
            for tok in rest[1:]:
                if tok.is_punct(">"):
                    break
                parts.append(tok.text)
            header = "".join(parts)
        if header is None:
            raise PreprocessorError("malformed #include", loc, iso="6.10.2")
        if header not in self.headers:
            raise PreprocessorError(f"header not found: <{header}>", loc,
                                    iso="6.10.2")
        self._include_depth += 1
        try:
            self._process_tokens(
                Lexer(SourceFile(f"<{header}>", self.headers[header]))
                .tokens(), header)
        finally:
            self._include_depth -= 1

    # -- conditional expressions ----------------------------------------------

    def _eval_condition(self, toks: List[Token], loc: Loc) -> int:
        # 'defined X' / 'defined(X)' are handled before macro expansion.
        pre: List[Token] = []
        i = 0
        while i < len(toks):
            tok = toks[i]
            if tok.is_ident("defined"):
                j = i + 1
                if j < len(toks) and toks[j].is_punct("("):
                    if j + 2 >= len(toks) or not toks[j + 2].is_punct(")"):
                        raise PreprocessorError("malformed defined()", loc,
                                                iso="6.10.1")
                    target = toks[j + 1]
                    i = j + 3
                else:
                    if j >= len(toks):
                        raise PreprocessorError("malformed defined", loc,
                                                iso="6.10.1")
                    target = toks[j]
                    i = j + 2
                val = "1" if target.text in self.macros else "0"
                pre.append(Token(TokenKind.NUMBER, val, tok.loc))
                continue
            pre.append(tok)
            i += 1
        expanded = self._expand_sequence(pre)
        # Remaining identifiers evaluate to 0 (§6.10.1p4).
        final: List[Token] = []
        for tok in expanded:
            if tok.kind is TokenKind.IDENT:
                final.append(Token(TokenKind.NUMBER, "0", tok.loc))
            else:
                final.append(tok)
        return _CondParser(final, loc).parse()

    # -- macro expansion --------------------------------------------------------

    def _expand_into_output(self, toks: List[Token]) -> None:
        self.output.extend(self._expand_sequence(toks))

    def _expand_sequence(self, toks: List[Token]) -> List[Token]:
        out: List[Token] = []
        stream = list(toks)
        i = 0
        while i < len(stream):
            tok = stream[i]
            if tok.kind is not TokenKind.IDENT or tok.text in tok.no_expand:
                out.append(tok)
                i += 1
                continue
            macro = self.macros.get(tok.text)
            if macro is None:
                out.append(tok)
                i += 1
                continue
            if macro.is_function:
                j = i + 1
                if j >= len(stream) or not stream[j].is_punct("("):
                    out.append(tok)  # name not followed by '(' — not a call
                    i += 1
                    continue
                args, next_i = self._collect_args(stream, j, macro, tok.loc)
                replaced = self._substitute(macro, args, tok)
                stream[i:next_i] = replaced
            else:
                replaced = self._paint(self._paste(macro.body), tok)
                stream[i:i + 1] = replaced
        return out

    @staticmethod
    def _collect_args(stream: List[Token], open_i: int, macro: Macro,
                      loc: Loc) -> Tuple[List[List[Token]], int]:
        args: List[List[Token]] = [[]]
        depth = 0
        i = open_i
        while i < len(stream):
            tok = stream[i]
            if tok.is_punct("("):
                depth += 1
                if depth > 1:
                    args[-1].append(tok)
            elif tok.is_punct(")"):
                depth -= 1
                if depth == 0:
                    i += 1
                    break
                args[-1].append(tok)
            elif tok.is_punct(",") and depth == 1 and \
                    len(args) <= max(len(macro.params) - 1,
                                     0 if not macro.variadic else 10**9):
                if len(args) < len(macro.params) or macro.variadic:
                    args.append([])
                else:
                    args[-1].append(tok)
            else:
                args[-1].append(tok)
            i += 1
        else:
            raise PreprocessorError(
                f"unterminated call to macro '{macro.name}'", loc,
                iso="6.10.3")
        if macro.params or macro.variadic:
            want = len(macro.params)
            if len(args) < want:
                args.extend([[] for _ in range(want - len(args))])
        elif args == [[]]:
            args = []
        return args, i

    def _substitute(self, macro: Macro, args: List[List[Token]],
                    call_tok: Token) -> List[Token]:
        expanded_args = {p: self._expand_sequence(args[k])
                         for k, p in enumerate(macro.params)}
        raw_args = {p: args[k] for k, p in enumerate(macro.params)}
        if macro.variadic:
            rest = args[len(macro.params):]
            va: List[Token] = []
            for k, a in enumerate(rest):
                if k:
                    va.append(Token(TokenKind.PUNCT, ",", call_tok.loc))
                va.extend(a)
            raw_args["__VA_ARGS__"] = va
            expanded_args["__VA_ARGS__"] = self._expand_sequence(list(va))
        body: List[Token] = []
        i = 0
        toks = macro.body
        while i < len(toks):
            tok = toks[i]
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if tok.is_punct("#") and nxt is not None and \
                    nxt.text in raw_args:
                body.append(_stringise(raw_args[nxt.text], tok.loc))
                i += 2
                continue
            pasting = nxt is not None and nxt.is_punct("##")
            if tok.kind is TokenKind.IDENT and tok.text in raw_args:
                use = raw_args[tok.text] if pasting or _prev_is_paste(body) \
                    else expanded_args[tok.text]
                body.extend(Token(t.kind, t.text, t.loc, t.value,
                                  no_expand=t.no_expand) for t in use)
            else:
                body.append(tok)
            i += 1
        return self._paint(self._paste(body), call_tok)

    @staticmethod
    def _paste(body: List[Token]) -> List[Token]:
        """Resolve ``##`` operators (§6.10.3.3)."""
        out: List[Token] = []
        i = 0
        while i < len(body):
            tok = body[i]
            if tok.is_punct("##") and out and i + 1 < len(body):
                left = out.pop()
                right = body[i + 1]
                merged_text = left.text + right.text
                relexed = [t for t in Lexer(
                    SourceFile(str(left.loc), merged_text)).tokens()
                    if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
                if len(relexed) != 1:
                    raise PreprocessorError(
                        f"pasting '{left.text}' and '{right.text}' does not "
                        "give a valid token", left.loc, iso="6.10.3.3p3")
                merged = relexed[0]
                merged.loc = left.loc
                out.append(merged)
                i += 2
                continue
            out.append(tok)
            i += 1
        return out

    @staticmethod
    def _paint(body: List[Token], call_tok: Token) -> List[Token]:
        painted = call_tok.no_expand | {call_tok.text}
        return [Token(t.kind, t.text, call_tok.loc, t.value,
                      no_expand=t.no_expand | painted) for t in body]


def _prev_is_paste(body: List[Token]) -> bool:
    return bool(body) and body[-1].is_punct("##")


def _stringise(toks: List[Token], loc: Loc) -> Token:
    parts: List[str] = []
    for k, tok in enumerate(toks):
        if k and tok.preceded_by_space:
            parts.append(" ")
        text = tok.text
        if tok.kind in (TokenKind.STRING, TokenKind.CHAR_CONST):
            text = text.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(text)
    content = "".join(parts)
    return Token(TokenKind.STRING, f'"{content}"', loc,
                 value=content.encode())


def _split_lines(toks: List[Token]) -> List[List[Token]]:
    lines: List[List[Token]] = [[]]
    for tok in toks:
        if tok.kind is TokenKind.NEWLINE:
            lines.append([])
        elif tok.kind is TokenKind.EOF:
            break
        else:
            lines[-1].append(tok)
    return lines


class _CondParser:
    """Recursive-descent evaluator for #if constant expressions
    (§6.10.1p4: arithmetic in intmax_t/uintmax_t; we use Python ints with
    64-bit wrap for the unsigned-influenced operators)."""

    def __init__(self, toks: List[Token], loc: Loc):
        self.toks = toks
        self.i = 0
        self.loc = loc

    def parse(self) -> int:
        val = self._ternary()
        if self.i < len(self.toks):
            raise PreprocessorError("trailing tokens in #if expression",
                                    self.loc, iso="6.10.1")
        return val

    def _peek(self) -> Optional[Token]:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def _eat(self, text: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.is_punct(text):
            self.i += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        if not self._eat(text):
            raise PreprocessorError(f"expected '{text}' in #if expression",
                                    self.loc, iso="6.10.1")

    def _ternary(self) -> int:
        cond = self._binary(0)
        if self._eat("?"):
            then = self._ternary()
            self._expect(":")
            els = self._ternary()
            return then if cond else els
        return cond

    _LEVELS = [["||"], ["&&"], ["|"], ["^"], ["&"], ["==", "!="],
               ["<", ">", "<=", ">="], ["<<", ">>"], ["+", "-"],
               ["*", "/", "%"]]

    def _binary(self, level: int) -> int:
        if level >= len(self._LEVELS):
            return self._unary()
        lhs = self._binary(level + 1)
        while True:
            tok = self._peek()
            if tok is None or tok.kind is not TokenKind.PUNCT or \
                    tok.text not in self._LEVELS[level]:
                return lhs
            op = tok.text
            self.i += 1
            if op == "||":
                rhs = self._binary(level + 1)
                lhs = 1 if (lhs or rhs) else 0
                continue
            if op == "&&":
                rhs = self._binary(level + 1)
                lhs = 1 if (lhs and rhs) else 0
                continue
            rhs = self._binary(level + 1)
            lhs = self._apply(op, lhs, rhs)

    def _apply(self, op: str, a: int, b: int) -> int:
        if op in ("/", "%") and b == 0:
            raise PreprocessorError("division by zero in #if", self.loc,
                                    iso="6.10.1")
        table = {
            "|": a | b, "^": a ^ b, "&": a & b,
            "==": int(a == b), "!=": int(a != b),
            "<": int(a < b), ">": int(a > b),
            "<=": int(a <= b), ">=": int(a >= b),
            "<<": a << (b & 63), ">>": a >> (b & 63),
            "+": a + b, "-": a - b, "*": a * b,
            "/": int(a / b) if (a < 0) != (b < 0) and a % b else a // b,
            "%": a - b * (int(a / b) if (a < 0) != (b < 0) and a % b
                          else a // b),
        }
        return table[op]

    def _unary(self) -> int:
        tok = self._peek()
        if tok is None:
            raise PreprocessorError("truncated #if expression", self.loc,
                                    iso="6.10.1")
        if tok.is_punct("!"):
            self.i += 1
            return int(not self._unary())
        if tok.is_punct("-"):
            self.i += 1
            return -self._unary()
        if tok.is_punct("+"):
            self.i += 1
            return self._unary()
        if tok.is_punct("~"):
            self.i += 1
            return ~self._unary()
        if tok.is_punct("("):
            self.i += 1
            val = self._ternary()
            self._expect(")")
            return val
        if tok.kind is TokenKind.NUMBER:
            self.i += 1
            return _parse_pp_int(tok)
        if tok.kind is TokenKind.CHAR_CONST:
            self.i += 1
            return int(tok.value)  # type: ignore[arg-type]
        raise PreprocessorError(
            f"unexpected token '{tok.text}' in #if expression", tok.loc,
            iso="6.10.1")


def _parse_pp_int(tok: Token) -> int:
    text = tok.text.rstrip("uUlL")
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.startswith("0") and len(text) > 1:
            return int(text, 8)
        return int(text, 10)
    except ValueError:
        raise PreprocessorError(f"bad integer constant '{tok.text}' in #if",
                                tok.loc, iso="6.10.1") from None


def preprocess(text: str, name: str = "<string>",
               extra_headers: Optional[Dict[str, str]] = None,
               predefined: Optional[Dict[str, str]] = None) -> List[Token]:
    """Preprocess C source text; returns the C token stream (incl. EOF)."""
    pp = Preprocessor(extra_headers=extra_headers, predefined=predefined)
    # __LINE__ etc. are resolved lazily per-token; we approximate __LINE__
    # by substituting at expansion sites via a dynamic macro below.
    out: List[Token] = []
    for tok in pp.preprocess(SourceFile(name, text)):
        if tok.is_ident("__LINE__"):
            out.append(Token(TokenKind.NUMBER, str(tok.loc.line), tok.loc))
        elif tok.is_ident("__FILE__"):
            out.append(Token(TokenKind.STRING, f'"{tok.loc.file}"', tok.loc,
                             value=tok.loc.file.encode()))
        else:
            out.append(tok)
    return out
