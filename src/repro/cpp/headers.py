"""Built-in standard-library headers.

Cerberus-py has no host filesystem dependency: ``#include <...>`` resolves
against this table. The headers declare exactly the fragment of the
standard library that the interpreter implements natively (paper: "It
supports only small parts of the standard libraries", §1), plus the usual
typedefs and limit macros for the chosen implementation environment
(LP64 by default; the macros use ``__cerberus_*`` built-in constants that
the parser resolves via the implementation environment).
"""

from __future__ import annotations

from typing import Dict

_STDDEF = """
#ifndef __CERBERUS_STDDEF_H
#define __CERBERUS_STDDEF_H
typedef unsigned long size_t;
typedef long ptrdiff_t;
typedef int wchar_t;
#define NULL ((void*)0)
#define offsetof(type, member) __cerberus_offsetof(type, member)
#endif
"""

_STDBOOL = """
#ifndef __CERBERUS_STDBOOL_H
#define __CERBERUS_STDBOOL_H
#define bool _Bool
#define true 1
#define false 0
#define __bool_true_false_are_defined 1
#endif
"""

_LIMITS = """
#ifndef __CERBERUS_LIMITS_H
#define __CERBERUS_LIMITS_H
#define CHAR_BIT 8
#define SCHAR_MIN (-128)
#define SCHAR_MAX 127
#define UCHAR_MAX 255
#define CHAR_MIN SCHAR_MIN
#define CHAR_MAX SCHAR_MAX
#define SHRT_MIN (-32768)
#define SHRT_MAX 32767
#define USHRT_MAX 65535
#define INT_MIN (-INT_MAX - 1)
#define INT_MAX 2147483647
#define UINT_MAX 4294967295u
#define LONG_MIN (-LONG_MAX - 1L)
#define LONG_MAX __cerberus_long_max
#define ULONG_MAX __cerberus_ulong_max
#define LLONG_MIN (-LLONG_MAX - 1LL)
#define LLONG_MAX 9223372036854775807LL
#define ULLONG_MAX 18446744073709551615ULL
#endif
"""

_STDINT = """
#ifndef __CERBERUS_STDINT_H
#define __CERBERUS_STDINT_H
#include <limits.h>
typedef signed char int8_t;
typedef unsigned char uint8_t;
typedef short int16_t;
typedef unsigned short uint16_t;
typedef int int32_t;
typedef unsigned int uint32_t;
typedef long long int64_t;
typedef unsigned long long uint64_t;
typedef unsigned long uintptr_t;
typedef long intptr_t;
typedef long long intmax_t;
typedef unsigned long long uintmax_t;
#define INT8_MIN (-128)
#define INT8_MAX 127
#define UINT8_MAX 255
#define INT16_MIN (-32768)
#define INT16_MAX 32767
#define UINT16_MAX 65535
#define INT32_MIN (-2147483647 - 1)
#define INT32_MAX 2147483647
#define UINT32_MAX 4294967295u
#define INT64_MIN (-INT64_MAX - 1)
#define INT64_MAX 9223372036854775807LL
#define UINT64_MAX 18446744073709551615ULL
#define INTPTR_MIN (-__cerberus_long_max - 1)
#define INTPTR_MAX __cerberus_long_max
#define UINTPTR_MAX __cerberus_ulong_max
#define SIZE_MAX __cerberus_ulong_max
#endif
"""

_STDIO = """
#ifndef __CERBERUS_STDIO_H
#define __CERBERUS_STDIO_H
#include <stddef.h>
typedef struct __cerberus_file FILE;
int printf(const char *format, ...);
int putchar(int c);
int puts(const char *s);
int snprintf(char *s, size_t n, const char *format, ...);
int sprintf(char *s, const char *format, ...);
#define EOF (-1)
#endif
"""

_STDLIB = """
#ifndef __CERBERUS_STDLIB_H
#define __CERBERUS_STDLIB_H
#include <stddef.h>
void *malloc(size_t size);
void *calloc(size_t nmemb, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);
void abort(void);
void exit(int status);
int abs(int j);
long labs(long j);
int atoi(const char *nptr);
long atol(const char *nptr);
long strtol(const char *nptr, char **endptr, int base);
int rand(void);
void srand(unsigned int seed);
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#define RAND_MAX 2147483647
#endif
"""

_STRING = """
#ifndef __CERBERUS_STRING_H
#define __CERBERUS_STRING_H
#include <stddef.h>
void *memcpy(void *dest, const void *src, size_t n);
void *memmove(void *dest, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
int memcmp(const void *s1, const void *s2, size_t n);
size_t strlen(const char *s);
int strcmp(const char *s1, const char *s2);
int strncmp(const char *s1, const char *s2, size_t n);
char *strcpy(char *dest, const char *src);
char *strncpy(char *dest, const char *src, size_t n);
char *strcat(char *dest, const char *src);
char *strchr(const char *s, int c);
#endif
"""

_ASSERT = """
#ifndef __CERBERUS_ASSERT_H
#define __CERBERUS_ASSERT_H
void __cerberus_assert_fail(const char *expr, const char *file, int line);
#define assert(e) ((e) ? (void)0 : \
    __cerberus_assert_fail(#e, "<assert>", __LINE__))
#define static_assert _Static_assert
#endif
"""

_STDARG = """
#ifndef __CERBERUS_STDARG_H
#define __CERBERUS_STDARG_H
typedef struct __cerberus_va_list { int __dummy; } va_list;
#endif
"""

_STDALIGN = """
#ifndef __CERBERUS_STDALIGN_H
#define __CERBERUS_STDALIGN_H
#define alignof _Alignof
#define __alignof_is_defined 1
#endif
"""

_THREADS = """
#ifndef __CERBERUS_THREADS_H
#define __CERBERUS_THREADS_H
typedef int thrd_t;
typedef int (*thrd_start_t)(void *);
int thrd_create(thrd_t *thr, thrd_start_t func, void *arg);
int thrd_join(thrd_t thr, int *res);
#define thrd_success 0
#define thrd_error 2
#endif
"""

_STDATOMIC = """
#ifndef __CERBERUS_STDATOMIC_H
#define __CERBERUS_STDATOMIC_H
typedef enum {
  memory_order_relaxed, memory_order_consume, memory_order_acquire,
  memory_order_release, memory_order_acq_rel, memory_order_seq_cst
} memory_order;
#endif
"""

BUILTIN_HEADERS: Dict[str, str] = {
    "stddef.h": _STDDEF,
    "stdbool.h": _STDBOOL,
    "limits.h": _LIMITS,
    "stdint.h": _STDINT,
    "stdio.h": _STDIO,
    "stdlib.h": _STDLIB,
    "string.h": _STRING,
    "assert.h": _ASSERT,
    "stdarg.h": _STDARG,
    "stdalign.h": _STDALIGN,
    "threads.h": _THREADS,
    "stdatomic.h": _STDATOMIC,
}
