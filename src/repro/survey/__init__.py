"""The paper's survey data (both surveys' published numbers) and the
report generators that regenerate its tables."""

from .data import (
    SurveyOption, SurveyQuestion, SURVEY_15, EXPERTISE, RESPONSES_TOTAL,
    SURVEY_2013_QUESTION_COUNT, SURVEY_2015_QUESTION_COUNT,
)
from .report import (
    expertise_table, survey_question_table, design_space_table,
    clarity_table,
)

__all__ = [
    "SurveyOption", "SurveyQuestion", "SURVEY_15", "EXPERTISE",
    "RESPONSES_TOTAL", "SURVEY_2013_QUESTION_COUNT",
    "SURVEY_2015_QUESTION_COUNT",
    "expertise_table", "survey_question_table", "design_space_table",
    "clarity_table",
]
