"""Report generators regenerating the paper's §2 tables."""

from __future__ import annotations

from typing import List

from ..testsuite.questions import (
    CATEGORIES, QUESTIONS, category_counts, clarity_split,
)
from .data import EXPERTISE, RESPONSES_TOTAL, SURVEY_15, SurveyQuestion


def expertise_table() -> str:
    """The respondent-expertise table of §2."""
    lines = [f"2015 survey: {RESPONSES_TOTAL} responses"]
    for label, count in EXPERTISE:
        lines.append(f"{label:45s} {count:4d}")
    return "\n".join(lines)


def survey_question_table(ref: str) -> str:
    """One survey question's response table ([n/15])."""
    q = SURVEY_15[ref]
    lines = [f"{q.ref} ({q.question_id}) — {q.topic}", q.prompt]
    for o in q.options:
        lines.append(f"  {o.label:60s} {o.count:4d} ({o.percent}%)")
    if q.extant_prompt:
        lines.append(q.extant_prompt)
        for o in q.extant_options:
            lines.append(f"  {o.label:60s} {o.count:4d} "
                         f"({o.percent}%)")
    return "\n".join(lines)


def design_space_table() -> str:
    """The 22-category question table of §2 (85 questions; the printed
    counts sum to 86 due to one cross-listing)."""
    counts = category_counts()
    lines = []
    for cat in CATEGORIES:
        lines.append(f"{cat:58s} {counts[cat]:3d}")
    lines.append(f"{'(unique questions)':58s} {len(QUESTIONS):3d}")
    return "\n".join(lines)


def clarity_table() -> str:
    """The ISO-unclear / de-facto-unclear / divergence split of §2."""
    iso, df, div = clarity_split()
    return "\n".join([
        f"for {iso} the ISO standard is unclear",
        f"for {df} the de facto standards are unclear",
        f"for {div} there are significant differences between the "
        f"ISO and the de facto standards",
    ])


def all_survey_refs() -> List[str]:
    return sorted(SURVEY_15)
