"""Published data of the paper's two surveys (§2).

The 2013 survey had 42 questions and was administered in person to a
small number of experts; the 2015 survey had 15 questions and received
323 responses ("including around 100 printed pages of textual
comments"). We embed every number the paper prints: the respondent
expertise table and the per-question response counts for [1/15],
[2/15], [5/15], [7/15], [9/15] and [11/15].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

RESPONSES_TOTAL = 323
SURVEY_2013_QUESTION_COUNT = 42
SURVEY_2015_QUESTION_COUNT = 15
TEXTUAL_COMMENT_PAGES = 100

# §2: "Most respondents reported expertise in C systems programming..."
EXPERTISE: List[Tuple[str, int]] = [
    ("C applications programming", 255),
    ("C systems programming", 230),
    ("Linux developer", 160),
    ("Other OS developer", 111),
    ("C embedded systems programming", 135),
    ("C standard", 70),
    ("C or C++ standards committee member", 8),
    ("Compiler internals", 64),
    ("GCC developer", 15),
    ("Clang developer", 26),
    ("Other C compiler developer", 22),
    ("Program analysis tools", 44),
    ("Formal semantics", 18),
    ("no response", 6),
    ("other", 18),
]


@dataclass(frozen=True)
class SurveyOption:
    label: str
    count: int
    percent: int


@dataclass(frozen=True)
class SurveyQuestion:
    ref: str                     # "[7/15]"
    question_id: str             # design-space question, e.g. "Q25"
    topic: str
    prompt: str
    options: Tuple[SurveyOption, ...]
    # Second part where the survey asked about extant code.
    extant_prompt: Optional[str] = None
    extant_options: Tuple[SurveyOption, ...] = ()

    def total(self) -> int:
        return sum(o.count for o in self.options)


def _opts(*pairs) -> Tuple[SurveyOption, ...]:
    return tuple(SurveyOption(label, count, pct)
                 for label, count, pct in pairs)


SURVEY_15: Dict[str, SurveyQuestion] = {}


def _q(ref, qid, topic, prompt, options, extant_prompt=None,
       extant_options=()):
    SURVEY_15[ref] = SurveyQuestion(ref, qid, topic, prompt, options,
                                    extant_prompt, extant_options)


_q("[1/15]", "Q61", "structure and union padding",
   "After an explicit write of a padding byte, does that byte hold the "
   "written value after a write to adjacent members?",
   _opts(("mixed (see §2.5 options 1-4)", 0, 0)),
   )

_q("[2/15]", "Q48", "uninitialised values",
   "Reading an uninitialised variable or struct member is:",
   _opts(
       ("undefined behaviour (compiler may arbitrarily miscompile)",
        139, 43),
       ("going to make the result of any expression involving it "
        "unpredictable", 42, 13),
       ("going to give an arbitrary and unstable value", 21, 6),
       ("going to give an arbitrary but stable value", 112, 35),
   ))

_q("[5/15]", "Q14", "pointer representation copying",
   "Can user code copy pointers bytewise (with possibly elaborate "
   "computation on the way) and use the result?",
   _opts(
       ("yes", 216, 68),
       ("only sometimes", 50, 15),
       ("no", 18, 5),
       ("don't know", 24, 7),
   ))

_q("[7/15]", "Q25", "pointer relational comparison",
   "Can one do relational comparison (<, >, <=, >=) of pointers to "
   "separately allocated objects? Will that work in normal C "
   "compilers?",
   _opts(
       ("yes", 191, 60),
       ("only sometimes", 52, 16),
       ("no", 31, 9),
       ("don't know", 38, 12),
       ("I don't know what the question is asking", 3, 1),
   ),
   extant_prompt="Do you know of real code that relies on it?",
   extant_options=_opts(
       ("yes", 101, 33),
       ("yes, but it shouldn't", 37, 12),
       ("no, but there might well be", 89, 29),
       ("no, that would be crazy", 50, 16),
       ("don't know", 27, 8),
   ))

_q("[9/15]", "Q31", "out-of-bounds pointers",
   "Can one transiently construct out-of-bounds pointer values (bringing "
   "them back in bounds before use)?",
   _opts(
       ("yes", 230, 73),
       ("only sometimes", 43, 13),
       ("no", 13, 4),
       ("don't know", 27, 8),
   ))

_q("[11/15]", "Q75", "effective types and character arrays",
   "Can an unsigned character array with static or automatic storage "
   "duration be used (like a malloc'd region) to hold values of other "
   "types?",
   _opts(("this will work", 243, 76)),
   extant_prompt="Do you know of real code that relies on it?",
   extant_options=_opts(("yes", 201, 65)))
