"""Elaboration of Typed Ail into Core (paper §5.1, §5.3, Fig. 3)."""

from .elaborate import Elaborator, elaborate

__all__ = ["Elaborator", "elaborate"]
