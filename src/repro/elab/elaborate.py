"""The elaboration: a compositional translation from Typed Ail into Core
(paper §5.1-5.8).

Every C expression elaborates to an *effectful* Core expression whose
value is a loaded value (``Specified``/``Unspecified``); every C lvalue
elaborates to an expression computing a pointer value. The evaluation
order constraints of §6.5 are expressed with ``unseq`` / ``let weak`` /
``let strong`` / ``let atomic`` exactly as in the paper's Fig. 3 and
§5.6; undefined behaviour of primitive operations becomes explicit
``undef(...)`` tests in the generated Core (§5.4); unspecified values
are treated daemonically and propagated through (unsigned) arithmetic.

Control flow uses ``save``/``run`` with guard parameters (DESIGN.md
deviation): loops re-enter via a backward ``run``; ``break``/
``continue``/``return``/``goto`` escape by re-entering an enclosing
``save`` with a guard that short-circuits the body. C block lifetimes
map to ``EScope`` (create-at-block-entry / kill-at-exit, §5.7-5.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ail import ast as A
from ..core import ast as K
from ..core.ast import (
    fresh_name, PatCtor, PatSym, PatWild, Pattern,
)
from ..ctypes import convert
from ..ctypes.implementation import Implementation
from ..ctypes.implementation import FieldLayout
from ..ctypes.types import (
    Array, CType, Floating, Function, Integer, IntKind, Pointer, QualType,
    StructRef, UnionRef, VarArray, Void, is_character, is_integer,
)
from ..memory.base import VLA_CAP_BYTES
from ..errors import ElabError, InternalError, UnsupportedError
from ..memory.values import (
    FloatingValue, IntegerValue, MemValue, MVArray, MVInteger, NULL_POINTER,
    zero_value,
)
from ..source import Loc
from .. import ub as UB
from ..dynamics.values import (
    FALSE, TRUE, UNIT, VBool, VCtype, VFloating, VInteger, VMemStruct,
    VPointer, VSpecified, VTuple, VUnit, VUnspecified,
)

_INT = Integer(IntKind.INT)
_CHAR = Integer(IntKind.CHAR)
_SIZE_T = Integer(IntKind.ULONG)
_PTRDIFF_T = Integer(IntKind.LONG)


def _pv(value) -> K.PVal:
    return K.PVal(value)


def _specified_int(n: int, prov=None) -> K.PVal:
    return _pv(VSpecified(VInteger(IntegerValue(n, prov))))


def _ctype(ty: CType) -> K.PVal:
    return _pv(VCtype(ty))


def _pure(pe: K.Pexpr, loc: Loc = Loc.unknown()) -> K.Expr:
    return K.EPure(pe, loc=loc)


def _sseq(pat: Pattern, first: K.Expr, second: K.Expr,
          loc: Loc = Loc.unknown()) -> K.Expr:
    return K.ESseq(pat, first, second, loc=loc)


def _wseq(pat: Pattern, first: K.Expr, second: K.Expr,
          loc: Loc = Loc.unknown()) -> K.Expr:
    return K.EWseq(pat, first, second, loc=loc)


def _seq_all(exprs: List[K.Expr], last: K.Expr) -> K.Expr:
    out = last
    for e in reversed(exprs):
        out = _sseq(PatWild(), e, out)
    return out


@dataclass
class _FnCtx:
    """Per-function elaboration context."""

    ret_ty: QualType
    ret_label: str
    break_label: Optional[str] = None
    continue_label: Optional[str] = None
    goto_label: Optional[str] = None
    label_indices: Dict[str, int] = field(default_factory=dict)
    is_main: bool = False


class Elaborator:
    def __init__(self, ail: A.Program, impl: Implementation):
        self.ail = ail
        self.impl = impl
        self.tags = ail.tags
        self.core = K.Program(ail.tags, impl)
        self._fn: Optional[_FnCtx] = None
        # Function symbols -> Core proc names.
        self.fn_names: Dict[A.Symbol, str] = {
            sym: sym.name for sym in ail.functions}

    # ================== program structure ==================================

    def run(self) -> K.Program:
        for obj in self.ail.objects:
            self.core.globs.append(self._glob(obj))
        for sym, fdef in self.ail.functions.items():
            if fdef.body is None:
                continue
            self.core.procs[self.fn_names[sym]] = self._proc(fdef)
        if self.ail.main is not None:
            self.core.main = self.fn_names[self.ail.main]
        return self.core

    def _glob(self, obj: A.ObjectDef) -> K.GlobDef:
        name = str(obj.sym)
        init: Optional[K.Expr] = None
        if obj.init is not None:
            stores = self.init_stores(K.PSym(name), obj.qty, obj.init,
                                      zero_first=True)
            init = _seq_all(stores, _pure(_pv(UNIT)))
        readonly = obj.qty.quals.const or isinstance(obj.init,
                                                     A.InitString)
        return K.GlobDef(name, obj.qty, init, readonly=readonly,
                         loc=obj.loc)

    def _proc(self, fdef: A.FunctionDef) -> K.ProcDef:
        fty = fdef.qty.ty
        assert isinstance(fty, Function)
        if fdef.variadic:
            raise UnsupportedError(
                f"user-defined variadic function '{fdef.sym.name}' "
                "(paper §1: only printf-style library variadics)",
                fdef.loc)
        is_main = fdef.sym.name == "main"
        ret_label = fresh_name("ret")
        self._fn = _FnCtx(ret_ty=fty.ret, ret_label=ret_label,
                          is_main=is_main)
        # Parameter objects: create & store the argument values (§5.6
        # point 4 happens at the call site for temporaries; the callee's
        # named parameters are fresh objects).
        param_args = [f"{psym}.arg" for psym in fdef.param_syms]
        creates = [K.ScopedCreate(str(psym), pqty.ty, psym.name,
                                  loc=fdef.loc)
                   for psym, pqty in zip(fdef.param_syms, fty.params)]
        stores = [self.act_store(pqty.ty, K.PSym(str(psym)),
                                 K.PSym(arg), fdef.loc)
                  for psym, pqty, arg in zip(fdef.param_syms, fty.params,
                                             param_args)]
        assert fdef.body is not None
        body_stmt = self._function_body(fdef)
        default_rv: K.Pexpr
        if isinstance(fty.ret.ty, Void):
            default_rv = _pv(VUnit())
        elif is_main:
            default_rv = _specified_int(0)  # §5.1.2.2.3: implicit 0
        else:
            default_rv = _pv(VUnspecified(fty.ret.ty))
        ret_save = K.ESave(
            ret_label,
            [("ret.done", _pv(FALSE)), ("ret.value", default_rv)],
            K.EIf(K.PSym("ret.done"),
                  _pure(K.PSym("ret.value")),
                  _sseq(PatWild(), body_stmt,
                        K.ERun(ret_label,
                               [_pv(TRUE), default_rv]))),
            loc=fdef.loc)
        body = K.EScope(creates, _seq_all(stores, ret_save))
        proc = K.ProcDef(self.fn_names[fdef.sym], param_args, body,
                         ret_ty=fty.ret, param_tys=list(fty.params),
                         variadic=False, loc=fdef.loc)
        self._fn = None
        return proc

    def _function_body(self, fdef: A.FunctionDef) -> K.Expr:
        """Elaborate the function body; if it contains labels, build the
        goto dispatcher (DESIGN.md: labels must sit at the top level of
        the function body block)."""
        body = fdef.body
        assert body is not None
        has_labels = _contains_label(body)
        if not has_labels:
            return self.stmt(body)
        segments: List[Tuple[Optional[A.Symbol], List[A.Stmt]]] = [(None,
                                                                    [])]
        for item in body.items:
            if isinstance(item, A.SLabel):
                segments.append((item.sym, [item.body]))
            else:
                if _contains_label(item):
                    raise UnsupportedError(
                        "goto label nested inside a sub-statement (only "
                        "function-top-level labels are supported; see "
                        "DESIGN.md)", item.loc)
                segments[-1][1].append(item)
        fn = self._fn
        assert fn is not None
        fn.goto_label = fresh_name("goto")
        for i, (sym, _) in enumerate(segments):
            if sym is not None:
                fn.label_indices[str(sym)] = i
        decls: List[K.ScopedCreate] = []
        seg_exprs: List[K.Expr] = []
        for i, (_, stmts) in enumerate(segments):
            seg_body = self._stmt_seq(stmts, decls)
            guard = K.PBinop("<=", K.PSym("goto.target"),
                             _pv(VInteger(IntegerValue(i))))
            seg_exprs.append(K.EIf(guard, seg_body, K.ESkip()))
        dispatch = K.ESave(
            fn.goto_label,
            [("goto.target", _pv(VInteger(IntegerValue(0))))],
            _seq_all(seg_exprs[:-1], seg_exprs[-1]) if seg_exprs
            else K.ESkip(),
            loc=body.loc)
        return K.EScope(decls, dispatch)

    # ================== statements ==========================================

    def stmt(self, s: A.Stmt) -> K.Expr:
        if isinstance(s, A.SBlock):
            decls: List[K.ScopedCreate] = []
            body = self._stmt_seq(list(s.items), decls)
            if decls:
                return K.EScope(decls, body)
            return body
        if isinstance(s, A.SDecl):
            raise InternalError("SDecl outside block", s.loc)
        if isinstance(s, A.SExpr):
            if s.expr is None:
                return K.ESkip(loc=s.loc)
            return _sseq(PatWild(), self.rv(s.expr), K.ESkip(),
                         loc=s.loc)
        if isinstance(s, A.SIf):
            return self._if(s)
        if isinstance(s, A.SWhile):
            return self._while(s)
        if isinstance(s, A.SSwitch):
            return self._switch(s)
        if isinstance(s, A.SLabel):
            raise UnsupportedError(
                "goto label nested inside a sub-statement (only "
                "function-top-level labels are supported)", s.loc)
        if isinstance(s, A.SGoto):
            fn = self._fn
            assert fn is not None
            if fn.goto_label is None or str(s.sym) not in \
                    fn.label_indices:
                raise InternalError(f"goto to unknown label {s.sym}",
                                    s.loc)
            idx = fn.label_indices[str(s.sym)]
            return K.ERun(fn.goto_label,
                          [_pv(VInteger(IntegerValue(idx)))], loc=s.loc)
        if isinstance(s, A.SBreak):
            fn = self._fn
            assert fn is not None and fn.break_label is not None, \
                "break outside loop/switch"
            return K.ERun(fn.break_label, [_pv(TRUE)], loc=s.loc)
        if isinstance(s, A.SContinue):
            fn = self._fn
            assert fn is not None and fn.continue_label is not None, \
                "continue outside loop"
            return K.ERun(fn.continue_label, [_pv(TRUE)], loc=s.loc)
        if isinstance(s, A.SReturn):
            return self._return(s)
        if isinstance(s, A.SCaseMarker):
            return K.ESkip(loc=s.loc)
        if isinstance(s, A.SPar):
            return K.EPar([self.stmt(b) for b in s.branches], loc=s.loc)
        raise InternalError(f"unhandled statement {type(s).__name__}",
                            s.loc)

    def _stmt_seq(self, items: List, decls: List[K.ScopedCreate]) -> \
            K.Expr:
        """Elaborate a block-item sequence; object declarations
        contribute creates (at block entry, §6.2.4p5) and initialising
        stores (at declaration position).  A VLA declaration instead
        creates its object *at the declaration point* (§6.2.4p7) and
        scopes the rest of the sequence under the pointer binding."""
        exprs: List[K.Expr] = []
        for idx, item in enumerate(items):
            self._pending_compounds = decls
            if isinstance(item, A.SDecl):
                if isinstance(item.qty.ty, VarArray):
                    rest = self._stmt_seq(items[idx + 1:], decls)
                    exprs.append(self._vla_decl(item, rest))
                    break
                decls.append(K.ScopedCreate(str(item.sym), item.qty.ty,
                                            item.sym.name, loc=item.loc))
                if item.init is not None:
                    zero = not isinstance(item.init, A.InitScalar)
                    stores = self.init_stores(K.PSym(str(item.sym)),
                                              item.qty, item.init,
                                              zero_first=zero)
                    exprs.extend(stores)
            else:
                self._pending_compounds = decls
                exprs.append(self.stmt(item))
        if not exprs:
            return K.ESkip()
        return _seq_all(exprs[:-1], exprs[-1])

    def _vla_decl(self, item: A.SDecl, rest: K.Expr) -> K.Expr:
        """Elaborate ``T a[n];``: load the hidden size variable (stored
        just before by the desugarer's hidden declaration), test the
        §6.7.6.2p5 constraints as explicit ``undef``s in the generated
        Core (paper §5.4), create the runtime-sized object, and bind
        its pointer over the rest of the block."""
        vty = item.qty.ty
        assert isinstance(vty, VarArray)
        fn = self._fn
        if fn is not None and fn.goto_label is not None:
            raise UnsupportedError(
                "variable length array in a function with labels "
                "(goto may not jump into the scope of a VLA, "
                "§6.8.6.1p1; see ROADMAP.md 'Fragment gaps')", item.loc)
        esize = self.impl.sizeof(vty.of.ty, self.tags)
        max_elems = max(VLA_CAP_BYTES // esize, 1)
        nv = fresh_name("vla.n")
        n = nv + ".v"
        create = K.EVlaCreate(vty.of.ty, K.PSym(n), item.sym.name,
                              loc=item.loc)
        checked = K.EIf(
            K.PBinop("<", _pv(VInteger(IntegerValue(0))), K.PSym(n)),
            K.EIf(K.PBinop("<=", K.PSym(n),
                           _pv(VInteger(IntegerValue(max_elems)))),
                  _sseq(PatSym(str(item.sym)), create, rest,
                        loc=item.loc),
                  _pure(K.PUndef(UB.VLA_SIZE_TOO_LARGE, loc=item.loc))),
            _pure(K.PUndef(UB.VLA_SIZE_NOT_POSITIVE, loc=item.loc)))
        size_load = self.act_load(Integer(IntKind.LONG),
                                  K.PSym(str(vty.size_sym)), item.loc)
        return _sseq(PatSym(nv), size_load, K.ECase(K.PSym(nv), [
            (PatCtor("Unspecified", (PatWild(),)),
             _pure(K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=item.loc))),
            (PatCtor("Specified", (PatSym(n),)), checked),
        ], loc=item.loc), loc=item.loc)

    def _if(self, s: A.SIf) -> K.Expr:
        cond = self.rv(s.cond)
        then = self.stmt(s.then)
        els = self.stmt(s.els) if s.els is not None else K.ESkip()
        v = fresh_name("if.cond")
        return _sseq(
            PatSym(v), cond,
            K.ECase(K.PSym(v), [
                (PatCtor("Unspecified", (PatWild(),)),
                 _pure(K.PUndef(UB.UNSPECIFIED_VALUE_CONTROL_FLOW,
                                loc=s.loc))),
                (PatCtor("Specified", (PatSym(v + ".v"),)),
                 K.EIf(self._nonzero(K.PSym(v + ".v"), s.cond),
                       then, els)),
            ], loc=s.loc), loc=s.loc)

    def _nonzero(self, pe: K.Pexpr, e: A.Expr) -> K.Pexpr:
        """v != 0 over the scalar kinds."""
        assert e.ty is not None
        ty = e.ty.ty
        if isinstance(ty, Pointer):
            # Null test without consulting the memory state.
            return K.PCall("ptr_nonnull", [pe])
        if isinstance(ty, Floating):
            return K.PBinop("!=", pe, _pv(VFloating(FloatingValue(0.0))))
        return K.PBinop("!=", pe, _pv(VInteger(IntegerValue(0))))

    def _while(self, s: A.SWhile) -> K.Expr:
        fn = self._fn
        assert fn is not None
        saved = (fn.break_label, fn.continue_label)
        brk = fresh_name("brk")
        cont = fresh_name("cont")
        loop = fresh_name("loop")
        fn.break_label, fn.continue_label = brk, cont
        body = self.stmt(s.body)
        fn.break_label, fn.continue_label = saved

        cond_v = fresh_name("while.cond")
        body_wrap = K.ESave(cont, [("cont.skip", _pv(FALSE))],
                            K.EIf(K.PSym("cont.skip"), K.ESkip(), body),
                            loc=s.loc)
        step = _sseq(PatWild(), self.rv(s.step), K.ESkip()) \
            if s.step is not None else K.ESkip()
        iteration = _sseq(PatWild(), body_wrap,
                          _sseq(PatWild(), step,
                                K.ERun(loop, [], loc=s.loc)))
        test_then_iterate = _sseq(
            PatSym(cond_v), self.rv(s.cond),
            K.ECase(K.PSym(cond_v), [
                (PatCtor("Unspecified", (PatWild(),)),
                 _pure(K.PUndef(UB.UNSPECIFIED_VALUE_CONTROL_FLOW,
                                loc=s.loc))),
                (PatCtor("Specified", (PatSym(cond_v + ".v"),)),
                 K.EIf(self._nonzero(K.PSym(cond_v + ".v"), s.cond),
                       iteration, K.ESkip())),
            ]), loc=s.loc)
        if s.loc_hint == "do":
            loop_body = _sseq(PatWild(), body_wrap, _sseq(
                PatSym(cond_v), self.rv(s.cond),
                K.ECase(K.PSym(cond_v), [
                    (PatCtor("Unspecified", (PatWild(),)),
                     _pure(K.PUndef(UB.UNSPECIFIED_VALUE_CONTROL_FLOW,
                                    loc=s.loc))),
                    (PatCtor("Specified", (PatSym(cond_v + ".v"),)),
                     K.EIf(self._nonzero(K.PSym(cond_v + ".v"), s.cond),
                           K.ERun(loop, [], loc=s.loc), K.ESkip())),
                ])))
        else:
            loop_body = test_then_iterate
        loop_save = K.ESave(loop, [], loop_body, loc=s.loc)
        return K.ESave(brk, [("brk.done", _pv(FALSE))],
                       K.EIf(K.PSym("brk.done"), K.ESkip(), loop_save),
                       loc=s.loc)

    def _switch(self, s: A.SSwitch) -> K.Expr:
        """Elaborate switch with the precomputed case-label list (paper
        §5.1): compute the segment start index from the controlling
        value, then run the guarded segment chain."""
        fn = self._fn
        assert fn is not None
        segments: List[Tuple[Optional[A.Symbol], List[A.Stmt]]] = []
        decls: List[K.ScopedCreate] = []
        body = s.body
        items = body.items if isinstance(body, A.SBlock) else [body]
        segments.append((None, []))
        for item in items:
            flat = _flatten_case_block(item)
            for sub in flat:
                if isinstance(sub, A.SCaseMarker):
                    segments.append((sub.sym, []))
                else:
                    segments[-1][1].append(sub)
        marker_index = {str(sym): i for i, (sym, _) in
                        enumerate(segments) if sym is not None}
        saved_brk = fn.break_label
        brk = fresh_name("swbrk")
        fn.break_label = brk
        seg_exprs = []
        for i, (_, stmts) in enumerate(segments):
            for sub in stmts:
                if isinstance(sub, A.SDecl) and \
                        isinstance(sub.qty.ty, VarArray):
                    # A case label may not jump into the scope of a
                    # VLA (§6.8.4.2p2); a VLA inside a nested block
                    # wholly within one case is fine.
                    raise UnsupportedError(
                        "variable length array declared among switch "
                        "case labels (a case label may not jump into "
                        "a VLA's scope, §6.8.4.2p2; wrap it in a "
                        "braced block)", sub.loc)
            seg_body = self._stmt_seq(stmts, decls)
            guard = K.PBinop("<=", K.PSym("sw.target"),
                             _pv(VInteger(IntegerValue(i))))
            seg_exprs.append(K.EIf(guard, seg_body, K.ESkip()))
        fn.break_label = saved_brk
        # Match the controlling value against case constants, converted
        # to the promoted controlling type (§6.8.4.2p5).
        assert s.cond.ty is not None
        cty = s.cond.ty.ty
        assert isinstance(cty, Integer)
        prom = convert.integer_promotion(cty, self.impl)
        sentinel = len(segments)  # "skip everything"
        match_pe: K.Pexpr = _pv(VInteger(IntegerValue(
            marker_index[str(s.default)] if s.default is not None
            else sentinel)))
        for value, sym in reversed(s.cases):
            converted, _ = convert.convert_integer_value(value, prom,
                                                         self.impl)
            match_pe = K.PIf(
                K.PBinop("==", K.PSym("sw.v"),
                         _pv(VInteger(IntegerValue(converted)))),
                _pv(VInteger(IntegerValue(marker_index[str(sym)]))),
                match_pe)
        v = fresh_name("sw.cond")
        segs = _seq_all(seg_exprs[:-1], seg_exprs[-1]) if seg_exprs \
            else K.ESkip()
        if decls:
            segs = K.EScope(decls, segs)
        dispatch = K.ESave(
            "sw.dispatch." + fresh_name("n"),
            [("sw.target", K.PLet(PatSym("sw.v.raw"), K.PSym(v),
                                  K.PCase(K.PSym("sw.v.raw"), [
                                      (PatCtor("Specified",
                                               (PatSym("sw.v"),)),
                                       match_pe),
                                  ])))],
            segs, loc=s.loc)
        body_with_brk = K.ESave(brk, [("brk.done", _pv(FALSE))],
                                K.EIf(K.PSym("brk.done"), K.ESkip(),
                                      dispatch), loc=s.loc)
        return _sseq(
            PatSym(v), self.rv(s.cond),
            K.ECase(K.PSym(v), [
                (PatCtor("Unspecified", (PatWild(),)),
                 _pure(K.PUndef(UB.UNSPECIFIED_VALUE_CONTROL_FLOW,
                                loc=s.loc))),
                (PatCtor("Specified", (PatWild(),)), body_with_brk),
            ]), loc=s.loc)

    def _return(self, s: A.SReturn) -> K.Expr:
        fn = self._fn
        assert fn is not None
        if s.expr is None:
            rv: K.Expr = _pure(_pv(VUnit()) if isinstance(
                fn.ret_ty.ty, Void) else _pv(VUnspecified(fn.ret_ty.ty)))
        else:
            rv = self.rv(s.expr)
        v = fresh_name("ret.v")
        return _sseq(PatSym(v), rv,
                     K.ERun(fn.ret_label, [_pv(TRUE), K.PSym(v)],
                            loc=s.loc), loc=s.loc)

    # ================== initialisers =========================================

    def init_stores(self, ptr: K.Pexpr, qty: QualType, init: A.Init,
                    zero_first: bool) -> List[K.Expr]:
        out: List[K.Expr] = []
        if zero_first and not isinstance(init, A.InitScalar):
            zv = zero_value(qty.ty, self.impl, self.tags)
            out.append(self.act_store(qty.ty, ptr,
                                      _pv(VSpecified(VMemStruct(zv)))
                                      if not _is_scalar_mem(zv)
                                      else _pv(VSpecified(
                                          _scalar_of(zv))), init.loc))
        out.extend(self._init_stores_inner(ptr, qty, init))
        return out

    def _init_stores_inner(self, ptr: K.Pexpr, qty: QualType,
                           init: A.Init) -> List[K.Expr]:
        ty = qty.ty
        if isinstance(init, A.InitScalar):
            v = fresh_name("init.v")
            return [_sseq(PatSym(v), self.rv(init.expr),
                          self.act_store(ty, ptr, K.PSym(v), init.loc),
                          loc=init.loc)]
        if isinstance(init, A.InitString):
            assert isinstance(ty, Array)
            data = list(init.value[:init.size])
            elems: List[MemValue] = [
                MVInteger(_CHAR, IntegerValue(
                    b if b < 128 or not self.impl.char_is_signed
                    else b - 256)) for b in data]
            while len(elems) < init.size:
                elems.append(MVInteger(_CHAR, IntegerValue(0)))
            mv = MVArray(_CHAR, tuple(elems))
            return [self.act_store(ty, ptr,
                                   _pv(VSpecified(VMemStruct(mv))),
                                   init.loc)]
        if isinstance(init, A.InitArray):
            assert isinstance(ty, Array)
            out = []
            for idx, sub in init.elems:
                eptr = K.PArrayShift(ptr, ty.of.ty,
                                     _pv(VInteger(IntegerValue(idx))),
                                     loc=sub.loc)
                out.extend(self._init_stores_inner(eptr, ty.of, sub))
            return out
        if isinstance(init, A.InitStruct):
            assert isinstance(ty, StructRef)
            defn = self.tags.require(ty.tag)
            out = []
            for name, sub in init.members:
                member = defn.member(name)
                assert member is not None
                mptr = K.PMemberShift(ptr, ty.tag, name, loc=sub.loc)
                if member.bit_width is not None:
                    out.append(self._init_store_bits(ty.tag, name, mptr,
                                                     sub))
                    continue
                out.extend(self._init_stores_inner(mptr, member.qty,
                                                   sub))
            return out
        if isinstance(init, A.InitUnion):
            assert isinstance(ty, UnionRef)
            defn = self.tags.require(ty.tag)
            member = defn.member(init.member)
            assert member is not None
            mptr = K.PMemberShift(ptr, ty.tag, init.member, loc=init.loc)
            if member.bit_width is not None:
                return [self._init_store_bits(ty.tag, init.member, mptr,
                                              init.init)]
            return self._init_stores_inner(mptr, member.qty, init.init)
        raise InternalError(f"unhandled init {type(init).__name__}",
                            init.loc)

    def _init_store_bits(self, tag: str, name: str, mptr: K.Pexpr,
                         sub: A.Init) -> K.Expr:
        if not isinstance(sub, A.InitScalar):
            raise InternalError("non-scalar bit-field initialiser",
                                sub.loc)
        f = self.impl.field_layout(tag, name, self.tags)
        v = fresh_name("init.bf")
        return _sseq(PatSym(v), self.rv(sub.expr),
                     self.act_store_bits(f, mptr, K.PSym(v), sub.loc),
                     loc=sub.loc)

    # ================== actions ================================================

    def act_store(self, ty: CType, ptr: K.Pexpr, value: K.Pexpr,
                  loc: Loc, polarity: str = "pos") -> K.Expr:
        return K.EAction(K.Action("store", [_ctype(ty), ptr, value],
                                  polarity, "na", loc), loc=loc)

    def act_load(self, ty: CType, ptr: K.Pexpr, loc: Loc) -> K.Expr:
        return K.EAction(K.Action("load", [_ctype(ty), ptr], "pos",
                                  "na", loc), loc=loc)

    # ---- bit-field member actions -------------------------------------------

    def _member_bitfield(self, e: A.Expr) -> Optional[FieldLayout]:
        """When ``e`` designates a bit-field member lvalue, its layout
        record (declared type, bit offset within the byte the member
        shift addresses, width) under this implementation environment."""
        if not isinstance(e, A.EMember) or e.base.ty is None:
            return None
        bty = e.base.ty.ty
        rec = bty.to.ty if e.arrow and isinstance(bty, Pointer) else bty
        if not isinstance(rec, (StructRef, UnionRef)):
            return None
        member = self.tags.require(rec.tag).member(e.member)
        if member is None or member.bit_width is None:
            return None
        return self.impl.field_layout(rec.tag, e.member, self.tags)

    def _bf_action(self, kind: str, f: FieldLayout, ptr: K.Pexpr,
                   loc: Loc, value: Optional[K.Pexpr] = None,
                   polarity: str = "pos") -> K.Action:
        args: List[K.Pexpr] = [
            _ctype(f.qty.ty), ptr,
            _pv(VInteger(IntegerValue(f.bit_offset))),
            _pv(VInteger(IntegerValue(f.bit_width)))]
        if value is not None:
            args.append(value)
        return K.Action(kind, args, polarity, "na", loc)

    def act_load_bits(self, f: FieldLayout, ptr: K.Pexpr,
                      loc: Loc) -> K.Expr:
        return K.EAction(self._bf_action("loadbf", f, ptr, loc),
                         loc=loc)

    def act_store_bits(self, f: FieldLayout, ptr: K.Pexpr,
                       value: K.Pexpr, loc: Loc) -> K.Expr:
        return K.EAction(self._bf_action("storebf", f, ptr, loc, value),
                         loc=loc)

    def _conv_bits(self, f: FieldLayout, loaded: K.Pexpr) -> K.Pexpr:
        """The value a bit-field holds after a store of ``loaded``:
        truncated to the field width (sign-extended when the declared
        type is signed) — the value of ``s.f = x`` (§6.5.16p3)."""
        return K.PCall("conv_bits", [
            _ctype(f.qty.ty),
            _pv(VInteger(IntegerValue(f.bit_width))), loaded])

    # ================== expressions: rvalues ====================================

    def rv(self, e: A.Expr) -> K.Expr:
        """Elaborate a (typechecked) C expression to an effectful Core
        expression computing its loaded value."""
        method = getattr(self, "_rv_" + type(e).__name__, None)
        if method is None:
            raise InternalError(
                f"rv: unhandled expression {type(e).__name__}", e.loc)
        return method(e)

    def _rv_EConv(self, e: A.EConv) -> K.Expr:
        if e.kind == "lvalue":
            p = fresh_name("lv")
            assert e.operand.ty is not None
            bf = self._member_bitfield(e.operand)
            if bf is not None:
                return _wseq(PatSym(p), self.lv(e.operand),
                             self.act_load_bits(bf, K.PSym(p), e.loc),
                             loc=e.loc)
            return _wseq(PatSym(p), self.lv(e.operand),
                         self.act_load(e.operand.ty.ty, K.PSym(p),
                                       e.loc), loc=e.loc)
        if e.kind in ("decay", "fn-decay"):
            p = fresh_name("decay")
            return _sseq(PatSym(p), self.lv(e.operand),
                         _pure(K.PCtor("Specified", [K.PSym(p)]),
                               e.loc), loc=e.loc)
        if e.kind == "assign":
            assert e.operand.ty is not None
            return self.conv(self.rv(e.operand), e.operand.ty, e.to,
                             e.loc)
        raise InternalError(f"unknown conversion kind {e.kind}", e.loc)

    def _rv_EConstInt(self, e: A.EConstInt) -> K.Expr:
        return _pure(_specified_int(e.value), e.loc)

    def _rv_EConstFloat(self, e: A.EConstFloat) -> K.Expr:
        return _pure(_pv(VSpecified(VFloating(FloatingValue(e.value)))),
                     e.loc)

    def _rv_EId(self, e: A.EId) -> K.Expr:
        # Only function designators reach rv() unwrapped (fn-decay wraps
        # them); object ids come through EConv("lvalue").
        assert e.ty is not None
        if isinstance(e.ty.ty, Function):
            return _pure(K.PSym(self.fn_names[e.sym]), e.loc)
        raise InternalError("object id in rvalue position without "
                            "lvalue conversion", e.loc)

    def _rv_ESizeofType(self, e: A.ESizeofType) -> K.Expr:
        size = self.impl.sizeof(e.of.ty, self.tags)
        return _pure(_specified_int(size), e.loc)

    def _rv_EAlignofType(self, e: A.EAlignofType) -> K.Expr:
        return _pure(_specified_int(
            self.impl.alignof(e.of.ty, self.tags)), e.loc)

    def _rv_EOffsetof(self, e: A.EOffsetof) -> K.Expr:
        return _pure(_specified_int(
            self.impl.offsetof(e.record.ty, e.member, self.tags)), e.loc)

    def _rv_EUnary(self, e: A.EUnary) -> K.Expr:
        if e.op == "&":
            assert e.operand.ty is not None
            if isinstance(e.operand.ty.ty, Function):
                return _sseq(PatSym("f"), self.rv(e.operand),
                             _pure(K.PCtor("Specified", [K.PSym("f")])),
                             loc=e.loc)
            p = fresh_name("addr")
            return _sseq(PatSym(p), self.lv(e.operand),
                         _pure(K.PCtor("Specified", [K.PSym(p)])),
                         loc=e.loc)
        if e.op == "*":
            # The lvalue conversion wrapping this node does the load;
            # bare `*` in rvalue position only appears via EConv.
            raise InternalError("indirection outside lvalue conversion",
                                e.loc)
        if e.op == "sizeof":
            assert e.operand.ty is not None
            oty = e.operand.ty.ty
            if isinstance(oty, VarArray):
                # §6.5.3.4p2: sizeof of a VLA is a runtime value — the
                # element count lives in the hidden size variable.
                esize = self.impl.sizeof(oty.of.ty, self.tags)
                v = fresh_name("vla.sz")
                load = self.act_load(Integer(IntKind.LONG),
                                     K.PSym(str(oty.size_sym)), e.loc)
                return _sseq(PatSym(v), load, self._case_specified(
                    K.PSym(v), _SIZE_T,
                    lambda pv: K.PCtor("Specified", [
                        K.PBinop("*", pv, _pv(VInteger(
                            IntegerValue(esize))))]),
                    unspec_is_ub=True, loc=e.loc), loc=e.loc)
            size = self.impl.sizeof(oty, self.tags)
            return _pure(_specified_int(size), e.loc)
        assert e.ty is not None and e.operand.ty is not None
        oty = e.operand.ty.ty
        rty = e.ty.ty
        operand = self.rv(e.operand)
        if e.op == "!":
            v = fresh_name("not")
            return _sseq(PatSym(v), operand, self._case_specified(
                K.PSym(v), rty, lambda pv: K.PCtor("Specified", [
                    K.PIf(self._nonzero_pe(pv, oty),
                          _pv(VInteger(IntegerValue(0))),
                          _pv(VInteger(IntegerValue(1))))]),
                unspec_is_ub=True, loc=e.loc), loc=e.loc)
        if isinstance(rty, Floating):
            v = fresh_name("funop")
            ops = {"+": lambda pv: pv,
                   "-": lambda pv: K.PBinop(
                       "-", _pv(VFloating(FloatingValue(0.0))), pv)}
            return _sseq(PatSym(v), operand, self._case_specified(
                K.PSym(v), rty,
                lambda pv: K.PCtor("Specified", [ops[e.op](pv)]),
                unspec_is_ub=True, loc=e.loc), loc=e.loc)
        assert isinstance(rty, Integer)
        v = fresh_name("unop")

        def build(pv: K.Pexpr) -> K.Pexpr:
            prom = K.PCall("conv_int", [_ctype(rty), pv])
            if e.op == "+":
                return K.PCtor("Specified", [prom])
            if e.op == "-":
                zero = _pv(VInteger(IntegerValue(0)))
                return self._arith_result(
                    K.PBinop("-", zero, prom), rty, e.loc)
            if e.op == "~":
                minus1 = _pv(VInteger(IntegerValue(-1)))
                return self._arith_result(
                    K.PBinop("xor", prom, minus1), rty, e.loc)
            raise InternalError(f"unary {e.op}", e.loc)

        return _sseq(PatSym(v), operand, self._case_specified(
            K.PSym(v), rty, build,
            unspec_is_ub=self.impl.is_signed(rty.kind), loc=e.loc),
            loc=e.loc)

    def _nonzero_pe(self, pv: K.Pexpr, ty: CType) -> K.Pexpr:
        if isinstance(ty, Pointer):
            return K.PCall("ptr_nonnull", [pv])
        if isinstance(ty, Floating):
            return K.PBinop("!=", pv, _pv(VFloating(FloatingValue(0.0))))
        return K.PBinop("!=", pv, _pv(VInteger(IntegerValue(0))))

    def _arith_result(self, pe: K.Pexpr, ty: Integer,
                      loc: Loc) -> K.Pexpr:
        """Wrap a mathematical result into type ty: unsigned wrap
        (§6.2.5p9), signed representability check (§6.5p5)."""
        if self.impl.is_signed(ty.kind):
            tmp = fresh_name("r")
            return K.PLet(
                PatSym(tmp), pe,
                K.PIf(K.PCall("is_representable",
                              [K.PSym(tmp), _ctype(ty)]),
                      K.PCtor("Specified", [K.PSym(tmp)]),
                      K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=loc)))
        return K.PCtor("Specified", [K.PCall("wrapI",
                                             [_ctype(ty), pe])])

    def _case_specified(self, scrut: K.Pexpr, result_ty: CType,
                        build, unspec_is_ub: bool,
                        loc: Loc) -> K.Expr:
        """case scrut of Specified(v) => build(v) | Unspecified =>
        undef or propagate (§2.4 daemonic treatment, Fig. 3)."""
        v = fresh_name("sv")
        unspec: K.Pexpr
        if unspec_is_ub:
            unspec = K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=loc)
        else:
            unspec = K.PCtor("Unspecified", [_ctype(result_ty)])
        return _pure(K.PCase(scrut, [
            (PatCtor("Specified", (PatSym(v),)), build(K.PSym(v))),
            (PatCtor("Unspecified", (PatWild(),)), unspec),
        ]), loc)

    # ---- binary operators ------------------------------------------------------

    def _rv_EBinary(self, e: A.EBinary) -> K.Expr:
        if e.op in ("&&", "||"):
            return self._logical(e)
        assert e.lhs.ty is not None and e.rhs.ty is not None
        lt, rt = e.lhs.ty.ty, e.rhs.ty.ty
        a, b = fresh_name("e1"), fresh_name("e2")
        pair = K.EUnseq([self.rv(e.lhs), self.rv(e.rhs)], loc=e.loc)
        body = self._binary_body(e, K.PSym(a), K.PSym(b), lt, rt)
        return _wseq(PatCtor("Tuple", (PatSym(a), PatSym(b))), pair,
                     body, loc=e.loc)

    def _binary_body(self, e: A.EBinary, pa: K.Pexpr, pb: K.Pexpr,
                     lt: CType, rt: CType) -> K.Expr:
        op = e.op
        assert e.ty is not None
        rty = e.ty.ty
        # pointer arithmetic / comparison cases
        if isinstance(lt, Pointer) or isinstance(rt, Pointer):
            return self._pointer_binary(e, pa, pb, lt, rt)
        if isinstance(lt, Floating) or isinstance(rt, Floating):
            return self._float_binary(e, pa, pb, lt, rt)
        assert isinstance(lt, Integer) and isinstance(rt, Integer)
        if op in ("<<", ">>"):
            return self._shift(e, pa, pb, lt, rt)
        common = convert.usual_arithmetic_conversions(lt, rt, self.impl)
        va, vb = fresh_name("v1"), fresh_name("v2")

        def specified_case() -> K.Pexpr:
            ca = K.PCall("conv_int", [_ctype(common), K.PSym(va)])
            cb = K.PCall("conv_int", [_ctype(common), K.PSym(vb)])
            if op in ("==", "!=", "<", ">", "<=", ">="):
                cmp = K.PBinop(op, ca, cb)
                return K.PCtor("Specified", [
                    K.PIf(cmp, _pv(VInteger(IntegerValue(1))),
                          _pv(VInteger(IntegerValue(0))))])
            if op in ("/", "%"):
                zero_check = K.PBinop("==", cb,
                                      _pv(VInteger(IntegerValue(0))))
                math_op = "/" if op == "/" else "rem_t"
                return K.PIf(zero_check,
                             K.PUndef(UB.DIVISION_BY_ZERO, loc=e.loc),
                             self._arith_result(
                                 K.PBinop(math_op, ca, cb),
                                 common, e.loc))
            core_op = {"+": "+", "-": "-", "*": "*", "&": "&",
                       "|": "|", "^": "xor"}[op]
            return self._arith_result(K.PBinop(core_op, ca, cb), common,
                                      e.loc)

        result_int_ty = common if op not in ("==", "!=", "<", ">", "<=",
                                             ">=") else _INT
        unspec_is_ub = self.impl.is_signed(common.kind) or op in (
            "==", "!=", "<", ">", "<=", ">=", "/", "%")
        v_unspec: K.Pexpr = K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc) \
            if unspec_is_ub else K.PCtor("Unspecified",
                                         [_ctype(result_int_ty)])
        return _pure(K.PCase(K.PCtor("Tuple", [pa, pb]), [
            (PatCtor("Tuple", (PatWild(),
                               PatCtor("Unspecified", (PatWild(),)))),
             v_unspec),
            (PatCtor("Tuple", (PatCtor("Unspecified", (PatWild(),)),
                               PatWild())), v_unspec),
            (PatCtor("Tuple", (PatCtor("Specified", (PatSym(va),)),
                               PatCtor("Specified", (PatSym(vb),)))),
             specified_case()),
        ]), e.loc)

    def _shift(self, e: A.EBinary, pa: K.Pexpr, pb: K.Pexpr,
               lt: Integer, rt: Integer) -> K.Expr:
        """ISO C11 §6.5.7, following the paper's Fig. 3 point-by-point."""
        impl = self.impl
        result_ty = convert.integer_promotion(lt, impl)
        prm_rt = convert.integer_promotion(rt, impl)
        va, vb = fresh_name("obj1"), fresh_name("obj2")
        prm1 = K.PCall("conv_int", [_ctype(result_ty), K.PSym(va)])
        prm2 = K.PCall("conv_int", [_ctype(prm_rt), K.PSym(vb)])
        p1, p2 = fresh_name("prm1"), fresh_name("prm2")
        res = fresh_name("res")
        unsigned = not impl.is_signed(result_ty.kind)
        if e.op == "<<":
            if unsigned:
                # E1 x 2^E2 reduced modulo one more than the max value.
                compute: K.Pexpr = K.PCtor("Specified", [
                    K.PBinop("rem_t",
                             K.PBinop("*", K.PSym(p1),
                                      K.PBinop("^",
                                               _pv(VInteger(
                                                   IntegerValue(2))),
                                               K.PSym(p2))),
                             K.PBinop("+", K.PCall("ivmax",
                                                   [_ctype(result_ty)]),
                                      _pv(VInteger(IntegerValue(1)))))])
            else:
                compute = K.PIf(
                    K.PBinop("<", K.PSym(p1),
                             _pv(VInteger(IntegerValue(0)))),
                    K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc),
                    K.PLet(PatSym(res),
                           K.PBinop("*", K.PSym(p1),
                                    K.PBinop("^",
                                             _pv(VInteger(
                                                 IntegerValue(2))),
                                             K.PSym(p2))),
                           K.PIf(K.PCall("is_representable",
                                         [K.PSym(res),
                                          _ctype(result_ty)]),
                                 K.PCtor("Specified", [K.PSym(res)]),
                                 K.PUndef(UB.EXCEPTIONAL_CONDITION,
                                          loc=e.loc))))
        else:  # >>
            if unsigned:
                compute = K.PCtor("Specified", [
                    K.PBinop("/", K.PSym(p1),
                             K.PBinop("^", _pv(VInteger(IntegerValue(2))),
                                      K.PSym(p2)))])
            else:
                # Negative E1 >> is implementation-defined (§6.5.7p5);
                # we follow GCC/Clang: arithmetic shift.
                compute = K.PCtor("Specified", [
                    K.PCall("conv_int", [_ctype(result_ty),
                                         K.PBinop(">>", K.PSym(p1),
                                                  K.PSym(p2))])])
        guarded = K.PLet(
            PatSym(p1), prm1,
            K.PLet(PatSym(p2), prm2,
                   K.PIf(K.PBinop("<", K.PSym(p2),
                                  _pv(VInteger(IntegerValue(0)))),
                         K.PUndef(UB.NEGATIVE_SHIFT, loc=e.loc),
                         K.PIf(K.PBinop("<=",
                                        K.PCall("ctype_width",
                                                [_ctype(result_ty)]),
                                        K.PSym(p2)),
                               K.PUndef(UB.SHIFT_TOO_LARGE, loc=e.loc),
                               compute))))
        unspec_left: K.Pexpr = K.PCtor("Unspecified",
                                       [_ctype(result_ty)]) \
            if unsigned else K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc)
        return _pure(K.PCase(K.PCtor("Tuple", [pa, pb]), [
            (PatCtor("Tuple", (PatWild(),
                               PatCtor("Unspecified", (PatWild(),)))),
             K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc)),
            (PatCtor("Tuple", (PatCtor("Unspecified", (PatWild(),)),
                               PatWild())), unspec_left),
            (PatCtor("Tuple", (PatCtor("Specified", (PatSym(va),)),
                               PatCtor("Specified", (PatSym(vb),)))),
             guarded),
        ]), e.loc)

    def _float_binary(self, e: A.EBinary, pa: K.Pexpr, pb: K.Pexpr,
                      lt: CType, rt: CType) -> K.Expr:
        op = e.op
        va, vb = fresh_name("f1"), fresh_name("f2")
        fa = K.PCall("float_of", [K.PSym(va)])
        fb = K.PCall("float_of", [K.PSym(vb)])
        if op in ("==", "!=", "<", ">", "<=", ">="):
            body: K.Pexpr = K.PCtor("Specified", [
                K.PIf(K.PBinop(op, fa, fb),
                      _pv(VInteger(IntegerValue(1))),
                      _pv(VInteger(IntegerValue(0))))])
        else:
            body = K.PCtor("Specified", [K.PBinop(op, fa, fb)])
        return _pure(K.PCase(K.PCtor("Tuple", [pa, pb]), [
            (PatCtor("Tuple", (PatCtor("Specified", (PatSym(va),)),
                               PatCtor("Specified", (PatSym(vb),)))),
             body),
            (PatWild(), K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc)),
        ]), e.loc)

    def _pointer_binary(self, e: A.EBinary, pa: K.Pexpr, pb: K.Pexpr,
                        lt: CType, rt: CType) -> K.Expr:
        op = e.op
        va, vb = fresh_name("p1"), fresh_name("p2")
        both = K.PCase(K.PCtor("Tuple", [pa, pb]), [
            (PatCtor("Tuple", (PatCtor("Specified", (PatSym(va),)),
                               PatCtor("Specified", (PatSym(vb),)))),
             K.PCtor("Tuple", [K.PSym(va), K.PSym(vb)])),
            (PatWild(), K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc)),
        ])
        x, y = fresh_name("x"), fresh_name("y")

        def with_both(body: K.Expr) -> K.Expr:
            return K.ELet(PatCtor("Tuple", (PatSym(x), PatSym(y))),
                          both, body, loc=e.loc)

        px, py = K.PSym(x), K.PSym(y)
        # p + n / n + p / p - n
        if op in ("+", "-") and isinstance(lt, Pointer) and \
                is_integer(rt):
            elem = lt.to.ty
            idx = py if op == "+" else K.PBinop(
                "-", _pv(VInteger(IntegerValue(0))), py)
            return with_both(_pure(K.PCtor("Specified", [
                K.PArrayShift(px, elem, idx, loc=e.loc)]), e.loc))
        if op == "+" and is_integer(lt) and isinstance(rt, Pointer):
            elem = rt.to.ty
            return with_both(_pure(K.PCtor("Specified", [
                K.PArrayShift(py, elem, px, loc=e.loc)]), e.loc))
        if op == "-" and isinstance(lt, Pointer) and \
                isinstance(rt, Pointer):
            elem = lt.to.ty
            d = fresh_name("diff")
            return with_both(_sseq(
                PatSym(d),
                K.EPtrOp("ptrdiff", [px, py], aux=elem, loc=e.loc),
                _pure(K.PCtor("Specified", [K.PSym(d)]), e.loc)))
        # comparisons
        ops = {"==": "eq", "!=": "ne", "<": "lt", ">": "gt",
               "<=": "le", ">=": "ge"}
        if op in ops:
            # An integer operand (a null pointer constant) converts.
            def as_ptr(pe: K.Pexpr, ty: CType, body_fn):
                if isinstance(ty, Pointer):
                    return body_fn(pe)
                q = fresh_name("np")
                return _sseq(PatSym(q),
                             K.EPtrOp("ptrFromInt", [pe], loc=e.loc),
                             body_fn(K.PSym(q)))

            r = fresh_name("cmp")

            def finish(pl: K.Pexpr):
                def finish2(pr: K.Pexpr):
                    return _sseq(
                        PatSym(r),
                        K.EPtrOp(ops[op], [pl, pr], loc=e.loc),
                        _pure(K.PCtor("Specified", [K.PSym(r)]), e.loc))
                return as_ptr(py, rt, finish2)

            return with_both(as_ptr(px, lt, finish))
        raise InternalError(f"pointer binary {op}", e.loc)

    def _logical(self, e: A.EBinary) -> K.Expr:
        """&& and || (§6.5.13-14): sequence point after the first
        operand; result is int 0/1."""
        assert e.lhs.ty is not None and e.rhs.ty is not None
        a = fresh_name("land1")
        b = fresh_name("land2")
        one = _pv(VInteger(IntegerValue(1)))
        zero = _pv(VInteger(IntegerValue(0)))
        rhs_eval = _sseq(PatSym(b), self.rv(e.rhs), self._case_specified(
            K.PSym(b), _INT,
            lambda pv: K.PCtor("Specified", [
                K.PIf(self._nonzero_pe(pv, e.rhs.ty.ty), one, zero)]),
            unspec_is_ub=True, loc=e.loc))
        v = fresh_name("lv1")
        return _sseq(PatSym(a), self.rv(e.lhs), K.ECase(K.PSym(a), [
            (PatCtor("Unspecified", (PatWild(),)),
             _pure(K.PUndef(UB.UNSPECIFIED_VALUE_CONTROL_FLOW,
                            loc=e.loc))),
            (PatCtor("Specified", (PatSym(v),)),
             K.EIf(self._nonzero_pe(K.PSym(v), e.lhs.ty.ty),
                   rhs_eval if e.op == "&&" else _pure(
                       K.PCtor("Specified", [one]), e.loc),
                   _pure(K.PCtor("Specified", [zero]), e.loc)
                   if e.op == "&&" else rhs_eval)),
        ]), loc=e.loc)

    # ---- assignment, increment, call, &c. -----------------------------------------

    def _rv_EAssign(self, e: A.EAssign) -> K.Expr:
        assert e.lhs.ty is not None
        lty = e.lhs.ty
        bf = self._member_bitfield(e.lhs)
        if e.op == "=":
            p, v = fresh_name("ap"), fresh_name("av")
            pair = K.EUnseq([self.lv(e.lhs), self.rv(e.rhs)], loc=e.loc)
            if bf is not None:
                # The assignment's value is the value *stored in* the
                # bit-field: truncated to the field width (§6.5.16p3).
                return _wseq(
                    PatCtor("Tuple", (PatSym(p), PatSym(v))), pair,
                    _sseq(PatWild(),
                          self.act_store_bits(bf, K.PSym(p), K.PSym(v),
                                              e.loc),
                          _pure(self._conv_bits(bf, K.PSym(v)), e.loc)),
                    loc=e.loc)
            return _wseq(
                PatCtor("Tuple", (PatSym(p), PatSym(v))), pair,
                _sseq(PatWild(),
                      self.act_store(lty.ty, K.PSym(p), K.PSym(v),
                                     e.loc),
                      _pure(K.PSym(v), e.loc)), loc=e.loc)
        # compound assignment: lv once, load, op, store (§6.5.16.2p3)
        binop = e.op[:-1]
        p = fresh_name("cp")
        old = fresh_name("cold")
        new = fresh_name("cnew")
        fake = A.EBinary(binop,
                         _typed_hole(e.lhs.ty.unqualified(), old),
                         _typed_hole(e.rhs.ty, "__rhs_hole__"),
                         loc=e.loc)
        fake.ty = None
        # compute result type like the typechecker did
        from ..typing.typecheck import TypeChecker
        checker = TypeChecker(self.ail, self.impl)
        fake_lhs = _typed_hole(e.lhs.ty.unqualified(), old)
        fake_rhs = _typed_hole(e.rhs.ty, "rhs")
        res_qty = checker.binary_result(binop, fake_lhs, fake_rhs, e.loc)
        fakeb = A.EBinary(binop, fake_lhs, fake_rhs, loc=e.loc)
        fakeb.ty = res_qty
        body = self._binary_body(fakeb, K.PSym(old), K.PSym("crhs"),
                                 e.lhs.ty.ty, e.rhs.ty.ty)
        # convert result back to the lhs type (§6.5.16.2p3)
        conv_back = self.conv(body, res_qty, e.lhs.ty.unqualified(),
                              e.loc)
        rhs = self.rv(e.rhs)
        if bf is not None:
            return _wseq(
                PatCtor("Tuple", (PatSym(p), PatSym("crhs"))),
                K.EUnseq([self.lv(e.lhs), rhs], loc=e.loc),
                _sseq(PatSym(old),
                      self.act_load_bits(bf, K.PSym(p), e.loc),
                      _sseq(PatSym(new), conv_back,
                            _sseq(PatWild(),
                                  self.act_store_bits(bf, K.PSym(p),
                                                      K.PSym(new),
                                                      e.loc),
                                  _pure(self._conv_bits(bf,
                                                        K.PSym(new)),
                                        e.loc)))), loc=e.loc)
        return _wseq(
            PatCtor("Tuple", (PatSym(p), PatSym("crhs"))),
            K.EUnseq([self.lv(e.lhs), rhs], loc=e.loc),
            _sseq(PatSym(old), self.act_load(lty.ty, K.PSym(p), e.loc),
                  _sseq(PatSym(new), conv_back,
                        _sseq(PatWild(),
                              self.act_store(lty.ty, K.PSym(p),
                                             K.PSym(new), e.loc),
                              _pure(K.PSym(new), e.loc)))), loc=e.loc)

    def _rv_EIncrDecr(self, e: A.EIncrDecr) -> K.Expr:
        assert e.base.ty is not None
        ty = e.base.ty.ty
        delta = 1 if e.op == "++" else -1
        p = fresh_name("ip")
        old = fresh_name("iold")
        if isinstance(ty, Pointer):
            new_pe: K.Pexpr = K.PCase(K.PSym(old), [
                (PatCtor("Specified", (PatSym("ipv"),)),
                 K.PCtor("Specified", [K.PArrayShift(
                     K.PSym("ipv"), ty.to.ty,
                     _pv(VInteger(IntegerValue(delta))), loc=e.loc)])),
                (PatCtor("Unspecified", (PatWild(),)),
                 K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc)),
            ])
        else:
            assert isinstance(ty, Integer)
            common = convert.usual_arithmetic_conversions(ty, _INT,
                                                          self.impl)
            step = self._arith_result(
                K.PBinop("+",
                         K.PCall("conv_int", [_ctype(common),
                                              K.PSym("iiv")]),
                         _pv(VInteger(IntegerValue(delta)))),
                common, e.loc)
            back = K.PCase(step, [
                (PatCtor("Specified", (PatSym("istep"),)),
                 K.PCtor("Specified", [
                     K.PCall("conv_int", [_ctype(ty),
                                          K.PSym("istep")])])),
                (PatCtor("Unspecified", (PatWild(),)),
                 K.PCtor("Unspecified", [_ctype(ty)])),
            ])
            new_pe = K.PCase(K.PSym(old), [
                (PatCtor("Specified", (PatSym("iiv"),)), back),
                (PatCtor("Unspecified", (PatWild(),)),
                 K.PUndef(UB.EXCEPTIONAL_CONDITION, loc=e.loc)
                 if self.impl.is_signed(ty.kind)
                 else K.PCtor("Unspecified", [_ctype(ty)])),
            ])
        bf = self._member_bitfield(e.base)
        if e.is_postfix:
            # let atomic: the load/store pair is indivisible (§5.6) and
            # the store is *negative* — not part of the value
            # computation (§6.5.2.4).
            if bf is not None:
                load_act = self._bf_action("loadbf", bf, K.PSym(p),
                                           e.loc)
                store_act = self._bf_action("storebf", bf, K.PSym(p),
                                            e.loc, value=new_pe,
                                            polarity="neg")
            else:
                load_act = K.Action("load", [_ctype(ty), K.PSym(p)],
                                    "pos", "na", e.loc)
                store_act = K.Action("store", [_ctype(ty), K.PSym(p),
                                               new_pe], "neg", "na",
                                     e.loc)
            atomic = K.EAtomicSeq(old, load_act, store_act, loc=e.loc)
            return _wseq(PatSym(p), self.lv(e.base), atomic, loc=e.loc)
        new = fresh_name("inew")
        if bf is not None:
            return _wseq(
                PatSym(p), self.lv(e.base),
                _sseq(PatSym(old),
                      self.act_load_bits(bf, K.PSym(p), e.loc),
                      _sseq(PatSym(new), _pure(new_pe, e.loc),
                            _sseq(PatWild(),
                                  self.act_store_bits(bf, K.PSym(p),
                                                      K.PSym(new),
                                                      e.loc),
                                  _pure(self._conv_bits(bf,
                                                        K.PSym(new)),
                                        e.loc)))), loc=e.loc)
        return _wseq(
            PatSym(p), self.lv(e.base),
            _sseq(PatSym(old), self.act_load(ty, K.PSym(p), e.loc),
                  _sseq(PatSym(new), _pure(new_pe, e.loc),
                        _sseq(PatWild(),
                              self.act_store(ty, K.PSym(p), K.PSym(new),
                                             e.loc),
                              _pure(K.PSym(new), e.loc)))), loc=e.loc)

    def _rv_ECall(self, e: A.ECall) -> K.Expr:
        assert e.func.ty is not None
        fty = e.func.ty.ty
        assert isinstance(fty, Pointer) and isinstance(fty.to.ty,
                                                       Function)
        fn = fty.to.ty
        f = fresh_name("fn")
        arg_syms = [fresh_name(f"arg{i}") for i in range(len(e.args))]
        arg_exprs = []
        for i, a in enumerate(e.args):
            ae = self.rv(a)
            if i >= len(fn.params):
                # default argument promotions (§6.5.2.2p6-7)
                assert a.ty is not None
                ae = self._default_promote(ae, a.ty)
            arg_exprs.append(ae)
        call = K.ECcall(K.PSym(f), [K.PSym(s) for s in arg_syms],
                        ret_ty=fn.ret, loc=e.loc)
        if not arg_exprs:
            return _wseq(PatSym(f), self.rv(e.func), call, loc=e.loc)
        pair = K.EUnseq([self.rv(e.func)] + arg_exprs, loc=e.loc)
        pat = PatCtor("Tuple", tuple([PatSym(f)] +
                                     [PatSym(s) for s in arg_syms]))
        return _wseq(pat, pair, call, loc=e.loc)

    def _default_promote(self, ae: K.Expr, qty: QualType) -> K.Expr:
        ty = qty.ty
        if isinstance(ty, Integer):
            prom = convert.integer_promotion(ty, self.impl)
            if prom != ty:
                return self.conv(ae, qty, QualType(prom), Loc.unknown())
        if isinstance(ty, Floating) and ty.kind.value == "float":
            from ..ctypes.types import FloatKind
            return self.conv(ae, qty,
                             QualType(Floating(FloatKind.DOUBLE)),
                             Loc.unknown())
        return ae

    def _rv_ECast(self, e: A.ECast) -> K.Expr:
        assert e.operand.ty is not None
        if isinstance(e.to.ty, Void):
            return _sseq(PatWild(), self.rv(e.operand),
                         _pure(_pv(VUnit()), e.loc), loc=e.loc)
        return self.conv(self.rv(e.operand), e.operand.ty, e.to, e.loc)

    def _rv_ECond(self, e: A.ECond) -> K.Expr:
        assert e.cond.ty is not None and e.ty is not None
        then = self.conv(self.rv(e.then), e.then.ty, e.ty, e.loc) \
            if e.then.ty is not None and not isinstance(e.ty.ty, Void) \
            else self.rv(e.then)
        els = self.conv(self.rv(e.els), e.els.ty, e.ty, e.loc) \
            if e.els.ty is not None and not isinstance(e.ty.ty, Void) \
            else self.rv(e.els)
        v = fresh_name("cond")
        return _sseq(PatSym(v), self.rv(e.cond), K.ECase(K.PSym(v), [
            (PatCtor("Unspecified", (PatWild(),)),
             _pure(K.PUndef(UB.UNSPECIFIED_VALUE_CONTROL_FLOW,
                            loc=e.loc))),
            (PatCtor("Specified", (PatSym(v + ".v"),)),
             K.EIf(self._nonzero_pe(K.PSym(v + ".v"), e.cond.ty.ty),
                   then, els)),
        ]), loc=e.loc)

    def _rv_EComma(self, e: A.EComma) -> K.Expr:
        return _sseq(PatWild(), self.rv(e.lhs), self.rv(e.rhs),
                     loc=e.loc)

    def _rv_EString(self, e: A.EString) -> K.Expr:
        return _pure(K.PCtor("Specified", [K.PSym(str(e.sym))]), e.loc)

    def _rv_EIndex(self, e: A.EIndex) -> K.Expr:
        raise InternalError("index outside lvalue conversion", e.loc)

    def _rv_EMember(self, e: A.EMember) -> K.Expr:
        raise InternalError("member access outside lvalue conversion",
                            e.loc)

    def _rv_ECompound(self, e: A.ECompound) -> K.Expr:
        raise InternalError("compound literal outside lvalue conversion",
                            e.loc)

    # ================== conversions ==============================================

    def conv(self, core_e: K.Expr, fr: QualType, to: QualType,
             loc: Loc) -> K.Expr:
        """Value conversion (§6.3): wraps an effectful expression
        computing a loaded value of type ``fr`` into one of type ``to``.
        """
        fty, tty = fr.ty, to.ty
        if fty == tty:
            return core_e
        v = fresh_name("cv")
        if isinstance(tty, Integer) and isinstance(fty, Integer):
            if tty.kind is IntKind.BOOL:
                build = lambda pv: K.PCtor("Specified", [
                    K.PIf(K.PBinop("!=", pv,
                                   _pv(VInteger(IntegerValue(0)))),
                          _pv(VInteger(IntegerValue(1))),
                          _pv(VInteger(IntegerValue(0))))])
            else:
                build = lambda pv: K.PCtor("Specified", [
                    K.PCall("conv_int", [_ctype(tty), pv])])
            return _sseq(PatSym(v), core_e, self._case_specified(
                K.PSym(v), tty, build, unspec_is_ub=False, loc=loc),
                loc=loc)
        if isinstance(tty, Pointer) and isinstance(fty, Pointer):
            return core_e  # representation unchanged; checks at access
        if isinstance(tty, Pointer) and isinstance(fty, Integer):
            q = fresh_name("p")
            return _sseq(PatSym(v), core_e, K.ECase(K.PSym(v), [
                (PatCtor("Specified", (PatSym(v + ".i"),)),
                 _sseq(PatSym(q),
                       K.EPtrOp("ptrFromInt", [K.PSym(v + ".i")],
                                loc=loc),
                       _pure(K.PCtor("Specified", [K.PSym(q)]), loc))),
                (PatCtor("Unspecified", (PatWild(),)),
                 _pure(K.PCtor("Unspecified", [_ctype(tty)]), loc)),
            ]), loc=loc)
        if isinstance(tty, Integer) and isinstance(fty, Pointer):
            q = fresh_name("i")
            if tty.kind is IntKind.BOOL:
                return _sseq(PatSym(v), core_e, self._case_specified(
                    K.PSym(v), tty,
                    lambda pv: K.PCtor("Specified", [
                        K.PIf(K.PCall("ptr_nonnull", [pv]),
                              _pv(VInteger(IntegerValue(1))),
                              _pv(VInteger(IntegerValue(0))))]),
                    unspec_is_ub=False, loc=loc), loc=loc)
            return _sseq(PatSym(v), core_e, K.ECase(K.PSym(v), [
                (PatCtor("Specified", (PatSym(v + ".p"),)),
                 _sseq(PatSym(q),
                       K.EPtrOp("intFromPtr", [K.PSym(v + ".p")],
                                aux=tty, loc=loc),
                       _pure(K.PCtor("Specified", [
                           K.PCall("conv_int", [_ctype(tty),
                                                K.PSym(q)])]), loc))),
                (PatCtor("Unspecified", (PatWild(),)),
                 _pure(K.PCtor("Unspecified", [_ctype(tty)]), loc)),
            ]), loc=loc)
        if isinstance(tty, Floating) and isinstance(fty, Integer):
            return _sseq(PatSym(v), core_e, self._case_specified(
                K.PSym(v), tty,
                lambda pv: K.PCtor("Specified", [
                    K.PCall("int_to_float", [pv])]),
                unspec_is_ub=False, loc=loc), loc=loc)
        if isinstance(tty, Integer) and isinstance(fty, Floating):
            return _sseq(PatSym(v), core_e, self._case_specified(
                K.PSym(v), tty,
                lambda pv: K.PCtor("Specified", [
                    K.PCall("conv_int", [_ctype(tty),
                                         K.PCall("float_to_int",
                                                 [pv])])]),
                unspec_is_ub=False, loc=loc), loc=loc)
        if isinstance(tty, Floating) and isinstance(fty, Floating):
            return core_e
        if isinstance(tty, (StructRef, UnionRef)):
            return core_e
        raise InternalError(f"conversion {fr} -> {to}", loc)

    # ================== lvalues ==================================================

    def lv(self, e: A.Expr) -> K.Expr:
        """Elaborate an lvalue to an expression computing a pointer."""
        if isinstance(e, A.EId):
            if e.sym in self.fn_names:
                return _pure(K.PSym(self.fn_names[e.sym]), e.loc)
            return _pure(K.PSym(str(e.sym)), e.loc)
        if isinstance(e, A.EString):
            return _pure(K.PSym(str(e.sym)), e.loc)
        if isinstance(e, A.EUnary) and e.op == "*":
            v = fresh_name("deref")
            return _sseq(PatSym(v), self.rv(e.operand),
                         _pure(K.PCase(K.PSym(v), [
                             (PatCtor("Specified", (PatSym(v + ".p"),)),
                              K.PSym(v + ".p")),
                             (PatCtor("Unspecified", (PatWild(),)),
                              K.PUndef(UB.EXCEPTIONAL_CONDITION,
                                       loc=e.loc)),
                         ]), e.loc), loc=e.loc)
        if isinstance(e, A.EIndex):
            assert e.base.ty is not None
            bty = e.base.ty.ty
            assert isinstance(bty, Pointer)
            p, i = fresh_name("bp"), fresh_name("bi")
            pair = K.EUnseq([self.rv(e.base), self.rv(e.index)],
                            loc=e.loc)
            body = _pure(K.PCase(K.PCtor("Tuple", [K.PSym(p),
                                                   K.PSym(i)]), [
                (PatCtor("Tuple", (PatCtor("Specified",
                                           (PatSym(p + ".v"),)),
                                   PatCtor("Specified",
                                           (PatSym(i + ".v"),)))),
                 K.PArrayShift(K.PSym(p + ".v"), bty.to.ty,
                               K.PSym(i + ".v"), loc=e.loc)),
                (PatWild(), K.PUndef(UB.EXCEPTIONAL_CONDITION,
                                     loc=e.loc)),
            ]), e.loc)
            return _wseq(PatCtor("Tuple", (PatSym(p), PatSym(i))), pair,
                         body, loc=e.loc)
        if isinstance(e, A.EMember):
            assert e.base.ty is not None
            if e.arrow:
                bty = e.base.ty.ty
                assert isinstance(bty, Pointer)
                rec = bty.to.ty
                v = fresh_name("mb")
                return _sseq(PatSym(v), self.rv(e.base),
                             _pure(K.PCase(K.PSym(v), [
                                 (PatCtor("Specified",
                                          (PatSym(v + ".p"),)),
                                  K.PMemberShift(K.PSym(v + ".p"),
                                                 rec.tag, e.member,
                                                 loc=e.loc)),
                                 (PatWild(),
                                  K.PUndef(UB.EXCEPTIONAL_CONDITION,
                                           loc=e.loc)),
                             ]), e.loc), loc=e.loc)
            rec = e.base.ty.ty
            assert isinstance(rec, (StructRef, UnionRef))
            p = fresh_name("mv")
            return _sseq(PatSym(p), self.lv(e.base),
                         _pure(K.PMemberShift(K.PSym(p), rec.tag,
                                              e.member, loc=e.loc),
                               e.loc), loc=e.loc)
        if isinstance(e, A.ECompound):
            # The object lives until the enclosing block exits (§6.5.2.5
            # p5); its create is registered with the enclosing EScope.
            creates = getattr(self, "_pending_compounds", None)
            if creates is None:
                raise InternalError("compound literal outside a block",
                                    e.loc)
            creates.append(K.ScopedCreate(str(e.sym), e.of.ty,
                                          "compound-literal", loc=e.loc))
            zero = not isinstance(e.init, A.InitScalar)
            stores = self.init_stores(K.PSym(str(e.sym)), e.of, e.init,
                                      zero_first=zero)
            return _seq_all(stores, _pure(K.PSym(str(e.sym)), e.loc))
        if isinstance(e, A.EConv):
            # An lvalue never has conversions applied in lvalue context.
            return self.lv(e.operand)
        raise InternalError(f"lv: not an lvalue "
                            f"({type(e).__name__})", e.loc)


def _typed_hole(qty: QualType, name: str) -> A.Expr:
    hole = A.EId(A.Symbol(name, 0))
    hole.ty = qty
    return hole


def _contains_label(s) -> bool:
    if isinstance(s, A.SLabel):
        return True
    if isinstance(s, A.SBlock):
        return any(_contains_label(i) for i in s.items)
    if isinstance(s, A.SIf):
        return _contains_label(s.then) or (
            s.els is not None and _contains_label(s.els))
    if isinstance(s, A.SWhile):
        return _contains_label(s.body)
    if isinstance(s, A.SSwitch):
        return _contains_label(s.body)
    return False


def _flatten_case_block(item) -> List:
    """Flatten the desugarer's [marker, stmt] wrapper blocks so switch
    segments line up; real blocks stay intact."""
    if isinstance(item, A.SBlock) and item.items and \
            isinstance(item.items[0], A.SCaseMarker):
        out = [item.items[0]]
        for rest in item.items[1:]:
            out.extend(_flatten_case_block(rest))
        return out
    return [item]


def _is_scalar_mem(mv: MemValue) -> bool:
    from ..memory.values import MVFloating, MVInteger, MVPointer
    return isinstance(mv, (MVInteger, MVFloating, MVPointer))


def _scalar_of(mv: MemValue):
    from ..memory.values import MVFloating, MVInteger, MVPointer
    if isinstance(mv, MVInteger):
        return VInteger(mv.ival)
    if isinstance(mv, MVFloating):
        return VFloating(mv.fval)
    if isinstance(mv, MVPointer):
        return VPointer(mv.ptr)
    raise InternalError("not a scalar memory value")


def elaborate(ail: A.Program, impl: Implementation) -> K.Program:
    """Elaborate a Typed Ail program into Core."""
    return Elaborator(ail, impl).run()
