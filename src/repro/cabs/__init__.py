"""Cabs: the parse-level C abstract syntax, closely following the ISO
grammar (paper Fig. 1: "parsing -> Cabs")."""

from . import ast

__all__ = ["ast"]
