"""Cabs — the C abstract syntax produced by the parser.

Cabs mirrors the concrete ISO C11 grammar (§6.5-6.9) with almost no
interpretation: declaration specifiers are kept as token-ish lists,
declarators are a syntax tree, and expressions record the operator
spellings. All interpretation (scoping, type normalisation, enum
replacement, loop desugaring, ...) happens in Cabs_to_Ail (paper §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..source import Loc


# --------------------------------------------------------------------------
# Expressions (§6.5)
# --------------------------------------------------------------------------

@dataclass
class Expr:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class EIdent(Expr):
    name: str


@dataclass
class EIntConst(Expr):
    """An integer constant with its spelling (type determined per
    §6.4.4.1p5 during desugaring)."""

    text: str
    value: int
    base: int            # 8, 10 or 16
    suffix: str          # normalised, e.g. "", "u", "l", "ull"


@dataclass
class EFloatConst(Expr):
    text: str
    value: float
    suffix: str          # "", "f", "l"


@dataclass
class ECharConst(Expr):
    text: str
    value: int
    wide: bool


@dataclass
class EStringLit(Expr):
    """Adjacent string literals already concatenated (phase 6)."""

    text: str
    value: bytes
    wide: bool


@dataclass
class EParen(Expr):
    inner: Expr


@dataclass
class EIndex(Expr):
    base: Expr
    index: Expr


@dataclass
class ECall(Expr):
    func: Expr
    args: List[Expr]


@dataclass
class EMember(Expr):
    base: Expr
    member: str
    arrow: bool          # True for ->


@dataclass
class EPostIncr(Expr):
    base: Expr
    op: str              # "++" or "--"


@dataclass
class ECompoundLiteral(Expr):
    type_name: "TypeName"
    init: "Initializer"


@dataclass
class EPreIncr(Expr):
    base: Expr
    op: str              # "++" or "--"


@dataclass
class EUnary(Expr):
    op: str              # & * + - ~ !
    operand: Expr


@dataclass
class ESizeofExpr(Expr):
    operand: Expr


@dataclass
class ESizeofType(Expr):
    type_name: "TypeName"


@dataclass
class EAlignofType(Expr):
    type_name: "TypeName"


@dataclass
class ECast(Expr):
    type_name: "TypeName"
    operand: Expr


@dataclass
class EBinary(Expr):
    op: str              # * / % + - << >> < > <= >= == != & ^ | && ||
    lhs: Expr
    rhs: Expr


@dataclass
class EConditional(Expr):
    cond: Expr
    then: Optional[Expr]  # None for the GNU a ?: b extension (unsupported)
    els: Expr


@dataclass
class EAssign(Expr):
    op: str              # = *= /= %= += -= <<= >>= &= ^= |=
    lhs: Expr
    rhs: Expr


@dataclass
class EComma(Expr):
    lhs: Expr
    rhs: Expr


@dataclass
class EOffsetof(Expr):
    """__cerberus_offsetof(type, member) — what <stddef.h> expands to."""

    type_name: "TypeName"
    member: str


@dataclass
class EGeneric(Expr):
    """_Generic (§6.5.1.1) — parsed, rejected later as unsupported."""

    control: Expr
    assocs: List[Tuple[Optional["TypeName"], Expr]]


# --------------------------------------------------------------------------
# Declarations (§6.7)
# --------------------------------------------------------------------------

@dataclass
class TypeSpec:
    """One declaration specifier."""

    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class TSKeyword(TypeSpec):
    """void/char/int/short/long/signed/unsigned/float/double/_Bool/
    _Complex."""

    name: str


@dataclass
class TSTypedefName(TypeSpec):
    name: str


@dataclass
class TSStructOrUnion(TypeSpec):
    is_union: bool
    tag: Optional[str]
    # None when this is a reference, a list for a definition.
    members: Optional[List["StructDeclaration"]]


@dataclass
class TSEnum(TypeSpec):
    tag: Optional[str]
    # (name, optional constant expression); None for a reference.
    enumerators: Optional[List[Tuple[str, Optional[Expr]]]]


@dataclass
class TSAtomic(TypeSpec):
    """_Atomic(type-name)."""

    type_name: "TypeName"


@dataclass
class StructDeclaration:
    specs: "DeclSpecs"
    # Each declarator optionally with a bitfield width expression.
    declarators: List[Tuple[Optional["Declarator"], Optional[Expr]]]
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class DeclSpecs:
    """Separated declaration specifiers (§6.7p1)."""

    storage: List[str] = field(default_factory=list)       # typedef extern...
    type_specs: List[TypeSpec] = field(default_factory=list)
    qualifiers: List[str] = field(default_factory=list)    # const ...
    functions: List[str] = field(default_factory=list)     # inline _Noreturn
    alignment: List[Union["TypeName", Expr]] = field(default_factory=list)
    loc: Loc = field(default_factory=Loc.unknown)


# Declarators (§6.7.6): a chain from the identifier outwards.

@dataclass
class Declarator:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class DIdent(Declarator):
    name: Optional[str]  # None for abstract declarators


@dataclass
class DPointer(Declarator):
    qualifiers: List[str]
    inner: Declarator


@dataclass
class DArray(Declarator):
    inner: Declarator
    size: Optional[Expr]
    qualifiers: List[str] = field(default_factory=list)
    is_static: bool = False
    is_star: bool = False


@dataclass
class ParamDecl:
    specs: DeclSpecs
    declarator: Optional[Declarator]
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class DFunction(Declarator):
    inner: Declarator
    params: List[ParamDecl]
    variadic: bool
    # K&R-style identifier list (non-prototype); we only accept empty ().
    ident_list: Optional[List[str]] = None


@dataclass
class TypeName:
    specs: DeclSpecs
    declarator: Optional[Declarator]  # abstract
    loc: Loc = field(default_factory=Loc.unknown)


# Initializers (§6.7.9)

@dataclass
class Designator:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class DesignMember(Designator):
    name: str


@dataclass
class DesignIndex(Designator):
    index: Expr


@dataclass
class Initializer:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class InitExpr(Initializer):
    expr: Expr


@dataclass
class InitList(Initializer):
    items: List[Tuple[List[Designator], Initializer]]


@dataclass
class InitDeclarator:
    declarator: Declarator
    init: Optional[Initializer]
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class Declaration:
    specs: DeclSpecs
    declarators: List[InitDeclarator]
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class StaticAssert:
    cond: Expr
    message: Optional[str]
    loc: Loc = field(default_factory=Loc.unknown)


# --------------------------------------------------------------------------
# Statements (§6.8)
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class SLabeled(Stmt):
    label: str
    body: Stmt


@dataclass
class SCase(Stmt):
    expr: Expr
    body: Stmt


@dataclass
class SDefault(Stmt):
    body: Stmt


@dataclass
class SCompound(Stmt):
    # block-items: declarations, statements or static asserts
    items: List[Union[Declaration, Stmt, StaticAssert]] = \
        field(default_factory=list)


@dataclass
class SExpr(Stmt):
    expr: Optional[Expr]  # None for the null statement ';'


@dataclass
class SIf(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt]


@dataclass
class SSwitch(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class SWhile(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class SDoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class SFor(Stmt):
    init: Optional[Union[Declaration, Expr]]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class SGoto(Stmt):
    label: str


@dataclass
class SContinue(Stmt):
    pass


@dataclass
class SBreak(Stmt):
    pass


@dataclass
class SReturn(Stmt):
    expr: Optional[Expr]


# --------------------------------------------------------------------------
# External definitions (§6.9)
# --------------------------------------------------------------------------

@dataclass
class FunctionDef:
    specs: DeclSpecs
    declarator: Declarator
    body: SCompound
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class TranslationUnit:
    decls: List[Union[Declaration, FunctionDef, StaticAssert]] = \
        field(default_factory=list)
