"""Catalogue of C undefined behaviours known to the semantics.

Core's ``undef(ub-name)`` construct (paper Fig. 2) refers to entries of
this catalogue; when the Core operational semantics reaches an ``undef`` it
terminates execution and reports *which* undefined behaviour was violated,
together with the C source location (paper §5.4).

The names follow the Cerberus convention of short CamelCase identifiers
(e.g. ``Negative_shift``, ``Shift_too_large`` — both visible in Fig. 3),
and each carries the ISO C11 clause from which it derives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .source import Loc


@dataclass(frozen=True)
class UBName:
    """One undefined behaviour in the catalogue."""

    name: str
    iso: str
    description: str

    def __str__(self) -> str:
        return self.name


_CATALOGUE: Dict[str, UBName] = {}


def _ub(name: str, iso: str, description: str) -> UBName:
    entry = UBName(name, iso, description)
    _CATALOGUE[name] = entry
    return entry


def lookup(name: str) -> UBName:
    """Fetch a catalogue entry; raises KeyError for unknown names."""
    return _CATALOGUE[name]


def catalogue() -> Dict[str, UBName]:
    """The full catalogue, name -> entry (a copy)."""
    return dict(_CATALOGUE)


# --- arithmetic -----------------------------------------------------------

EXCEPTIONAL_CONDITION = _ub(
    "Exceptional_condition", "6.5p5",
    "the result of an arithmetic operation is not representable "
    "(e.g. signed overflow) or an operand is an unspecified value")
NEGATIVE_SHIFT = _ub(
    "Negative_shift", "6.5.7p3",
    "the right operand of a shift is negative")
SHIFT_TOO_LARGE = _ub(
    "Shift_too_large", "6.5.7p3",
    "the right operand of a shift is >= the width of the promoted left "
    "operand")
DIVISION_BY_ZERO = _ub(
    "Division_by_zero", "6.5.5p5",
    "the second operand of / or % is zero")
INTEGER_CONVERSION_TRAP = _ub(
    "Integer_conversion_trap", "6.3.1.3p3",
    "conversion to a signed type cannot represent the value and the "
    "implementation raises a signal")

# --- pointers and memory --------------------------------------------------

ACCESS_OUT_OF_BOUNDS = _ub(
    "Access_out_of_bounds", "6.5.6p8",
    "a memory access whose footprint lies outside the allocation "
    "identified by the pointer's provenance")
ACCESS_DEAD_OBJECT = _ub(
    "Access_dead_object", "6.2.4p2",
    "an access to an object outside of its lifetime")
ACCESS_EMPTY_PROVENANCE = _ub(
    "Access_empty_provenance", "DR260",
    "a memory access through a pointer with empty provenance")
ACCESS_WRONG_PROVENANCE = _ub(
    "Access_wrong_provenance", "DR260",
    "a memory access whose address is not consistent with the pointer's "
    "original allocation (the DR260 committee-response licence)")
FREE_INVALID_POINTER = _ub(
    "Free_invalid_pointer", "7.22.3.3p2",
    "free() on a pointer not obtained from an allocation function, "
    "or a double free")
OUT_OF_BOUNDS_POINTER_ARITHMETIC = _ub(
    "Out_of_bounds_pointer_arithmetic", "6.5.6p8",
    "pointer arithmetic producing a pointer outside the array (plus "
    "one-past) of the original object — flagged only by strict models; "
    "the candidate de facto model permits transient OOB pointers (Q31)")
PTRDIFF_DISTINCT_OBJECTS = _ub(
    "Ptrdiff_distinct_objects", "6.5.6p9",
    "subtraction of pointers into two separately allocated objects")
RELATIONAL_DISTINCT_OBJECTS = _ub(
    "Relational_distinct_objects", "6.5.8p5",
    "relational comparison (<, >, <=, >=) of pointers to separately "
    "allocated objects — ISO UB; widely relied upon (Q25, survey [7/15])")
NULL_POINTER_DEREF = _ub(
    "Null_pointer_dereference", "6.5.3.2p4",
    "dereferencing a null pointer")
MISALIGNED_ACCESS = _ub(
    "Misaligned_access", "6.3.2.3p7",
    "an access through a pointer that is not correctly aligned for the "
    "referenced type")
EFFECTIVE_TYPE_MISMATCH = _ub(
    "Effective_type_mismatch", "6.5p7",
    "an access to an object with an lvalue type not compatible with its "
    "effective type (TBAA licence; disabled by -fno-strict-aliasing)")
MODIFYING_CONST = _ub(
    "Modifying_const_object", "6.7.3p6",
    "an attempt to modify an object defined with a const-qualified type")

# --- unspecified and indeterminate values ---------------------------------

READ_UNINITIALISED = _ub(
    "Read_uninitialised", "6.3.2.1p2",
    "reading an uninitialised object (option (1) of §2.4: treat as UB)")
UNSPECIFIED_VALUE_CONTROL_FLOW = _ub(
    "Unspecified_value_control_flow", "6.2.6.1",
    "a control-flow choice made on an unspecified value (the candidate "
    "model forbids provenance flow via control flow, §5.9)")
TRAP_REPRESENTATION = _ub(
    "Trap_representation", "6.2.6.1p5",
    "reading a trap representation")

# --- variable length arrays -----------------------------------------------

VLA_SIZE_NOT_POSITIVE = _ub(
    "VLA_size_not_positive", "6.7.6.2p5",
    "a variable length array size expression evaluated to a value "
    "that is not greater than zero")
VLA_SIZE_TOO_LARGE = _ub(
    "VLA_size_too_large", "6.5.3.4p2",
    "a variable length array size whose byte count is not "
    "representable within the model's allocation bound (the de facto "
    "stack-overflow outcome of an absurd VLA size)")

# --- sequencing and concurrency -------------------------------------------

UNSEQUENCED_RACE = _ub(
    "Unsequenced_race", "6.5p2",
    "two conflicting accesses to the same scalar object unrelated by "
    "sequenced-before within one expression evaluation")
DATA_RACE = _ub(
    "Data_race", "5.1.2.4p25",
    "two conflicting non-atomic accesses in different threads unrelated "
    "by happens-before")

# --- other -----------------------------------------------------------------

FUNCTION_NO_RETURN_VALUE_USED = _ub(
    "Function_no_return_value_used", "6.9.1p12",
    "the value of a function call is used but the callee's } was reached "
    "without a return value")
INDIRECTION_INVALID_FUNCTION_POINTER = _ub(
    "Indirection_invalid_function_pointer", "6.5.3.2p4",
    "calling through a pointer that does not point at a function of "
    "compatible type")
PRINTF_ARGUMENT_TYPE_MISMATCH = _ub(
    "Printf_argument_type_mismatch", "7.21.6.1p9",
    "an argument to a formatted-output function does not have the type "
    "required by its conversion specification")


class UndefinedBehaviour(Exception):
    """Raised by the dynamics when an execution reaches ``undef``.

    Carries the catalogue entry and the C source location, which the
    drivers surface in :class:`repro.dynamics.driver.Outcome`.
    """

    def __init__(self, ub: UBName, loc: Optional[Loc] = None,
                 detail: str = ""):
        self.ub = ub
        self.loc = loc if loc is not None else Loc.unknown()
        self.detail = detail
        msg = f"{self.loc}: undefined behaviour: {ub.name} [ISO {ub.iso}]"
        if detail:
            msg += f" — {detail}"
        super().__init__(msg)
