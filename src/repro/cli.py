"""Command-line interface: ``cerberus-py file.c``.

Modes mirror the paper's tool: run one path, exhaustively explore all
allowed behaviours, or pretty-print the elaborated Core.
"""

from __future__ import annotations

import argparse
import sys

from .core.pretty import pretty_program
from .ctypes.implementation import ILP32, LP64
from .errors import CerberusError
from .pipeline import MODELS, compile_c


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py",
        description="An executable de facto semantics for C "
                    "(PLDI 2016 reproduction)")
    p.add_argument("file", help="C source file")
    p.add_argument("--model", choices=sorted(MODELS),
                   default="provenance",
                   help="memory object model (default: provenance)")
    p.add_argument("--impl", choices=["LP64", "ILP32"], default="LP64",
                   help="implementation environment")
    p.add_argument("--exhaustive", action="store_true",
                   help="explore all allowed executions (test oracle "
                        "mode)")
    p.add_argument("--pp-core", action="store_true",
                   help="pretty-print the elaborated Core and exit")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--max-paths", type=int, default=500)
    p.add_argument("--seed", type=int, default=None,
                   help="pseudorandom single-path exploration seed")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    impl = LP64 if args.impl == "LP64" else ILP32
    try:
        pipeline = compile_c(source, impl, name=args.file)
    except CerberusError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    if args.pp_core:
        print(pretty_program(pipeline.core))
        return 0
    if args.exhaustive:
        result = pipeline.explore(args.model, max_paths=args.max_paths,
                                  max_steps=args.max_steps)
        print(f"executions explored: {result.paths_run} "
              f"({'complete' if result.exhausted else 'budget hit'})")
        for outcome in result.distinct():
            print(f"  {outcome.summary()}")
        return 1 if result.has_ub() else 0
    outcome = pipeline.run(args.model, max_steps=args.max_steps,
                           seed=args.seed)
    sys.stdout.write(outcome.stdout)
    if outcome.status == "ub":
        print(f"\nUndefined behaviour: {outcome.ub} "
              f"[{outcome.loc}] {outcome.ub_detail}", file=sys.stderr)
        return 1
    if outcome.status == "error":
        print(f"\nerror: {outcome.error}", file=sys.stderr)
        return 2
    if outcome.status == "timeout":
        print("\ntimeout", file=sys.stderr)
        return 3
    return outcome.exit_code or 0


if __name__ == "__main__":
    sys.exit(main())
