"""Command-line interface: ``cerberus-py file.c``.

Modes mirror the paper's tool: run one path, exhaustively explore all
allowed behaviours, or pretty-print the elaborated Core. ``--models``
compiles once and executes the shared artifact under a whole list of
memory object models, printing one verdict per model (the paper's
cross-model comparison)."""

from __future__ import annotations

import argparse
import sys

from .core.pretty import pretty_program
from .ctypes.implementation import ILP32, LP64
from .errors import CerberusError
from .pipeline import MODELS, compile_c, explore_many, run_many


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py",
        description="An executable de facto semantics for C "
                    "(PLDI 2016 reproduction)")
    p.add_argument("file", help="C source file")
    p.add_argument("--model", choices=sorted(MODELS),
                   default="provenance",
                   help="memory object model (default: provenance)")
    p.add_argument("--models", default=None, metavar="M1,M2,...",
                   help="comma-separated list of memory object models "
                        "(or 'all'): compile once and print one "
                        "verdict per model")
    p.add_argument("--impl", choices=["LP64", "ILP32"], default="LP64",
                   help="implementation environment")
    p.add_argument("--exhaustive", action="store_true",
                   help="explore all allowed executions (test oracle "
                        "mode)")
    p.add_argument("--pp-core", action="store_true",
                   help="pretty-print the elaborated Core and exit")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--max-paths", type=int, default=500)
    p.add_argument("--seed", type=int, default=None,
                   help="pseudorandom single-path exploration seed")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    impl = LP64 if args.impl == "LP64" else ILP32
    if args.models and not args.pp_core:
        return _run_batch(args, source, impl)
    try:
        pipeline = compile_c(source, impl, name=args.file)
    except CerberusError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    if args.pp_core:
        # Core is model-independent, so --pp-core wins over --models.
        print(pretty_program(pipeline.core))
        return 0
    if args.exhaustive:
        result = pipeline.explore(args.model, max_paths=args.max_paths,
                                  max_steps=args.max_steps)
        print(f"executions explored: {result.paths_run} "
              f"({'complete' if result.exhausted else 'budget hit'})")
        for outcome in result.distinct():
            print(f"  {outcome.summary()}")
        return 1 if result.has_ub() else 0
    outcome = pipeline.run(args.model, max_steps=args.max_steps,
                           seed=args.seed)
    sys.stdout.write(outcome.stdout)
    if outcome.status == "ub":
        print(f"\nUndefined behaviour: {outcome.ub} "
              f"[{outcome.loc}] {outcome.ub_detail}", file=sys.stderr)
        return 1
    if outcome.status == "error":
        print(f"\nerror: {outcome.error}", file=sys.stderr)
        return 2
    if outcome.status == "timeout":
        print("\ntimeout", file=sys.stderr)
        return 3
    return outcome.exit_code or 0


def _run_batch(args, source: str, impl) -> int:
    """--models: one front-end translation, a verdict per model."""
    if args.models == "all":
        models = list(MODELS)
    else:
        models = [m.strip() for m in args.models.split(",")
                  if m.strip()]
    unknown = [m for m in models if m not in MODELS]
    if unknown:
        print(f"cerberus-py: unknown model(s): {', '.join(unknown)} "
              f"(choose from {', '.join(sorted(MODELS))})",
              file=sys.stderr)
        return 2
    try:
        if args.exhaustive:
            results = explore_many(source, models=models, impl=impl,
                                   max_paths=args.max_paths,
                                   max_steps=args.max_steps,
                                   name=args.file)
            for model, res in results.items():
                behaviours = " | ".join(o.summary()
                                        for o in res.distinct())
                print(f"{model:12s} {res.paths_run:4d} paths  "
                      f"{behaviours}")
            return 1 if any(r.has_ub() for r in results.values()) \
                else 0
        outcomes = run_many(source, models=models, impl=impl,
                            max_steps=args.max_steps, seed=args.seed,
                            name=args.file)
    except CerberusError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    for model, outcome in outcomes.items():
        print(f"{model:12s} {outcome.summary()}")
    # Mirror the single-model exit codes: UB trumps internal errors
    # trumps timeouts.
    statuses = {o.status for o in outcomes.values()}
    if any(o.is_ub for o in outcomes.values()):
        return 1
    if "error" in statuses:
        return 2
    if "timeout" in statuses:
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
