"""Command-line interface: ``cerberus-py file.c`` and ``cerberus-py
farm ...``.

Modes mirror the paper's tool: run one path, explore all allowed
behaviours, or pretty-print the elaborated Core. ``--models`` compiles
once and executes the shared artifact under a whole list of memory
object models, printing one verdict per model (the paper's cross-model
comparison).

Exploration flags (see :mod:`repro.dynamics.explore`):

* ``--strategy dfs|bfs|random|coverage`` — the search strategy over
  the oracle-path frontier (``--seed`` seeds random/coverage);
* ``--por`` — sleep-set partial-order reduction at unseq scheduling
  points: identical behaviour sets, several-fold fewer paths;
* ``--explore-jobs N`` — shard one program's exploration frontier
  across N farm workers and merge the results;
* ``--explore-store DIR`` — persist exploration results as records
  (:mod:`repro.farm.explorestore`): an unchanged program is never
  re-explored, and an interrupted exploration resumes from its
  persisted frontier (``farm sweep --resume``).

Farm flags (see :mod:`repro.farm`):

* ``--store DIR`` — a persistent cross-process artifact store:
  compiled Core is cached on disk, so repeated invocations skip the
  front end entirely;
* ``--jobs N`` — run the ``--models`` sweep through N parallel worker
  processes;
* ``--shard I/N`` — run only the I-th of N deterministic shards of
  the sweep (corpus partitioning for independent campaign workers);
* ``cerberus-py farm suite|csmith|sweep ...`` — whole-corpus
  campaigns with JSON reports (per-program verdicts, cache hit rates,
  wall-clock).

Observability flags (see :mod:`repro.obs` for the full trace schema):

* ``--trace FILE`` — write a JSON-lines trace: pipeline-phase and
  exploration spans (wall + CPU time), a paths-over-time timeline,
  and a final metrics snapshot that includes farm workers' metrics.
  The run id on every record is a content hash of the invocation
  (never clock/RNG), so identical runs produce diffable traces;
* ``--metrics`` — print the collected metric counters after the run;
* ``--profile DIR`` — opt-in per-phase cProfile captures (one
  ``.pstats`` + top-25 ``.txt`` per instrumented phase);
* ``cerberus-py stats TRACE`` — render a trace into per-phase
  timings, per-kind store hit rates, and explorer throughput.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Optional, Tuple

from . import obs
from .core.pretty import pretty_program
from .ctypes.implementation import ILP32, LP64
from .dynamics.explore import STRATEGIES
from .errors import CerberusError
from .pipeline import (
    MODELS, compile_c, explore_many, lint_c, run_many,
    set_artifact_store,
)


def _parse_shard(text: Optional[str]) -> Tuple[int, int]:
    """``"I/N"`` -> ``(I, N)``; None -> the whole corpus ``(0, 1)``."""
    if not text:
        return (0, 1)
    try:
        index, _, count = text.partition("/")
        shard = (int(index), int(count))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--shard wants I/N (e.g. 0/4), got {text!r}") from None
    if not (shard[1] >= 1 and 0 <= shard[0] < shard[1]):
        raise argparse.ArgumentTypeError(
            f"--shard index must be in [0, N), got {text!r}")
    return shard


def _parse_models(text: Optional[str], default=None):
    if text is None:
        return default
    if text == "all":
        return list(MODELS)
    models = [m.strip() for m in text.split(",") if m.strip()]
    unknown = [m for m in models if m not in MODELS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown model(s): {', '.join(unknown)} (choose from "
            f"{', '.join(sorted(MODELS))})")
    return models


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSON-lines observability trace: one "
                        "record per line — meta (schema + run id), "
                        "span (named region: wall_s, cpu_s, t0 "
                        "offset, nesting depth), timeline (cumulative "
                        "explored paths over time), metrics (final "
                        "counters/gauges/histograms, farm workers "
                        "included).  The run id is a content hash of "
                        "the invocation, so identical runs produce "
                        "diffable traces.  Summarise with "
                        "'cerberus-py stats FILE'")
    p.add_argument("--metrics", action="store_true",
                   help="print the collected metric counters "
                        "(driver.*, explore.*, store.<kind>.*, "
                        "pipeline.*, farm.*) after the run")
    p.add_argument("--profile", default=None, metavar="DIR",
                   help="capture a cProfile per instrumented phase "
                        "into DIR (NNN-<phase>.pstats + a top-25 "
                        "cumulative-time .txt each)")


def _obs_wanted(args) -> bool:
    return bool(args.trace or args.metrics or args.profile)


def _obs_scope(args, identity: str):
    """The observability context of one CLI invocation, or a no-op
    scope when no obs flag was given.  ``identity`` must be built
    from the invocation's *content* (source + semantic flags) — never
    from output paths like --trace/--profile/--report, which must not
    change the run id of otherwise identical runs."""
    if not _obs_wanted(args):
        return contextlib.nullcontext(None)
    return obs.tracing(args.trace or None, identity=identity,
                       profile_dir=args.profile or None)


def _print_metrics(ctx) -> None:
    if ctx is None:
        return
    snapshot = ctx.metrics.to_dict()
    print("metrics:", file=sys.stderr)
    for name, value in sorted(snapshot["counters"].items()):
        print(f"  {name} = {value}", file=sys.stderr)
    for name, h in sorted(snapshot["histograms"].items()):
        print(f"  {name}: count={h['count']} "
              f"total={h['total']:.4f} max={h['max']:.4f}",
              file=sys.stderr)


def _add_farm_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="number of parallel worker processes "
                        "(default: 1 = serial in-process)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persistent artifact store directory: "
                        "compiled Core is reused across processes "
                        "and invocations (skips the front end)")
    p.add_argument("--shard", type=_parse_shard, default=(0, 1),
                   metavar="I/N",
                   help="run only the I-th of N deterministic shards "
                        "of the sweep (default: 0/1 = everything)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py",
        description="An executable de facto semantics for C "
                    "(PLDI 2016 reproduction). Batch campaigns: "
                    "cerberus-py farm {suite,csmith,sweep} --help; "
                    "static diagnostics: cerberus-py lint --help; "
                    "trace telemetry: cerberus-py stats --help")
    p.add_argument("file", help="C source file")
    p.add_argument("--model", choices=sorted(MODELS),
                   default="provenance",
                   help="memory object model (default: provenance)")
    p.add_argument("--models", default=None, metavar="M1,M2,...",
                   help="comma-separated list of memory object models "
                        "(or 'all'): compile once and print one "
                        "verdict per model")
    p.add_argument("--impl", choices=["LP64", "ILP32"], default="LP64",
                   help="implementation environment")
    p.add_argument("--exhaustive", action="store_true",
                   help="explore all allowed executions (test oracle "
                        "mode)")
    p.add_argument("--strategy", choices=sorted(STRATEGIES),
                   default="dfs",
                   help="exploration search strategy (default: dfs, "
                        "the exhaustive oracle-of-record; bfs, "
                        "random and coverage reorder the frontier)")
    p.add_argument("--por", action="store_true",
                   help="sleep-set partial-order reduction: skip "
                        "unseq interleavings whose next actions "
                        "commute (same behaviours, fewer paths)")
    p.add_argument("--static-prune", action="store_true",
                   help="static pre-pruning (repro.statics): never "
                        "branch statically-commuting unseq points "
                        "and seed sleep sets from precomputed "
                        "footprints (same behaviours, fewer paths)")
    p.add_argument("--explore-jobs", type=int, default=1, metavar="N",
                   help="shard the exploration frontier across N farm "
                        "workers (single-model --exhaustive only)")
    p.add_argument("--explore-store", default=None, metavar="DIR",
                   help="persist exploration results as records in "
                        "this artifact store: an unchanged program is "
                        "never re-explored (zero paths re-run on a "
                        "warm hit) and an interrupted exploration "
                        "resumes from its persisted frontier")
    p.add_argument("--backend", choices=["compiled", "tree"],
                   default="compiled",
                   help="evaluator back end: 'compiled' (default) "
                        "runs slotted lowered code, 'tree' walks the "
                        "Core AST (the oracle of record); both "
                        "produce identical verdicts")
    p.add_argument("--pp-core", action="store_true",
                   help="pretty-print the elaborated Core and exit")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--max-paths", type=int, default=500)
    p.add_argument("--seed", type=int, default=None,
                   help="single-path mode: pseudorandom oracle seed; "
                        "exploration: random/coverage strategy seed")
    _add_farm_flags(p)
    _add_obs_flags(p)
    return p


def _main_identity(args, source: str) -> str:
    """The content identity of one ``cerberus-py file.c`` invocation:
    the source plus every *semantic* flag.  Output paths (--trace,
    --profile) and cache locations (--store, --explore-store) are
    deliberately excluded so they never perturb the run id."""
    return "\x00".join([
        "run", args.file, source, args.impl, args.model,
        str(args.models), str(args.exhaustive), args.strategy,
        str(args.por), str(args.static_prune), str(args.explore_jobs),
        str(args.max_steps), str(args.max_paths), str(args.seed),
        str(args.jobs), str(args.shard), str(args.pp_core),
        str(args.backend)])


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "farm":
        return farm_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    impl = LP64 if args.impl == "LP64" else ILP32
    if args.store:
        from .farm.store import ArtifactStore
        set_artifact_store(ArtifactStore(args.store))
    with _obs_scope(args, _main_identity(args, source)) as ctx:
        code = _dispatch_main(args, source, impl)
    if args.metrics:
        _print_metrics(ctx)
    return code


def _dispatch_main(args, source: str, impl) -> int:
    if args.models and not args.pp_core:
        return _run_batch(args, source, impl)
    try:
        pipeline = compile_c(source, impl, name=args.file)
    except CerberusError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    if args.pp_core:
        # Core is model-independent, so --pp-core wins over --models.
        print(pretty_program(pipeline.core))
        return 0
    if args.exhaustive:
        explore_store = None
        if args.explore_store:
            from .farm.explorestore import ExploreStore
            explore_store = ExploreStore(args.explore_store)
        if args.explore_jobs > 1:
            from .farm.frontier import explore_farm
            result = explore_farm(source, model=args.model, impl=impl,
                                  max_paths=args.max_paths,
                                  max_steps=args.max_steps,
                                  strategy=args.strategy,
                                  por=args.por, seed=args.seed,
                                  jobs=args.explore_jobs,
                                  store=args.store,
                                  explore_store=explore_store,
                                  name=args.file,
                                  backend=args.backend)
        else:
            result = pipeline.explore(args.model,
                                      max_paths=args.max_paths,
                                      max_steps=args.max_steps,
                                      strategy=args.strategy,
                                      por=args.por, seed=args.seed,
                                      store=explore_store,
                                      name=args.file,
                                      static_prune=args.static_prune,
                                      backend=args.backend)
        pruned = f", {result.pruned} pruned" if result.pruned else ""
        print(f"executions explored: {result.paths_run} "
              f"({'complete' if result.exhausted else 'budget hit'}"
              f"{pruned})")
        if explore_store is not None:
            es = explore_store.stats()
            print(f"explore store: hits={es['hits']} "
                  f"resumes={es['resumes']} "
                  f"live paths={es['live_paths']}")
        for outcome in result.distinct():
            print(f"  {outcome.summary()}")
        return 1 if result.has_ub() else 0
    outcome = pipeline.run(args.model, max_steps=args.max_steps,
                           seed=args.seed, backend=args.backend)
    sys.stdout.write(outcome.stdout)
    if outcome.status == "ub":
        print(f"\nUndefined behaviour: {outcome.ub} "
              f"[{outcome.loc}] {outcome.ub_detail}", file=sys.stderr)
        return 1
    if outcome.status == "error":
        print(f"\nerror: {outcome.error}", file=sys.stderr)
        return 2
    if outcome.status == "timeout":
        print("\ntimeout", file=sys.stderr)
        return 3
    return outcome.exit_code or 0


def _exit_code_for(statuses, any_ub: bool) -> int:
    # Mirror the single-model exit codes: UB trumps internal errors
    # trumps timeouts.
    if any_ub:
        return 1
    if "error" in statuses:
        return 2
    if "timeout" in statuses:
        return 3
    return 0


def _run_batch(args, source: str, impl) -> int:
    """--models: one front-end translation, a verdict per model
    (``--jobs``/``--shard`` fan the models out across farm workers)."""
    try:
        models = _parse_models(args.models)
    except argparse.ArgumentTypeError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    from .farm.pool import shard_select
    models = shard_select(models, *args.shard)
    if not models:
        print("cerberus-py: shard selected no models", file=sys.stderr)
        return 2
    if args.explore_jobs > 1:
        # Two fan-out axes at once is not supported; refusing beats
        # silently running an unsharded per-model exploration.
        print("cerberus-py: --explore-jobs shards a single-model "
              "exploration; it cannot be combined with --models "
              "(use --jobs to fan the models out instead)",
              file=sys.stderr)
        return 2
    if args.jobs > 1:
        return _run_batch_farm(args, source, impl, models)
    try:
        if args.exhaustive:
            results = explore_many(source, models=models, impl=impl,
                                   max_paths=args.max_paths,
                                   max_steps=args.max_steps,
                                   name=args.file,
                                   strategy=args.strategy,
                                   por=args.por, seed=args.seed,
                                   store=args.explore_store,
                                   static_prune=args.static_prune,
                                   backend=args.backend)
            for model, res in results.items():
                behaviours = " | ".join(o.summary()
                                        for o in res.distinct())
                print(f"{model:12s} {res.paths_run:4d} paths  "
                      f"{behaviours}")
            return 1 if any(r.has_ub() for r in results.values()) \
                else 0
        outcomes = run_many(source, models=models, impl=impl,
                            max_steps=args.max_steps, seed=args.seed,
                            name=args.file, backend=args.backend)
    except CerberusError as exc:
        print(f"cerberus-py: {exc}", file=sys.stderr)
        return 2
    for model, outcome in outcomes.items():
        print(f"{model:12s} {outcome.summary()}")
    return _exit_code_for({o.status for o in outcomes.values()},
                          any(o.is_ub for o in outcomes.values()))


def _run_batch_farm(args, source: str, impl, models) -> int:
    """The --models sweep across worker processes: one task per model
    (a warm --store makes every worker execution-only)."""
    from .farm.pool import SweepTask, run_tasks
    mode = "explore" if args.exhaustive else "run"
    tasks = [SweepTask(index=i, name=args.file, kind=mode,
                       source=source, models=(model,), impl=impl,
                       max_steps=args.max_steps,
                       max_paths=args.max_paths, seed=args.seed,
                       strategy=args.strategy, por=args.por,
                       explore_store=args.explore_store,
                       static_prune=args.static_prune,
                       backend=args.backend)
             for i, model in enumerate(models)]
    results = run_tasks(tasks, jobs=args.jobs, store=args.store)
    statuses, any_ub = set(), False
    for model, r in zip(models, results):
        if not r.ok:
            print(f"{model:12s} error: {r.error}")
            statuses.add("error")
            continue
        if mode == "explore":
            e = r.data["explorations"][model]
            print(f"{model:12s} {e.paths_run:4d} paths  "
                  + " | ".join(e.behaviours))
            any_ub = any_ub or e.has_ub
        else:
            v = r.data["verdicts"][model]
            print(f"{model:12s} {v.summary()}")
            statuses.add(v.status)
            any_ub = any_ub or v.status == "ub"
    return _exit_code_for(statuses, any_ub)


# -- the lint subcommand -------------------------------------------------------

def build_lint_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py lint",
        description="Static definite-UB diagnostics over elaborated "
                    "Core (repro.statics.lint): uninitialized reads, "
                    "constant out-of-bounds accesses, over-wide "
                    "shifts, null dereferences, unsequenced races")
    p.add_argument("files", nargs="+", help="C source files")
    p.add_argument("--impl", choices=["LP64", "ILP32"], default="LP64",
                   help="implementation environment")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="artifact store: compiled Core and statics "
                        "records are cached across invocations")
    p.add_argument("--json", action="store_true",
                   help="emit findings as JSON (one object per file)")
    p.add_argument("--definite-only", action="store_true",
                   help="report (and exit on) definite findings only")
    return p


def lint_main(argv) -> int:
    args = build_lint_parser().parse_args(argv)
    impl = LP64 if args.impl == "LP64" else ILP32
    if args.store:
        from .farm.store import ArtifactStore
        set_artifact_store(ArtifactStore(args.store))
    worst = 0
    payload = {}
    for path in args.files:
        try:
            with open(path) as f:
                source = f.read()
        except OSError as exc:
            print(f"cerberus-py lint: {exc}", file=sys.stderr)
            return 2
        try:
            findings = lint_c(source, impl, name=path,
                              store=args.store)
        except CerberusError as exc:
            print(f"{path}: error: {exc}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        if args.definite_only:
            findings = [f for f in findings if f.definite]
        payload[path] = [f.to_dict() for f in findings]
        if not args.json:
            for f in findings:
                print(f.format())
        if any(f.definite for f in findings):
            worst = max(worst, 1)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return worst


# -- the farm subcommand -------------------------------------------------------

def build_farm_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py farm",
        description="Whole-corpus campaigns: parallel workers, "
                    "persistent artifact store, deterministic "
                    "sharding, JSON reports")
    sub = p.add_subparsers(dest="command", required=True)

    suite = sub.add_parser(
        "suite", help="sweep the de facto test suite across models")
    suite.add_argument("--models", default="all", metavar="M1,M2,...")
    suite.add_argument("--tests", default=None, metavar="T1,T2,...",
                       help="subset of test names (default: all)")
    suite.add_argument("--max-steps", type=int, default=400_000)

    csmith = sub.add_parser(
        "csmith", help="differentially validate a Csmith corpus")
    csmith.add_argument("--count", type=int, default=None,
                        help="corpus size (seeds seed-base..+count)")
    csmith.add_argument("--seeds", default=None, metavar="S1,S2,...",
                        help="explicit corpus seed list (reproducible "
                             "sharded campaigns)")
    csmith.add_argument("--seed-base", type=int, default=1000)
    csmith.add_argument("--size", type=int, default=12,
                        help="statement budget per program")
    csmith.add_argument("--models", default="concrete",
                        metavar="M1,M2,...")
    csmith.add_argument("--max-steps", type=int, default=300_000)

    sweep = sub.add_parser(
        "sweep", help="sweep ad-hoc C files across models")
    sweep.add_argument("files", nargs="+", help="C source files")
    sweep.add_argument("--models", default="all", metavar="M1,M2,...")
    sweep.add_argument("--exhaustive", action="store_true")
    sweep.add_argument("--strategy", choices=sorted(STRATEGIES),
                       default="dfs",
                       help="exploration search strategy")
    sweep.add_argument("--por", action="store_true",
                       help="sleep-set partial-order reduction")
    sweep.add_argument("--seed", type=int, default=None,
                       help="random/coverage strategy seed "
                            "(reproducible sampled campaigns)")
    sweep.add_argument("--max-steps", type=int, default=2_000_000)
    sweep.add_argument("--max-paths", type=int, default=500)
    sweep.add_argument("--explore-store", default=None, metavar="DIR",
                       help="persist --exhaustive results as "
                            "exploration records: warm re-sweeps of "
                            "unchanged programs re-run zero paths")
    sweep.add_argument("--resume", action="store_true",
                       help="resume interrupted explorations from "
                            "frontiers persisted in --explore-store "
                            "(complete records are always reused)")
    sweep.add_argument("--static-prune", action="store_true",
                       help="static pre-pruning of unseq choice "
                            "points for --exhaustive (repro.statics)")
    sweep.add_argument("--lint", action="store_true",
                       help="run the definite-UB linter per program; "
                            "with --exhaustive, a definite finding "
                            "skips that program's exploration "
                            "(pre-exploration filter)")
    sweep.add_argument("--backend", choices=["compiled", "tree"],
                       default="compiled",
                       help="evaluator back end for every task "
                            "(default: compiled; 'tree' is the "
                            "Core-walking oracle of record)")
    sweep.add_argument("--server", default=None, metavar="SOCKET",
                       help="route the sweep through a running farm "
                            "daemon (cerberus-py serve) instead of a "
                            "local pool: identical jobs coalesce "
                            "server-side and --jobs/--store/"
                            "--explore-store are the daemon's "
                            "choices, not this invocation's")

    for sp in (suite, csmith, sweep):
        _add_farm_flags(sp)
        _add_obs_flags(sp)
        sp.add_argument("--report", default=None, metavar="FILE",
                        help="write the JSON campaign report here "
                             "(includes the unified 'metrics' block: "
                             "merged worker metrics + farm task "
                             "timings)")
        sp.add_argument("--task-timeout", type=float, default=None,
                        metavar="S",
                        help="per-task wall-clock timeout in seconds")
    return p


def _finish_campaign(campaign, report_path: Optional[str]) -> None:
    cache = campaign.cache
    rate = cache.get("store_hit_rate")
    print(f"wall {campaign.wall_s:.2f}s  jobs={campaign.jobs}  "
          f"translations={cache['translations']}  "
          f"store hits={cache['store_hits']}"
          + (f" (rate {rate})" if rate is not None else ""))
    explore = campaign.metrics.get("explore", {})
    if explore.get("hits") or explore.get("misses"):
        erate = explore.get("hit_rate")
        print(f"explore records: hits={explore['hits']}  "
              f"resumes={explore.get('resumes', 0)}  "
              f"live paths={explore.get('live_paths', 0)}"
              + (f" (rate {erate})" if erate is not None else ""))
    if report_path:
        campaign.write(report_path)
        print(f"campaign report: {report_path}")


def _farm_identity(args) -> str:
    """Content identity of one farm invocation: the command, every
    semantic flag, and (for sweep) the corpus sources.  Output paths
    (--report, --trace, --profile) and cache directories are excluded
    — see :func:`_main_identity`."""
    exclude = {"trace", "metrics", "profile", "report", "store",
               "explore_store", "server"}
    parts = [f"{k}={v}" for k, v in sorted(vars(args).items())
             if k not in exclude]
    sources = []
    for path in getattr(args, "files", None) or []:
        try:
            with open(path) as f:
                sources.append(f.read())
        except OSError:
            sources.append("")
    return "\x00".join(["farm"] + parts + sources)


def farm_main(argv) -> int:
    args = build_farm_parser().parse_args(argv)
    try:
        models = _parse_models(args.models)
    except argparse.ArgumentTypeError as exc:
        print(f"cerberus-py farm: {exc}", file=sys.stderr)
        return 2
    with _obs_scope(args, _farm_identity(args)) as ctx:
        with obs.maybe_span(ctx, "campaign", command=args.command):
            code = _dispatch_farm(args, models)
    if args.metrics:
        _print_metrics(ctx)
    return code


def _dispatch_farm(args, models) -> int:
    if args.command == "suite":
        from .farm.campaign import suite_campaign
        names = [t.strip() for t in args.tests.split(",")
                 if t.strip()] if args.tests else None
        suite, campaign = suite_campaign(
            models, names, jobs=args.jobs, store=args.store,
            shard=args.shard, max_steps=args.max_steps,
            task_timeout=args.task_timeout)
        print(suite.table())
        s = campaign.summary
        print(f"{s['rows']} rows: {s['passed']} pass, "
              f"{s['failed']} fail, {s['flagged']} flag UB")
        _finish_campaign(campaign, args.report)
        return 1 if suite.failed() else 0

    if args.command == "csmith":
        from .farm.campaign import csmith_campaign
        seeds = None
        if args.seeds:
            try:
                seeds = [int(s) for s in args.seeds.split(",")
                         if s.strip()]
            except ValueError:
                print("cerberus-py farm: --seeds wants a "
                      "comma-separated integer list", file=sys.stderr)
                return 2
        if seeds is None and args.count is None:
            print("cerberus-py farm csmith: need --count or --seeds",
                  file=sys.stderr)
            return 2
        report, campaign = csmith_campaign(
            seeds=seeds, count=args.count, size=args.size,
            models=models, jobs=args.jobs, store=args.store,
            shard=args.shard, max_steps=args.max_steps,
            seed_base=args.seed_base, task_timeout=args.task_timeout)
        print(report.summary())
        _finish_campaign(campaign, args.report)
        return 0 if report.disagree == 0 and report.failed == 0 else 1

    # sweep
    from .farm.campaign import sweep_campaign
    programs = []
    for path in args.files:
        try:
            with open(path) as f:
                programs.append((path, f.read()))
        except OSError as exc:
            print(f"cerberus-py farm: {exc}", file=sys.stderr)
            return 2
    results, campaign = sweep_campaign(
        programs, models=models, jobs=args.jobs,
        mode="explore" if args.exhaustive else "run",
        store=args.store, shard=args.shard,
        max_steps=args.max_steps, max_paths=args.max_paths,
        strategy=args.strategy, por=args.por, seed=args.seed,
        explore_store=args.explore_store, resume=args.resume,
        static_prune=args.static_prune, lint=args.lint,
        backend=args.backend, task_timeout=args.task_timeout,
        server=args.server)
    for entry in campaign.results:
        for model, verdict in entry.get("verdicts", {}).items():
            print(f"{entry['program']:32s} {model:12s} {verdict}")
        for model, ex in entry.get("explorations", {}).items():
            print(f"{entry['program']:32s} {model:12s} "
                  f"{ex['paths']:4d} paths  "
                  + " | ".join(ex["behaviours"]))
        if entry.get("lint_filtered"):
            print(f"{entry['program']:32s} {'lint':12s} "
                  f"exploration skipped (definite static finding)")
        for finding in entry.get("lint", []):
            print(f"{entry['program']:32s} {'lint':12s} "
                  f"{finding['loc']}: {finding['severity']}: "
                  f"{finding['detail']}")
        if entry.get("error"):
            print(f"{entry['program']:32s} {'-':12s} "
                  f"error: {entry['error']}")
    _finish_campaign(campaign, args.report)
    any_ub = campaign.summary.get("ub", 0) > 0
    bad = any(not r.ok for r in results)
    return 1 if any_ub else (2 if bad else 0)


# -- the serve / submit subcommands --------------------------------------------

def build_serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py serve",
        description="Run the long-lived farm daemon "
                    "(repro.farm.server): a persistent worker pool "
                    "plus one artifact/exploration-record store "
                    "behind a JSON protocol on a unix socket.  "
                    "Identical in-flight submissions coalesce into "
                    "one computation; accepted jobs survive kill -9 "
                    "(the queue persists as store records and the "
                    "next incarnation resumes it); SIGTERM drains "
                    "gracefully.  Submit with 'cerberus-py submit'.")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="unix socket path to serve on (an existing "
                        "socket file is replaced)")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="artifact store directory: compiled "
                        "artifacts, exploration records, AND the "
                        "crash-safe job queue live here — restart "
                        "with the same DIR to resume accepted jobs")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="pre-warmed worker processes (default: 2)")
    p.add_argument("--quota", type=int, default=16, metavar="N",
                   help="max unfinished jobs per client name "
                        "(0 = unlimited; default: 16)")
    p.add_argument("--job-timeout", type=float, default=None,
                   metavar="S",
                   help="cooperative per-job wall-clock deadline "
                        "(exploration stops at the deadline)")
    p.add_argument("--hard-timeout", type=float, default=None,
                   metavar="S",
                   help="hard per-job backstop: a job silent this "
                        "long is reported job-timeout (default: "
                        "4x --job-timeout + 30 when that is set)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="S",
                   help="seconds to wait for in-flight jobs on "
                        "SIGTERM / shutdown (default: 30)")
    p.add_argument("--max-request-bytes", type=int,
                   default=8 * 1024 * 1024, metavar="N",
                   help="cap on one request line (and on submitted "
                        "source size); larger requests get a "
                        "structured 'oversized' error")
    _add_obs_flags(p)
    return p


def serve_main(argv) -> int:
    import asyncio
    from .farm.server import FarmServer
    args = build_serve_parser().parse_args(argv)
    server = FarmServer(args.socket, args.store,
                        workers=args.workers, quota=args.quota,
                        job_timeout=args.job_timeout,
                        hard_timeout=args.hard_timeout,
                        drain_timeout=args.drain_timeout,
                        max_request_bytes=args.max_request_bytes)
    identity = "\x00".join(["serve", str(args.workers),
                            str(args.quota), str(args.job_timeout)])

    async def _serve():
        resumed = await server.start()
        print(f"cerberus-py serve: listening on {args.socket} "
              f"({server.workers} workers"
              + (f", {resumed} jobs resumed" if resumed else "")
              + ")", file=sys.stderr, flush=True)
        await server.wait_closed()
        return server

    with _obs_scope(args, identity) as ctx:
        asyncio.run(_serve())
    c = server.counters
    print(f"cerberus-py serve: drained — {c['accepted']} accepted, "
          f"{c['jobs_completed']} completed, "
          f"{c['dedup_coalesced']} coalesced, "
          f"{c['resumed']} resumed", file=sys.stderr)
    if args.metrics:
        _print_metrics(ctx)
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py submit",
        description="Submit one C program to a running farm daemon "
                    "(cerberus-py serve) and print the verdicts.  "
                    "Exit codes: 0 ok, 1 UB found, 2 request/"
                    "protocol error (bad field, malformed input, "
                    "unknown model), 3 job failed or timed out, "
                    "4 quota exceeded, 5 server draining.")
    p.add_argument("file", help="C source file")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="the daemon's unix socket")
    p.add_argument("--models", default="all", metavar="M1,M2,...",
                   help="memory object models (or 'all')")
    p.add_argument("--impl", choices=["LP64", "ILP32"],
                   default="LP64")
    p.add_argument("--exhaustive", action="store_true",
                   help="explore all allowed executions per model "
                        "(mode=explore) instead of one run each")
    p.add_argument("--strategy", choices=sorted(STRATEGIES),
                   default="dfs")
    p.add_argument("--por", action="store_true")
    p.add_argument("--static-prune", action="store_true")
    p.add_argument("--backend", choices=["compiled", "tree"],
                   default="compiled")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--max-paths", type=int, default=500)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--lint", action="store_true",
                   help="attach static lint findings to the report")
    p.add_argument("--client", default="cli", metavar="NAME",
                   help="client name for the server's per-client "
                        "quota (default: cli)")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and exit without waiting "
                        "(poll later with another submit — identical "
                        "requests are served from the result cache)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="client-side wait bound (default: none; the "
                        "server's own job timeouts still apply)")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON response payload")
    return p


#: submit exit codes per structured server error code (anything
#: unlisted is a generic request error, exit 2).
_SUBMIT_EXIT_CODES = {
    "quota-exceeded": 4,
    "shutting-down": 5,
    "job-failed": 3,
    "job-timeout": 3,
}


def submit_main(argv) -> int:
    from .farm.client import FarmClient, ServerError
    args = build_submit_parser().parse_args(argv)
    try:
        models = _parse_models(args.models)
    except argparse.ArgumentTypeError as exc:
        print(f"cerberus-py submit: {exc}", file=sys.stderr)
        return 2
    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"cerberus-py submit: {exc}", file=sys.stderr)
        return 2
    client = FarmClient(args.socket, client=args.client,
                        wait_timeout=args.timeout)
    try:
        response = client.submit(
            source, name=args.file, models=models,
            mode="explore" if args.exhaustive else "run",
            impl=args.impl, strategy=args.strategy, por=args.por,
            static_prune=args.static_prune, backend=args.backend,
            max_steps=args.max_steps, max_paths=args.max_paths,
            seed=args.seed, lint=args.lint, wait=not args.no_wait)
    except ServerError as exc:
        print(f"cerberus-py submit: {exc.code}: {exc.detail}",
              file=sys.stderr)
        return _SUBMIT_EXIT_CODES.get(exc.code, 2)
    except (OSError, ConnectionError) as exc:
        print(f"cerberus-py submit: cannot reach server at "
              f"{args.socket}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    if args.no_wait:
        if not args.json:
            print(f"job {response['job']} {response['state']}"
                  + (" (coalesced)" if response.get("coalesced")
                     else "")
                  + (" (cached)" if response.get("cached") else ""))
        return 0
    return _render_submit_report(response, args.json)


def _render_submit_report(response: dict, as_json: bool) -> int:
    report = response.get("report") or {}
    if not report.get("ok"):
        error = report.get("error")
        if isinstance(error, dict):
            code = error.get("code", "job-failed")
            if not as_json:
                print(f"cerberus-py submit: {code}: "
                      f"{error.get('detail', '')}", file=sys.stderr)
            return _SUBMIT_EXIT_CODES.get(code, 3)
        if not as_json:
            print(f"cerberus-py submit: job failed: {error}",
                  file=sys.stderr)
        return 3
    any_ub = False
    statuses = set()
    for model, v in sorted(report.get("verdicts", {}).items()):
        statuses.add(v["status"])
        any_ub = any_ub or v["status"] == "ub"
        if not as_json:
            summary = f"UB[{v['ub']}]" if v["status"] == "ub" \
                else f"exit={v['exit_code']} stdout={v['stdout']!r}" \
                if v["status"] in ("done", "exit") else v["status"]
            print(f"{model:12s} {summary}")
    for model, e in sorted(report.get("explorations", {}).items()):
        any_ub = any_ub or e["has_ub"]
        if not as_json:
            print(f"{model:12s} {e['paths_run']:4d} paths  "
                  + " | ".join(e["behaviours"]))
    return 1 if any_ub else _exit_code_for(statuses, False)


# -- the stats subcommand ------------------------------------------------------

def build_stats_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="cerberus-py stats",
        description="Summarise a --trace JSON-lines file.  The "
                    "'phases' table aggregates spans per name (count, "
                    "total/mean/max wall seconds, CPU seconds) — the "
                    "biggest total is where the wall-clock goes; "
                    "'store' shows per-record-kind hit rates and "
                    "corruption counts; 'explorer' shows path "
                    "accounting plus sustained paths/sec and "
                    "steps/sec; 'timeline' entries are cumulative "
                    "paths over time.  Record types in the file: "
                    "meta (schema + content-derived run id), span "
                    "(name, t0 offset, wall_s, cpu_s, depth, attrs), "
                    "timeline (name + [t, value] points), metrics "
                    "(final counters/gauges/histograms, including "
                    "merged farm-worker metrics).  See repro.obs for "
                    "the full schema.")
    p.add_argument("trace", help="trace file written by --trace")
    p.add_argument("--json", action="store_true",
                   help="emit the full summary (including raw merged "
                        "metrics and timelines) as JSON")
    return p


def stats_main(argv) -> int:
    from .obs.stats import render_text, summarize_trace
    args = build_stats_parser().parse_args(argv)
    try:
        summary = summarize_trace(args.trace)
    except OSError as exc:
        print(f"cerberus-py stats: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_text(summary))
    except BrokenPipeError:
        # `stats t.jsonl | head` closing the pipe early is normal use
        sys.stderr.close()      # suppress the interpreter's warning
    return 0


if __name__ == "__main__":
    sys.exit(main())
