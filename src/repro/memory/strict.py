"""A strict ISO-leaning memory model.

Follows the letter of the standard wherever the de facto world is more
liberal: reading uninitialised objects is undefined behaviour (§2.4
option 1 — the reading tis-interpreter takes); relational comparison of
pointers to separately allocated objects is UB (§6.5.8p5, Q25);
inter-object subtraction is UB (§6.5.6p9, Q9); out-of-bounds pointer
*construction* is UB (§6.5.6p8, Q31); effective-type (TBAA) checking is
on (§6.5p7, Q73-Q81); integers do not carry provenance, so a pointer
cast from an integer has wildcard provenance only if it round-trips
exactly.
"""

from __future__ import annotations

from typing import Optional

from ..ctypes.implementation import Implementation
from ..ctypes.types import TagEnv
from .base import MemoryModel, MemoryOptions


class StrictIsoModel(MemoryModel):
    name = "strict-iso"

    def __init__(self, impl: Implementation, tags: TagEnv,
                 options: Optional[MemoryOptions] = None):
        opts = options or MemoryOptions(
            uninit_read="ub",
            check_provenance=True,
            reject_empty_provenance=True,
            allow_inter_object_relational=False,
            allow_inter_object_ptrdiff=False,
            allow_oob_construction=False,
            provenance_sensitive_equality=False,
            track_int_provenance=True,
            check_effective_types=True,
        )
        super().__init__(impl, tags, opts)
