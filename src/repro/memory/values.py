"""Memory-model value representations (paper §5.9).

"Pointer values and integer values all contain a provenance, either empty
(for the NULL pointer and pure integer values), the original allocation ID
of the object the value was derived from, or a wildcard (for pointers from
IO)." Memory values are trees (unspecified / integer / floating / pointer
/ array / struct / union), and the representation-byte form used in the
store is a sequence of :class:`AByte` — each byte carries its own
provenance so that user code copying pointer representation bytes
("directly or indirectly") preserves the original provenance (Q13-Q16,
§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from ..ctypes.implementation import Implementation
from ..ctypes.types import (
    Array, CType, Floating, Integer, IntKind, Pointer, QualType, StructRef,
    TagEnv, UnionRef,
)
from ..errors import InternalError


# --------------------------------------------------------------------------
# Provenance
# --------------------------------------------------------------------------

class _Wildcard:
    """Wildcard provenance (pointers from IO / opted-out pointers)."""

    _instance: Optional["_Wildcard"] = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "@wildcard"


# A provenance is: None (empty), an allocation id (int), or the wildcard.
Provenance = Union[None, int, _Wildcard]
PROV_EMPTY: Provenance = None
PROV_WILDCARD: Provenance = _Wildcard()


def combine_provenance(a: Provenance, b: Provenance) -> Provenance:
    """The at-most-one-provenance combination rule (§5.9): arithmetic of a
    provenanced value with a pure value keeps the provenance; two values
    with *distinct* provenances yield a pure value."""
    if a is PROV_EMPTY:
        return b
    if b is PROV_EMPTY:
        return a
    if a == b:
        return a
    return PROV_EMPTY


# --------------------------------------------------------------------------
# Scalar values
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class IntegerValue:
    """An integer value: a mathematical integer plus a provenance (Q5:
    "Our formal model associates provenances with all integer values")."""

    value: int
    prov: Provenance = PROV_EMPTY
    # CHERI: an integer that still carries full capability metadata
    # (uintptr_t); see memory/cheri.py.
    meta: Optional[object] = None

    def with_value(self, value: int) -> "IntegerValue":
        return replace(self, value=value)

    def pure(self) -> "IntegerValue":
        return IntegerValue(self.value)

    def __repr__(self) -> str:
        p = "" if self.prov is PROV_EMPTY else f"@{self.prov}"
        return f"{self.value}{p}"


@dataclass(frozen=True, slots=True)
class FloatingValue:
    value: float

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class PointerValue:
    """A pointer value: concrete address plus provenance (§2.1: "Abstract
    pointer values must also contain concrete addresses").

    ``meta`` carries model-specific payload (the CHERI capability)."""

    addr: int
    prov: Provenance = PROV_EMPTY
    meta: Optional[object] = None

    @property
    def is_null(self) -> bool:
        return self.addr == 0 and self.prov is PROV_EMPTY

    def with_addr(self, addr: int) -> "PointerValue":
        return replace(self, addr=addr)

    def __repr__(self) -> str:
        if self.is_null:
            return "NULL"
        p = "" if self.prov is PROV_EMPTY else f"@{self.prov}"
        return f"ptr(0x{self.addr:x}{p})"


NULL_POINTER = PointerValue(0, PROV_EMPTY)


# --------------------------------------------------------------------------
# Memory values (the trees stored/loaded by typed accesses)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class MemValue:
    pass


@dataclass(frozen=True)
class MVUnspecified(MemValue):
    ty: CType

    def __repr__(self) -> str:
        return f"unspec({self.ty})"


@dataclass(frozen=True)
class MVInteger(MemValue):
    ty: Integer
    ival: IntegerValue

    def __repr__(self) -> str:
        return f"{self.ival!r}:{self.ty}"


@dataclass(frozen=True)
class MVFloating(MemValue):
    ty: Floating
    fval: FloatingValue


@dataclass(frozen=True)
class MVPointer(MemValue):
    to: QualType
    ptr: PointerValue

    def __repr__(self) -> str:
        return f"{self.ptr!r}"


@dataclass(frozen=True)
class MVArray(MemValue):
    elem_ty: CType
    elems: Tuple[MemValue, ...]


@dataclass(frozen=True)
class MVStruct(MemValue):
    tag: str
    members: Tuple[Tuple[str, MemValue], ...]


@dataclass(frozen=True)
class MVUnion(MemValue):
    tag: str
    member: str
    value: MemValue


# --------------------------------------------------------------------------
# Abstract bytes
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class AByte:
    """One byte of the object representation.

    * ``value`` — the concrete byte, or None when unspecified
      (uninitialised memory / padding, §2.4-2.5);
    * ``prov`` — the provenance carried by this byte (per-byte so that
      byte-wise pointer copying works, §2.3);
    * ``ptr_frag`` — if this byte came from a pointer representation:
      (pointer value, byte index), letting models that cannot fabricate
      capabilities from raw bytes (CHERI) rebuild the pointer exactly.
    """

    value: Optional[int] = None
    prov: Provenance = PROV_EMPTY
    ptr_frag: Optional[Tuple[PointerValue, int]] = None

    @property
    def is_unspecified(self) -> bool:
        return self.value is None


UNSPEC_BYTE = AByte()

#: Interned pure bytes (no provenance, no fragment) — the common case
#: for every integer store; AByte is frozen, so sharing is safe.
_PURE_BYTES = tuple(AByte(i) for i in range(256))


# --------------------------------------------------------------------------
# repify / abstify: memory values <-> abstract bytes
# --------------------------------------------------------------------------

class ValueCodec:
    """Encoding/decoding of memory values to abstract byte sequences for a
    given implementation environment and tag table."""

    def __init__(self, impl: Implementation, tags: TagEnv):
        self.impl = impl
        self.tags = tags
        # Per-pointer-object representation cache: storing the same
        # (frozen) PointerValue repeatedly — a pointer argument passed
        # in a loop — re-creates identical fragment bytes each time.
        # The cached entry keeps the pointer alive so its id is stable;
        # callers never mutate repify results in place.
        self._ptr_rep: Dict[int, Tuple[PointerValue, List[AByte]]] = {}

    # -- encoding ------------------------------------------------------------

    def repify(self, ty: CType, value: MemValue) -> List[AByte]:
        """Object representation of ``value`` at type ``ty`` (§6.2.6.1)."""
        size = self.impl.sizeof(ty, self.tags)
        if isinstance(value, MVUnspecified):
            return [UNSPEC_BYTE] * size
        if isinstance(value, MVInteger):
            return self._rep_integer(value.ival, size)
        if isinstance(value, MVFloating):
            return self._rep_float(value.fval, size)
        if isinstance(value, MVPointer):
            return self._rep_pointer(value.ptr, size)
        if isinstance(value, MVArray):
            assert isinstance(ty, Array)
            out: List[AByte] = []
            for elem in value.elems:
                out.extend(self.repify(ty.of.ty, elem))
            if len(out) < size:
                out.extend([UNSPEC_BYTE] * (size - len(out)))
            return out
        if isinstance(value, MVStruct):
            assert isinstance(ty, StructRef)
            lay = self.impl.layout(ty, self.tags)
            out = [UNSPEC_BYTE] * size  # padding bytes unspecified
            values = dict(value.members)
            for f in lay.fields:
                if f.name not in values:
                    continue
                mv = values[f.name]
                if f.bit_width is not None:
                    if not isinstance(mv, MVInteger):
                        continue  # unspecified bit-field: bytes stay so
                    _insert_bits(out, f.offset * 8 + f.bit_offset,
                                 f.bit_width, mv.ival.value)
                    continue
                enc = self.repify(f.qty.ty, mv)
                out[f.offset:f.offset + len(enc)] = enc
            return out
        if isinstance(value, MVUnion):
            assert isinstance(ty, UnionRef)
            defn = self.tags.require(ty.tag)
            member = defn.member(value.member)
            if member is None:
                raise InternalError(f"union member {value.member} missing")
            if member.bit_width is not None:
                out = [UNSPEC_BYTE] * size
                if isinstance(value.value, MVInteger):
                    _insert_bits(out, 0, member.bit_width,
                                 value.value.ival.value)
                return out
            enc = self.repify(member.qty.ty, value.value)
            return enc + [UNSPEC_BYTE] * (size - len(enc))
        raise InternalError(f"repify: unhandled {type(value).__name__}")

    def _rep_integer(self, ival: IntegerValue, size: int) -> List[AByte]:
        w = size * 8
        raw = ival.value & ((1 << w) - 1)
        data = raw.to_bytes(size, "little" if self.impl.little_endian
                            else "big")
        if ival.meta is not None:
            # A capability-carrying integer (CHERI uintptr_t): keep the
            # metadata alive across the byte round-trip via a carrier
            # fragment, as the hardware does via tagged memory.
            carrier = PointerValue(ival.value, ival.prov,
                                   meta=ival.meta)
            return [AByte(b, ival.prov, (carrier, i))
                    for i, b in enumerate(data)]
        if ival.prov is PROV_EMPTY:
            pure = _PURE_BYTES
            return [pure[b] for b in data]
        return [AByte(b, ival.prov) for b in data]

    def _rep_float(self, fval: FloatingValue, size: int) -> List[AByte]:
        import struct
        if size == 4:
            data = struct.pack("<f", fval.value)
        elif size == 8:
            data = struct.pack("<d", fval.value)
        else:  # long double: stored as 8-byte double + unspecified pad
            data = struct.pack("<d", fval.value) + b"\x00" * (size - 8)
        return [AByte(b) for b in data]

    def _rep_pointer(self, ptr: PointerValue, size: int) -> List[AByte]:
        hit = self._ptr_rep.get(id(ptr))
        if hit is not None and hit[0] is ptr and len(hit[1]) == size:
            return hit[1]
        addr_size = min(size, 8)
        data = (ptr.addr & ((1 << (addr_size * 8)) - 1)).to_bytes(
            addr_size, "little" if self.impl.little_endian else "big")
        out = [AByte(b, ptr.prov, (ptr, i)) for i, b in enumerate(data)]
        # Capability pointers are wider than the address: metadata bytes.
        for i in range(addr_size, size):
            out.append(AByte(0, ptr.prov, (ptr, i)))
        if len(self._ptr_rep) > 4096:
            self._ptr_rep.clear()
        self._ptr_rep[id(ptr)] = (ptr, out)
        return out

    # -- decoding ------------------------------------------------------------

    def abstify(self, ty: CType, data: List[AByte]) -> MemValue:
        """Recover a memory value of type ``ty`` from representation
        bytes; unspecified bytes poison scalars to MVUnspecified."""
        if isinstance(ty, Integer):
            return self._abst_integer(ty, data)
        if isinstance(ty, Floating):
            return self._abst_float(ty, data)
        if isinstance(ty, Pointer):
            return self._abst_pointer(ty, data)
        if isinstance(ty, Array):
            assert ty.size is not None
            esize = self.impl.sizeof(ty.of.ty, self.tags)
            elems = tuple(
                self.abstify(ty.of.ty, data[i * esize:(i + 1) * esize])
                for i in range(ty.size))
            return MVArray(ty.of.ty, elems)
        if isinstance(ty, StructRef):
            lay = self.impl.layout(ty, self.tags)
            members = []
            for f in lay.fields:
                if f.bit_width is not None:
                    members.append((f.name, self._abst_bits(
                        f.qty.ty, data,
                        f.offset * 8 + f.bit_offset, f.bit_width)))
                    continue
                msize = self.impl.sizeof(f.qty.ty, self.tags)
                members.append((f.name, self.abstify(
                    f.qty.ty, data[f.offset:f.offset + msize])))
            return MVStruct(ty.tag, tuple(members))
        if isinstance(ty, UnionRef):
            defn = self.tags.require(ty.tag)
            member = next((m for m in defn.members
                           if m.name is not None), None)
            if member is None:
                return MVUnspecified(ty)
            if member.bit_width is not None:
                return MVUnion(ty.tag, member.name, self._abst_bits(
                    member.qty.ty, data, 0, member.bit_width))
            msize = self.impl.sizeof(member.qty.ty, self.tags)
            return MVUnion(ty.tag, member.name,
                           self.abstify(member.qty.ty, data[:msize]))
        raise InternalError(f"abstify: unhandled type {ty}")

    def _abst_bits(self, ty: CType, data: List[AByte], bit_pos: int,
                   width: int) -> MemValue:
        """Decode one bit-field from representation bytes."""
        assert isinstance(ty, Integer)
        raw = _extract_bits(data, bit_pos, width)
        if raw is None:
            return MVUnspecified(ty)
        if self.impl.is_signed(ty.kind) and \
                ty.kind is not IntKind.BOOL and (raw >> (width - 1)) & 1:
            raw -= 1 << width
        return MVInteger(ty, IntegerValue(raw))

    def _abst_integer(self, ty: Integer, data: List[AByte]) -> MemValue:
        # Hot path (one call per integer load): the unspecified check,
        # byte extraction, and purity test are fused into one pass so
        # the provenance/fragment scans only run when a byte carries
        # either.
        vals = []
        pure = True
        for b in data:
            if b.value is None:
                return MVUnspecified(ty)
            vals.append(b.value)
            if b.prov is not PROV_EMPTY or b.ptr_frag is not None:
                pure = False
        value = int.from_bytes(bytes(vals),
                               "little" if self.impl.little_endian
                               else "big")
        if self.impl.is_signed(ty.kind):
            w = len(data) * 8
            if value >= (1 << (w - 1)):
                value -= 1 << w
        if pure:
            return MVInteger(ty, IntegerValue(value))
        prov = _combined_byte_provenance(data)
        meta = None
        frag = _whole_pointer_fragment(data)
        if frag is not None:
            # A bytewise-copied pointer read at integer type: carry the
            # capability (CHERI) or the pointer fragment itself.
            if frag.meta is not None and not isinstance(frag.meta,
                                                        tuple):
                meta = frag.meta
            else:
                meta = frag
        return MVInteger(ty, IntegerValue(value, prov, meta))

    def _abst_float(self, ty: Floating, data: List[AByte]) -> MemValue:
        import struct
        if any(b.is_unspecified for b in data):
            return MVUnspecified(ty)
        raw = bytes(b.value for b in data)  # type: ignore[misc]
        if len(raw) == 4:
            value = struct.unpack("<f", raw)[0]
        else:
            value = struct.unpack("<d", raw[:8])[0]
        return MVFloating(ty, FloatingValue(value))

    def _abst_pointer(self, ty: Pointer, data: List[AByte]) -> MemValue:
        for b in data:
            if b.value is None:
                return MVUnspecified(ty)
        frag = _whole_pointer_fragment(data)
        if frag is not None:
            return MVPointer(ty.to, frag)
        addr_size = min(len(data), 8)
        raw = bytes(b.value for b in data[:addr_size])  # type: ignore[misc]
        addr = int.from_bytes(raw, "little" if self.impl.little_endian
                              else "big")
        prov = _combined_byte_provenance(data)
        return MVPointer(ty.to, PointerValue(addr, prov))


def _insert_bits(out: List[AByte], bit_pos: int, width: int,
                 value: int) -> None:
    """Read-modify-write ``width`` bits of ``value`` into the byte list
    at absolute (little-endian) bit position ``bit_pos``, preserving
    every other bit.  An unspecified target byte materialises with its
    non-field bits zero (the byte-granular representation cannot keep
    individual bits indeterminate)."""
    field = value & ((1 << width) - 1)
    first = bit_pos // 8
    last = (bit_pos + width - 1) // 8
    for i in range(first, last + 1):
        lo = max(bit_pos, i * 8)
        hi = min(bit_pos + width, (i + 1) * 8)
        byte_mask = ((1 << (hi - i * 8)) - 1) ^ ((1 << (lo - i * 8)) - 1)
        cur = out[i]
        base = 0 if cur.is_unspecified else cur.value
        chunk = ((field >> (lo - bit_pos)) << (lo - i * 8)) & byte_mask
        out[i] = AByte((base & ~byte_mask) | chunk)


def _extract_bits(data: List[AByte], bit_pos: int,
                  width: int) -> Optional[int]:
    """Read ``width`` bits at ``bit_pos`` from representation bytes;
    None when any byte the field's bits touch is unspecified."""
    first = bit_pos // 8
    last = (bit_pos + width - 1) // 8
    if any(b.is_unspecified for b in data[first:last + 1]):
        return None
    raw = 0
    for i in range(first, last + 1):
        raw |= data[i].value << ((i - first) * 8)  # type: ignore[operator]
    return (raw >> (bit_pos - first * 8)) & ((1 << width) - 1)


def _combined_byte_provenance(data: List[AByte]) -> Provenance:
    """All bytes agreeing on one allocation id -> that id; any mixture ->
    empty (the access-time check will then fail in provenance models)."""
    prov = PROV_EMPTY
    for b in data:
        p = b.prov
        if p is PROV_EMPTY or p is prov:
            continue
        if prov is PROV_EMPTY:
            prov = p
        elif p != prov:
            return PROV_EMPTY
    return prov


def _whole_pointer_fragment(data: List[AByte]) -> Optional[PointerValue]:
    """If the bytes are exactly the in-order fragments of one pointer
    value, return it (exact bytewise pointer copy)."""
    if not data or data[0].ptr_frag is None:
        return None
    ptr, idx0 = data[0].ptr_frag
    if idx0 != 0:
        return None
    for i, b in enumerate(data):
        if b.ptr_frag is None:
            return None
        p, idx = b.ptr_frag
        if idx != i or p is not ptr and p != ptr:
            return None
    return ptr


def zero_value(ty: CType, impl: Implementation, tags: TagEnv) -> MemValue:
    """The static zero-initialisation value for a type (§6.7.9p10)."""
    if isinstance(ty, Integer):
        return MVInteger(ty, IntegerValue(0))
    if isinstance(ty, Floating):
        return MVFloating(ty, FloatingValue(0.0))
    if isinstance(ty, Pointer):
        return MVPointer(ty.to, NULL_POINTER)
    if isinstance(ty, Array):
        assert ty.size is not None
        elem = zero_value(ty.of.ty, impl, tags)
        return MVArray(ty.of.ty, tuple(elem for _ in range(ty.size)))
    if isinstance(ty, StructRef):
        defn = tags.require(ty.tag)
        return MVStruct(ty.tag, tuple(
            (m.name, zero_value(m.qty.ty, impl, tags))
            for m in defn.members if m.name is not None))
    if isinstance(ty, UnionRef):
        defn = tags.require(ty.tag)
        m = next((m for m in defn.members if m.name is not None), None)
        if m is None:
            return MVUnspecified(ty)
        return MVUnion(ty.tag, m.name, zero_value(m.qty.ty, impl, tags))
    raise InternalError(f"zero_value: unhandled type {ty}")
