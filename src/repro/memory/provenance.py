"""The candidate de facto memory object model (paper §5.9).

Pointer and integer values carry a provenance (empty / allocation id /
wildcard). Accesses check that the address is consistent with the
pointer's provenance (the DR260 licence); arbitrary transient
out-of-bounds pointer *construction* is permitted (Q31), with undefined
behaviour only on a failing access-time check; provenance flows through
casts to integer types and integer arithmetic (Q5) and through
representation-byte copies (Q13-Q16, §2.3), but not through control flow;
relational comparison of pointers to different objects is permitted,
ignoring provenance (Q25); inter-object subtraction yields a pure integer
whose use across objects is forbidden (Q9 — "for the moment our candidate
formal model forbids this idiom").
"""

from __future__ import annotations

from typing import Optional

from ..ctypes.implementation import Implementation
from ..ctypes.types import TagEnv
from .base import MemoryModel, MemoryOptions


class ProvenanceModel(MemoryModel):
    name = "provenance"

    def __init__(self, impl: Implementation, tags: TagEnv,
                 options: Optional[MemoryOptions] = None):
        opts = options or MemoryOptions(
            uninit_read="unspecified",
            check_provenance=True,
            reject_empty_provenance=False,
            allow_inter_object_relational=True,
            allow_inter_object_ptrdiff=False,
            allow_oob_construction=True,
            provenance_sensitive_equality=False,
            track_int_provenance=True,
            check_effective_types=False,
        )
        super().__init__(impl, tags, opts)


class GccPersonaModel(MemoryModel):
    """A 'GCC-like' persona: the provenance model plus the observable
    optimisation licences the paper attributes to GCC — provenance-
    sensitive equality within a translation unit (Q2) and points-to
    reasoning that breaks inter-object arithmetic (Q9)."""

    name = "gcc-persona"

    def __init__(self, impl: Implementation, tags: TagEnv,
                 options: Optional[MemoryOptions] = None):
        opts = options or MemoryOptions(
            uninit_read="unspecified",
            check_provenance=True,
            allow_inter_object_relational=True,
            allow_inter_object_ptrdiff=False,
            allow_oob_construction=True,
            provenance_sensitive_equality=True,
            track_int_provenance=True,
            check_effective_types=True,
        )
        super().__init__(impl, tags, opts)
