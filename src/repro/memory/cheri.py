"""A CHERI-capability memory model (paper §4).

Pointers are unforgeable, bounds-checked capabilities: (base, length,
offset, tag, perms). The model reproduces the paper's findings on the
pre-fix CHERI implementation:

* **Equality bug**: pointer ``==`` compared only the addresses, so two
  pointers with different provenance (different capabilities) compared
  equal but were not interchangeable. The fix added a
  compare-exactly-equal instruction; ``CheriModel(exact_equality=True)``
  models the fixed behaviour.
* **uintptr_t masking bug**: ``(i & 3u)`` where ``i`` is a ``uintptr_t``
  evaluated to false even with zero low address bits, because the result
  was the fat pointer ``i`` with its *offset* anded with 3 (a non-zero
  address). ``int_binop`` reproduces this offset-arithmetic semantics.
* **Left-biased provenance**: non-``intptr_t`` integers carry no pointer
  provenance, and provenance in arithmetic is inherited only from the
  left-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..ctypes.implementation import CHERI128, Implementation
from ..ctypes.types import CType, Integer, IntKind, QualType, TagEnv
from .. import ub
from .base import (
    Allocation, MemoryError_, MemoryModel, MemoryOptions, Footprint,
)
from .values import (
    IntegerValue, MemValue, NULL_POINTER, PointerValue, PROV_EMPTY,
)


@dataclass(frozen=True)
class Capability:
    """A 128-bit CHERI capability (uncompressed model)."""

    base: int
    length: int
    offset: int
    tag: bool = True
    perms: str = "rw"

    @property
    def address(self) -> int:
        return self.base + self.offset

    def with_offset(self, offset: int) -> "Capability":
        return replace(self, offset=offset)

    def in_bounds(self, size: int) -> bool:
        return 0 <= self.offset and self.offset + size <= self.length

    def __repr__(self) -> str:
        t = "t" if self.tag else "-"
        return (f"cap[{t} 0x{self.base:x}+{self.offset} "
                f"len={self.length}]")


class CheriModel(MemoryModel):
    """CHERI C: every pointer carries a capability in ``meta``."""

    name = "cheri"

    def __init__(self, impl: Implementation = CHERI128,
                 tags: Optional[TagEnv] = None,
                 options: Optional[MemoryOptions] = None,
                 exact_equality: bool = False):
        opts = options or MemoryOptions(
            uninit_read="unspecified",
            check_provenance=True,
            allow_inter_object_relational=True,
            allow_inter_object_ptrdiff=False,
            allow_oob_construction=True,   # construction ok; deref traps
            track_int_provenance=True,
            check_effective_types=False,
        )
        super().__init__(impl, tags if tags is not None else TagEnv(),
                         opts)
        # False reproduces the pre-fix behaviour the paper reports.
        self.exact_equality = exact_equality

    # -- capability plumbing -----------------------------------------------------

    def make_pointer(self, alloc: Allocation) -> PointerValue:
        cap = Capability(alloc.base, alloc.size, 0)
        return PointerValue(alloc.base, alloc.aid, meta=cap)

    def _shift(self, ptr: PointerValue, delta: int) -> PointerValue:
        cap = ptr.meta
        new_addr = ptr.addr + delta
        if isinstance(cap, Capability):
            return PointerValue(new_addr, ptr.prov,
                                meta=cap.with_offset(cap.offset + delta))
        return ptr.with_addr(new_addr)

    def array_shift(self, ptr: PointerValue, elem_ty: CType,
                    index: IntegerValue) -> PointerValue:
        esize = self.impl.sizeof(elem_ty, self.tags)
        return self._shift(ptr, esize * index.value)

    def member_shift(self, ptr: PointerValue, tag: str,
                     member: str) -> PointerValue:
        from ..ctypes.types import StructRef, UnionRef
        defn = self.tags.require(tag)
        ref = UnionRef(tag) if defn.is_union else StructRef(tag)
        off = self.impl.offsetof(ref, member, self.tags)
        return self._shift(ptr, off)

    # -- access checks are capability checks ----------------------------------------

    def _locate(self, ptr: PointerValue, size: int,
                writing: bool) -> Allocation:
        cap = ptr.meta
        if isinstance(cap, Capability):
            if not cap.tag:
                raise MemoryError_(
                    ub.ACCESS_EMPTY_PROVENANCE,
                    "capability tag violation (untagged capability "
                    "dereference)")
            if not cap.in_bounds(size):
                raise MemoryError_(
                    ub.ACCESS_OUT_OF_BOUNDS,
                    f"capability bounds violation: offset {cap.offset} "
                    f"size {size} length {cap.length}")
        elif ptr.addr != 0:
            raise MemoryError_(
                ub.ACCESS_EMPTY_PROVENANCE,
                "dereference of non-capability pointer value")
        return super()._locate(ptr, size, writing)

    # -- integer interaction: the §4 findings -------------------------------------------

    def int_from_ptr(self, ptr: PointerValue,
                     to: Integer) -> IntegerValue:
        # uintptr_t/intptr_t keep the capability; narrower integer types
        # do not carry pointer provenance (paper §4: "its non-intptr_t
        # integer values do not carry pointer provenance").
        if to.kind in (IntKind.ULONG, IntKind.LONG):
            return IntegerValue(ptr.addr, ptr.prov, meta=ptr.meta)
        return IntegerValue(ptr.addr)

    def ptr_from_int(self, iv: IntegerValue) -> PointerValue:
        if isinstance(iv.meta, Capability):
            cap = iv.meta
            return PointerValue(cap.address,
                                iv.prov if iv.prov is not PROV_EMPTY
                                else PROV_EMPTY, meta=cap)
        if iv.value == 0:
            return NULL_POINTER
        # A pointer fabricated from a plain integer: untagged capability.
        return PointerValue(iv.value, PROV_EMPTY,
                            meta=Capability(iv.value, 0, 0, tag=False))

    def int_binop(self, op: str, a: IntegerValue, b: IntegerValue,
                  math_result: int) -> Optional[IntegerValue]:
        """Hook consulted by the evaluator for integer arithmetic on
        capability-carrying integers (uintptr_t).

        Reproduces the masking bug: bitwise ops apply to the *offset*
        of the capability, so the resulting uintptr_t's value is
        ``base + (offset OP operand)``, not ``address OP operand``.
        Provenance/capability is inherited from the left operand only.
        """
        cap_a = a.meta if isinstance(a.meta, Capability) else None
        cap_b = b.meta if isinstance(b.meta, Capability) else None
        if cap_a is None and cap_b is None:
            return None  # plain integers: default mathematical result
        if op in ("&", "|", "^", "<<", ">>"):
            if cap_a is not None:
                table = {
                    "&": cap_a.offset & b.value,
                    "|": cap_a.offset | b.value,
                    "^": cap_a.offset ^ b.value,
                    "<<": cap_a.offset << min(b.value, 64),
                    ">>": cap_a.offset >> min(b.value, 64),
                }
                new_cap = cap_a.with_offset(table[op])
                return IntegerValue(new_cap.address, a.prov, meta=new_cap)
            return IntegerValue(math_result)  # rhs capability dropped
        if op in ("+", "-"):
            if cap_a is not None:
                delta = b.value if op == "+" else -b.value
                new_cap = cap_a.with_offset(cap_a.offset + delta)
                return IntegerValue(new_cap.address, a.prov, meta=new_cap)
            return IntegerValue(math_result)
        return IntegerValue(math_result)

    # -- comparisons -----------------------------------------------------------------------

    def eq(self, a: PointerValue, b: PointerValue) -> int:
        if not self.exact_equality:
            # Pre-fix behaviour: address-only comparison (the bug).
            return int(a.addr == b.addr)
        # Fixed: compare address *and* metadata (CExEq).
        return int(a.addr == b.addr and a.meta == b.meta)
