"""The concrete memory model: raw address semantics.

This model performs no provenance checking at all — an access succeeds
whenever its footprint lies inside *some* live allocation. It plays the
role of "what a naive compilation to hardware does" in the experiments:
for the DR260 example of paper §2.1 it yields the concrete outcome
``x=1 y=11 *p=11 *q=11`` where the provenance model flags undefined
behaviour and GCC's optimised code prints ``y=2``.
"""

from __future__ import annotations

from typing import Optional

from ..ctypes.implementation import Implementation
from ..ctypes.types import TagEnv
from .base import MemoryModel, MemoryOptions


class ConcreteModel(MemoryModel):
    name = "concrete"

    def __init__(self, impl: Implementation, tags: TagEnv,
                 options: Optional[MemoryOptions] = None):
        opts = options or MemoryOptions(
            uninit_read="stable",
            check_provenance=False,
            allow_inter_object_relational=True,
            allow_inter_object_ptrdiff=True,
            allow_oob_construction=True,
            track_int_provenance=False,
            check_effective_types=False,
        )
        super().__init__(impl, tags, opts)
