"""The memory object model interface and its reference machinery.

The Core dynamics calls into a :class:`MemoryModel` for every create /
kill / load / store action and for every pointer operation that involves
the memory state (paper Fig. 2: ``ptrop``). All four concrete models in
this package share this machinery and differ mostly in their
:class:`MemoryOptions` — the knobs correspond directly to the de facto
questions of paper §2 (Q2, Q5, Q9, Q25, Q31, Q48-Q59, Q62, Q73-Q81...).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..ctypes.implementation import Implementation
from ..ctypes.types import (
    Array, CType, Integer, IntKind, Pointer, QualType, StructRef, TagEnv,
    UnionRef, is_character,
)
from ..errors import InternalError
from .. import ub
from .values import (
    AByte, IntegerValue, MemValue, MVInteger, MVPointer, MVStruct,
    MVUnion, MVUnspecified, NULL_POINTER, PointerValue, PROV_EMPTY,
    PROV_WILDCARD, Provenance, UNSPEC_BYTE, ValueCodec, zero_value,
)


# The model's allocation bound for one variable length array object:
# a VLA whose byte size exceeds this is reported as the dedicated
# VLA_size_too_large undefined behaviour (the de facto stack-overflow
# outcome) rather than materialising an absurd byte store.
VLA_CAP_BYTES = 1 << 26


class MemoryError_(Exception):
    """An undefined behaviour detected by the memory model; the driver
    re-raises it as :class:`repro.ub.UndefinedBehaviour` with the C
    source location attached."""

    def __init__(self, entry: ub.UBName, detail: str = ""):
        self.entry = entry
        self.detail = detail
        super().__init__(f"{entry.name}: {detail}")


@dataclass(frozen=True, slots=True)
class Footprint:
    """The byte footprint of one memory action."""

    addr: int
    size: int

    def overlaps(self, other: "Footprint") -> bool:
        return (self.addr < other.addr + other.size
                and other.addr < self.addr + self.size)


class AllocationKind:
    STATIC = "static"
    AUTOMATIC = "automatic"
    DYNAMIC = "dynamic"


@dataclass(slots=True)
class Allocation:
    aid: int
    base: int
    size: int
    kind: str
    name: str
    align: int
    declared_ty: Optional[CType]
    alive: bool = True
    readonly: bool = False
    data: List[AByte] = field(default_factory=list)
    # Effective-type tracking (§6.5p6-7), used by the strict model: the
    # effective type of the whole allocation or of sub-ranges, recorded as
    # offset -> type of the last non-character store.
    effective: Dict[int, CType] = field(default_factory=dict)

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.base + self.size

    def one_past(self, addr: int) -> bool:
        return addr == self.base + self.size


@dataclass
class MemoryOptions:
    """Semantic knobs, each tied to design-space questions of §2."""

    # Q48/Q49 (§2.4): reading an uninitialised object —
    # "ub" (option 1), "unspecified" (options 2/3: propagate an
    # unspecified value daemonically), or "stable" (option 4: materialise
    # an arbitrary-but-stable concrete value on first read).
    uninit_read: str = "unspecified"
    # §2.5 padding: what a *member* store does to subsequent padding —
    # "keep" (option 4), "unspec" (option 2), "zero" (option 3).
    padding_on_member_store: str = "keep"
    # Q25 [7/15]: relational comparison of pointers to different objects.
    allow_inter_object_relational: bool = True
    # Q9: pointer subtraction across objects.
    allow_inter_object_ptrdiff: bool = False
    # Q31 [9/15]: transient out-of-bounds pointer construction.
    allow_oob_construction: bool = True
    # Q2: may == take provenance into account (nondeterministically)?
    provenance_sensitive_equality: bool = False
    # Q5: track provenance through integers (GCC-documented cast rule).
    track_int_provenance: bool = True
    # Whether access-time checks consult provenance at all (the concrete
    # model turns this off: raw address semantics).
    check_provenance: bool = False
    # Effective types (§2.6, Q73-Q81): TBAA-style checking. The candidate
    # de facto model keeps this off (-fno-strict-aliasing world).
    check_effective_types: bool = False
    # Whether reads through pointers with empty provenance trap.
    reject_empty_provenance: bool = False
    # Null/invalid-address accesses always trap (all models).
    # Lay out file-scope objects in reverse declaration order (matching
    # the GCC placement observed for the paper's DR260 example, where
    # `int y=2, x=1;` puts x immediately below y).
    globals_reversed: bool = True
    # Address bases per storage kind (quasi-realistic split layout).
    static_base: int = 0x1000
    stack_base: int = 0x7FFF_0000
    heap_base: int = 0x4000_0000

    def clone(self, **kw) -> "MemoryOptions":
        return replace(self, **kw)


class MemoryModel:
    """The shared reference implementation; subclasses tune options and
    override hooks."""

    name = "base"

    def __init__(self, impl: Implementation, tags: TagEnv,
                 options: Optional[MemoryOptions] = None):
        self.impl = impl
        self.tags = tags
        self.options = options or MemoryOptions()
        self.codec = ValueCodec(impl, tags)
        self.allocations: Dict[int, Allocation] = {}
        # Live subset of ``allocations``: address-based lookups must not
        # scan the (ever-growing) dead majority on every access.
        self._live: Dict[int, Allocation] = {}
        # Most-recently-hit allocation: accesses cluster heavily on one
        # object (loop counters, accumulators), so check it first.
        self._last_hit: Optional[Allocation] = None
        self._next_aid = 1
        self._static_top = self.options.static_base
        self._stack_top = self.options.stack_base
        self._heap_top = self.options.heap_base
        # Oracle for model-level nondeterminism (set by the driver).
        self.choose: Callable[[str, int], int] = lambda tag, n: 0
        # "stable" uninit materialisation counter (deterministic pattern).
        self._stable_seed = 0xA5
        # Per-type-object size/align cache for the access hot path; the
        # cached entry keeps the type alive so its id cannot be reused.
        self._ty_cache: Dict[int, tuple] = {}
        # Access fast-path flags, fixed at construction (options are
        # never mutated after init).  A model that neither checks
        # provenance nor overrides ``_locate`` lets load/store resolve
        # the target allocation straight from the MRU hit; the other
        # two skip the per-access calls into checks their options turn
        # into no-ops.
        self._plain_locate = (
            type(self)._locate is MemoryModel._locate
            and not self.options.check_provenance)
        self._check_et = self.options.check_effective_types
        self._pad_keep = self.options.padding_on_member_store == "keep"

    def _size_align(self, ty: CType) -> Tuple[int, int]:
        hit = self._ty_cache.get(id(ty))
        if hit is None:
            hit = (ty, self.impl.sizeof(ty, self.tags),
                   self.impl.alignof(ty, self.tags))
            self._ty_cache[id(ty)] = hit
        return hit[1], hit[2]

    # -- snapshots (exhaustive exploration) ------------------------------------

    def snapshot(self) -> dict:
        return {
            "allocations": copy.deepcopy(self.allocations),
            "next_aid": self._next_aid,
            "static_top": self._static_top,
            "stack_top": self._stack_top,
            "heap_top": self._heap_top,
            "stable_seed": self._stable_seed,
        }

    def restore(self, snap: dict) -> None:
        self.allocations = copy.deepcopy(snap["allocations"])
        self._live = {aid: a for aid, a in self.allocations.items()
                      if a.alive}
        self._last_hit = None
        self._next_aid = snap["next_aid"]
        self._static_top = snap["static_top"]
        self._stack_top = snap["stack_top"]
        self._heap_top = snap["heap_top"]
        self._stable_seed = snap["stable_seed"]

    # -- allocation --------------------------------------------------------------

    def _align_up(self, addr: int, align: int) -> int:
        return (addr + align - 1) // align * align

    def create(self, ty: CType, align: int, name: str,
               kind: str = AllocationKind.AUTOMATIC,
               readonly: bool = False,
               initial: Optional[MemValue] = None) -> PointerValue:
        """The Core ``create`` action: a typed object allocation."""
        size = self.impl.sizeof(ty, self.tags)
        return self._allocate(size, align, name, kind, ty, readonly,
                              initial)

    def alloc_region(self, size: int, align: int,
                     name: str = "malloc") -> PointerValue:
        """The Core ``alloc`` action (malloc-style untyped region)."""
        return self._allocate(size, align, name, AllocationKind.DYNAMIC,
                              None, False, None)

    def _allocate(self, size: int, align: int, name: str, kind: str,
                  ty: Optional[CType], readonly: bool,
                  initial: Optional[MemValue]) -> PointerValue:
        aid = self._next_aid
        self._next_aid += 1
        align = max(align, 1)
        if size >= 16:
            # De facto: linkers and allocators align largeish objects to
            # 16 bytes, which is what lets the Q75 char-array-as-heap
            # idiom work on real implementations.
            align = max(align, 16)
        if kind == AllocationKind.STATIC:
            base = self._align_up(self._static_top, align)
            self._static_top = base + max(size, 1)
        elif kind == AllocationKind.DYNAMIC:
            base = self._align_up(self._heap_top, align)
            self._heap_top = base + max(size, 1) + 16  # red zone
        else:
            base = self._align_up(self._stack_top, align)
            self._stack_top = base + max(size, 1)
        data: List[AByte]
        if initial is not None and ty is not None:
            # Copy: repify may return a cached (shared) byte list, and
            # this list becomes the allocation's mutable buffer.
            data = list(self.codec.repify(ty, initial))
        else:
            data = [UNSPEC_BYTE] * size
        alloc = Allocation(aid, base, size, kind, name, align, ty,
                           data=data, readonly=readonly)
        self.allocations[aid] = alloc
        self._live[aid] = alloc
        if ty is not None:
            alloc.effective[0] = ty
        return self.make_pointer(alloc)

    def make_pointer(self, alloc: Allocation) -> PointerValue:
        return PointerValue(alloc.base, alloc.aid
                            if self._models_provenance() else alloc.aid)

    def _models_provenance(self) -> bool:
        return True  # provenance is always *recorded*; checking varies

    def kill(self, ptr: PointerValue, dyn: bool) -> None:
        """End an object's lifetime (Core ``kill``)."""
        alloc = self._find_allocation_for_kill(ptr, dyn)
        if dyn:
            if alloc is None:
                if ptr.is_null:
                    return  # free(NULL) is a no-op (§7.22.3.3p2)
                raise MemoryError_(ub.FREE_INVALID_POINTER,
                                   f"free of {ptr!r}")
            if alloc.kind != AllocationKind.DYNAMIC or \
                    alloc.base != ptr.addr:
                raise MemoryError_(ub.FREE_INVALID_POINTER,
                                   f"free of {ptr!r}")
            if not alloc.alive:
                raise MemoryError_(ub.FREE_INVALID_POINTER,
                                   f"double free of {ptr!r}")
        if alloc is None:
            raise MemoryError_(ub.ACCESS_DEAD_OBJECT,
                               f"kill of unknown object {ptr!r}")
        alloc.alive = False
        self._live.pop(alloc.aid, None)

    def _find_allocation_for_kill(self, ptr: PointerValue,
                                  dyn: bool) -> Optional[Allocation]:
        if isinstance(ptr.prov, int):
            return self.allocations.get(ptr.prov)
        for alloc in self._live.values():
            if alloc.base == ptr.addr:
                return alloc
        return None

    # -- access checking -----------------------------------------------------------

    def _locate(self, ptr: PointerValue, size: int,
                writing: bool) -> Allocation:
        """Find the allocation an access goes to, applying the model's
        checking discipline."""
        if ptr.addr == 0:
            raise MemoryError_(ub.NULL_POINTER_DEREF,
                               "access through null pointer")
        opts = self.options
        if opts.check_provenance:
            prov = ptr.prov
            if prov is PROV_WILDCARD:
                alloc = self._find_live_by_address(ptr.addr, size)
                if alloc is None:
                    raise MemoryError_(
                        ub.ACCESS_OUT_OF_BOUNDS,
                        f"wildcard access at 0x{ptr.addr:x} hits no live "
                        "object")
                return alloc
            if prov is PROV_EMPTY:
                if opts.reject_empty_provenance:
                    raise MemoryError_(
                        ub.ACCESS_EMPTY_PROVENANCE,
                        f"access at 0x{ptr.addr:x} through pointer with "
                        "empty provenance")
                alloc = self._find_live_by_address(ptr.addr, size)
                if alloc is None:
                    raise MemoryError_(
                        ub.ACCESS_OUT_OF_BOUNDS,
                        f"access at 0x{ptr.addr:x} hits no live object")
                return alloc
            alloc = self.allocations.get(prov)
            if alloc is None or not alloc.alive:
                raise MemoryError_(
                    ub.ACCESS_DEAD_OBJECT,
                    f"access to dead/unknown allocation @{prov}")
            if not alloc.contains(ptr.addr, size):
                # The DR260 licence: address not consistent with the
                # pointer's original allocation (paper §2.1).
                raise MemoryError_(
                    ub.ACCESS_WRONG_PROVENANCE,
                    f"access at 0x{ptr.addr:x} (size {size}) outside "
                    f"allocation '{alloc.name}' "
                    f"[0x{alloc.base:x}..0x{alloc.base + alloc.size:x})")
            return alloc
        alloc = self._find_live_by_address(ptr.addr, size)
        if alloc is None:
            raise MemoryError_(
                ub.ACCESS_OUT_OF_BOUNDS,
                f"access at 0x{ptr.addr:x} (size {size}) hits no live "
                "object")
        return alloc

    def _find_live_by_address(self, addr: int,
                              size: int) -> Optional[Allocation]:
        hit = self._last_hit
        if hit is not None and hit.alive and hit.contains(addr, size):
            return hit
        # Newest-first: accesses cluster on recently created
        # allocations (stack locality — parameters and locals of the
        # active call), which sit at the end of the insertion-ordered
        # live index.
        for alloc in reversed(self._live.values()):
            if alloc.contains(addr, size):
                self._last_hit = alloc
                return alloc
        return None

    def _check_alignment(self, ptr: PointerValue, ty: CType) -> None:
        align = self.impl.alignof(ty, self.tags)
        if ptr.addr % align != 0:
            raise MemoryError_(
                ub.MISALIGNED_ACCESS,
                f"address 0x{ptr.addr:x} not {align}-byte aligned "
                f"for {ty}")

    def _check_effective(self, alloc: Allocation, ptr: PointerValue,
                         ty: CType, writing: bool) -> None:
        """Strict-model TBAA discipline (§2.6). Character-typed accesses
        are always permitted (§6.5p7); otherwise the lvalue type must
        match the recorded effective type at this offset."""
        if not self.options.check_effective_types:
            return
        if is_character(ty):
            return
        off = ptr.addr - alloc.base
        if alloc.declared_ty is not None:
            expected = self._subobject_type_at(alloc.declared_ty, off, ty)
            if expected is None:
                raise MemoryError_(
                    ub.EFFECTIVE_TYPE_MISMATCH,
                    f"{ty} access at offset {off} of object declared "
                    f"{alloc.declared_ty}")
            return
        if writing:
            alloc.effective[off] = ty
            return
        recorded = alloc.effective.get(off)
        if recorded is None:
            return  # reading uninitialised handled elsewhere
        if not _types_alias(recorded, ty):
            raise MemoryError_(
                ub.EFFECTIVE_TYPE_MISMATCH,
                f"{ty} read of object with effective type {recorded}")

    def _subobject_type_at(self, declared: CType, off: int,
                           want: CType) -> Optional[CType]:
        """Does `declared` contain a subobject of (alias-compatible
        type) `want` at offset `off`?"""
        if off == 0 and _types_alias(declared, want):
            return declared
        if isinstance(declared, Array):
            esize = self.impl.sizeof(declared.of.ty, self.tags)
            if esize == 0:
                return None
            return self._subobject_type_at(declared.of.ty, off % esize,
                                            want)
        if isinstance(declared, StructRef):
            lay = self.impl.layout(declared, self.tags)
            for _, foff, qty in lay.fields:
                fsize = self.impl.sizeof(qty.ty, self.tags)
                if foff <= off < foff + fsize:
                    found = self._subobject_type_at(qty.ty, off - foff,
                                                    want)
                    if found is not None:
                        return found
            return None
        if isinstance(declared, UnionRef):
            defn = self.tags.require(declared.tag)
            for m in defn.members:
                msize = self.impl.sizeof(m.qty.ty, self.tags)
                if off < msize:
                    found = self._subobject_type_at(m.qty.ty, off, want)
                    if found is not None:
                        return found
            return None
        return None

    # -- load / store ------------------------------------------------------------------

    def load(self, qty: QualType, ptr: PointerValue) -> Tuple[Footprint,
                                                              MemValue]:
        ty = qty.ty
        size, align = self._size_align(ty)
        addr = ptr.addr
        hit = self._last_hit
        if self._plain_locate and addr and hit is not None and \
                hit.alive and hit.contains(addr, size):
            alloc = hit
        else:
            alloc = self._locate(ptr, size, writing=False)
        if addr % align != 0:
            self._check_alignment(ptr, ty)
        if self._check_et:
            self._check_effective(alloc, ptr, ty, writing=False)
        off = addr - alloc.base
        data = alloc.data[off:off + size]
        value = self.codec.abstify(ty, data)
        if isinstance(value, MVUnspecified):
            value = self._uninit_policy(qty, ptr, alloc, off, size, value)
        return Footprint(ptr.addr, size), value

    def _uninit_policy(self, qty: QualType, ptr: PointerValue,
                       alloc: Allocation, off: int, size: int,
                       value: MemValue) -> MemValue:
        mode = self.options.uninit_read
        if mode == "ub":
            raise MemoryError_(
                ub.READ_UNINITIALISED,
                f"read of uninitialised object '{alloc.name}'")
        if mode == "stable" and isinstance(qty.ty, Integer):
            # Option (4) of §2.4: arbitrary but stable — materialise a
            # deterministic pattern byte into memory on first read.
            pattern = self._stable_seed & 0xFF
            for i in range(size):
                if alloc.data[off + i].is_unspecified:
                    alloc.data[off + i] = AByte(pattern)
            return self.codec.abstify(qty.ty, alloc.data[off:off + size])
        return value

    def store(self, qty: QualType, ptr: PointerValue,
              value: MemValue) -> Footprint:
        ty = qty.ty
        size, align = self._size_align(ty)
        addr = ptr.addr
        hit = self._last_hit
        if self._plain_locate and addr and hit is not None and \
                hit.alive and hit.contains(addr, size):
            alloc = hit
        else:
            alloc = self._locate(ptr, size, writing=True)
        if addr % align != 0:
            self._check_alignment(ptr, ty)
        if alloc.readonly:
            raise MemoryError_(
                ub.MODIFYING_CONST,
                f"store to read-only object '{alloc.name}'")
        if self._check_et:
            self._check_effective(alloc, ptr, ty, writing=True)
        off = addr - alloc.base
        data = self.codec.repify(ty, value)
        alloc.data[off:off + size] = data
        if not self._pad_keep:
            self._apply_padding_policy(alloc, off, ty)
        return Footprint(addr, size)

    def _apply_padding_policy(self, alloc: Allocation, off: int,
                              ty: CType) -> None:
        """§2.5: a *member* store may also clobber the padding that
        follows the member inside its enclosing struct. We apply the
        policy when the store's footprint is a strict sub-range of a
        struct-typed allocation."""
        mode = self.options.padding_on_member_store
        if mode == "keep":
            return
        decl = alloc.declared_ty
        if decl is None or not isinstance(decl, StructRef):
            return
        if isinstance(ty, StructRef):
            return  # whole-struct store: repify already set padding
        size = self.impl.sizeof(ty, self.tags)
        pad_offsets = self.impl.padding_bytes(decl, self.tags)
        # Padding bytes immediately following the stored member.
        end = off + size
        for p in pad_offsets:
            if p >= end and all(q in pad_offsets
                                for q in range(end, p + 1)):
                alloc.data[p] = UNSPEC_BYTE if mode == "unspec" \
                    else AByte(0)

    # -- bit-granular access (bit-field members, §6.7.2.1) ---------------------------

    def _locate_bits(self, ptr: PointerValue, bit_offset: int,
                     width: int, writing: bool) -> Tuple[Allocation, int,
                                                         int]:
        """Locate the byte range a bit-field access touches.  Bit-field
        accesses skip the alignment and effective-type checks: the
        access is by construction through the declared member, and the
        C11 memory-location granularity treats the whole allocation
        unit as one location (§3.14p2)."""
        if not self.impl.little_endian:
            raise InternalError("bit-field access on a big-endian "
                                "environment is not modelled")
        nbytes = (bit_offset + width + 7) // 8
        alloc = self._locate(ptr, nbytes, writing=writing)
        return alloc, ptr.addr - alloc.base, nbytes

    def load_bits(self, ty: CType, ptr: PointerValue, bit_offset: int,
                  width: int) -> Tuple[Footprint, MemValue]:
        """Load a bit-field member: ``width`` bits starting
        ``bit_offset`` bits into the byte ``ptr`` addresses, decoded at
        the declared type ``ty`` (sign-extended for signed fields)."""
        assert isinstance(ty, Integer)
        alloc, off, nbytes = self._locate_bits(ptr, bit_offset, width,
                                               writing=False)
        data = alloc.data[off:off + nbytes]
        footprint = Footprint(ptr.addr, nbytes)
        if any(b.is_unspecified for b in data):
            mode = self.options.uninit_read
            if mode == "ub":
                raise MemoryError_(
                    ub.READ_UNINITIALISED,
                    f"read of uninitialised bit-field in "
                    f"'{alloc.name}'")
            if mode == "stable":
                pattern = self._stable_seed & 0xFF
                for i in range(nbytes):
                    if alloc.data[off + i].is_unspecified:
                        alloc.data[off + i] = AByte(pattern)
                data = alloc.data[off:off + nbytes]
            else:
                return footprint, MVUnspecified(ty)
        from .values import _extract_bits
        raw = _extract_bits(data, bit_offset, width)
        assert raw is not None
        if self.impl.is_signed(ty.kind) and ty.kind is not IntKind.BOOL \
                and (raw >> (width - 1)) & 1:
            raw -= 1 << width
        return footprint, MVInteger(ty, IntegerValue(raw))

    def store_bits(self, ty: CType, ptr: PointerValue, bit_offset: int,
                   width: int, value: MemValue) -> Footprint:
        """Store to a bit-field member, preserving every adjacent bit
        of the storage unit (read-modify-write of the touched bytes).
        Storing an unspecified value makes the touched bytes
        unspecified — the byte-granular representation cannot keep the
        member's bits alone indeterminate."""
        assert isinstance(ty, Integer)
        alloc, off, nbytes = self._locate_bits(ptr, bit_offset, width,
                                               writing=True)
        if alloc.readonly:
            raise MemoryError_(
                ub.MODIFYING_CONST,
                f"store to read-only object '{alloc.name}'")
        footprint = Footprint(ptr.addr, nbytes)
        if isinstance(value, MVUnspecified):
            for i in range(nbytes):
                alloc.data[off + i] = UNSPEC_BYTE
            return footprint
        assert isinstance(value, MVInteger)
        from .values import _insert_bits
        window = alloc.data[off:off + nbytes]
        _insert_bits(window, bit_offset, width, value.ival.value)
        alloc.data[off:off + nbytes] = window
        return footprint

    # -- raw byte access (memcpy/memcmp/printf %s etc.) ------------------------------

    def load_bytes(self, ptr: PointerValue, n: int) -> List[AByte]:
        alloc = self._locate(ptr, n, writing=False)
        off = ptr.addr - alloc.base
        return list(alloc.data[off:off + n])

    def store_bytes(self, ptr: PointerValue, data: List[AByte]) -> None:
        alloc = self._locate(ptr, len(data), writing=True)
        if alloc.readonly:
            raise MemoryError_(ub.MODIFYING_CONST,
                               f"store to read-only object '{alloc.name}'")
        off = ptr.addr - alloc.base
        alloc.data[off:off + len(data)] = data

    # -- pointer operations (ptrop) --------------------------------------------------

    def eq(self, a: PointerValue, b: PointerValue) -> int:
        """Pointer ==; Q2: models may nondeterministically consult
        provenance when the representations are equal."""
        if a.addr != b.addr:
            return 0
        if (self.options.provenance_sensitive_equality
                and a.prov is not PROV_EMPTY and b.prov is not PROV_EMPTY
                and a.prov != b.prov):
            # GCC-style: same representation, different provenance —
            # the result may go either way (paper §2.1 Q2).
            return 1 - self.choose("ptr-eq-provenance", 2)
        return 1

    def relational(self, op: str, a: PointerValue,
                   b: PointerValue) -> int:
        if not self.options.allow_inter_object_relational:
            if (isinstance(a.prov, int) and isinstance(b.prov, int)
                    and a.prov != b.prov):
                raise MemoryError_(
                    ub.RELATIONAL_DISTINCT_OBJECTS,
                    f"{op} between pointers into different objects")
        table = {"<": a.addr < b.addr, ">": a.addr > b.addr,
                 "<=": a.addr <= b.addr, ">=": a.addr >= b.addr}
        return int(table[op])

    def ptrdiff(self, elem_ty: CType, a: PointerValue,
                b: PointerValue) -> IntegerValue:
        if not self.options.allow_inter_object_ptrdiff:
            if (isinstance(a.prov, int) and isinstance(b.prov, int)
                    and a.prov != b.prov):
                raise MemoryError_(
                    ub.PTRDIFF_DISTINCT_OBJECTS,
                    "subtraction of pointers into different objects")
        esize = self.impl.sizeof(elem_ty, self.tags)
        diff = (a.addr - b.addr) // esize
        return IntegerValue(diff)  # a pure integer offset (§5.9)

    def int_from_ptr(self, ptr: PointerValue,
                     to: Integer) -> IntegerValue:
        value = ptr.addr
        prov = ptr.prov if self.options.track_int_provenance \
            else PROV_EMPTY
        return IntegerValue(value, prov)

    def ptr_from_int(self, iv: IntegerValue) -> PointerValue:
        if iv.value == 0 and iv.prov is PROV_EMPTY:
            return NULL_POINTER
        # Q5: with integer provenance tracking, a round-tripped pointer
        # recovers its original provenance; without it, the cast
        # produces an empty-provenance pointer (usable only under
        # models that don't check, where it behaves as a wildcard).
        prov = iv.prov if self.options.track_int_provenance \
            else PROV_EMPTY
        if prov is PROV_EMPTY and not self.options.check_provenance:
            prov = PROV_WILDCARD
        return PointerValue(iv.value, prov)

    def array_shift(self, ptr: PointerValue, elem_ty: CType,
                    index: IntegerValue) -> PointerValue:
        esize = self.impl.sizeof(elem_ty, self.tags)
        new_addr = ptr.addr + esize * index.value
        out = ptr.with_addr(new_addr)
        if not self.options.allow_oob_construction:
            self._check_in_bounds_or_one_past(out)
        return out

    def member_shift(self, ptr: PointerValue, tag: str,
                     member: str) -> PointerValue:
        ref: CType
        defn = self.tags.require(tag)
        ref = UnionRef(tag) if defn.is_union else StructRef(tag)
        off = self.impl.offsetof(ref, member, self.tags)
        return ptr.with_addr(ptr.addr + off)

    def _check_in_bounds_or_one_past(self, ptr: PointerValue) -> None:
        if not isinstance(ptr.prov, int):
            return
        alloc = self.allocations.get(ptr.prov)
        if alloc is None:
            return
        if alloc.base <= ptr.addr <= alloc.base + alloc.size:
            return
        raise MemoryError_(
            ub.OUT_OF_BOUNDS_POINTER_ARITHMETIC,
            f"pointer arithmetic produced 0x{ptr.addr:x}, outside "
            f"'{alloc.name}' and not one-past")

    def valid_for_deref(self, ptr: PointerValue, ty: CType) -> bool:
        size = self.impl.sizeof(ty, self.tags)
        try:
            self._locate(ptr, size, writing=False)
            return True
        except MemoryError_:
            return False

    # -- statistics -----------------------------------------------------------------

    def live_allocations(self) -> List[Allocation]:
        return [a for a in self.allocations.values() if a.alive]


def _types_alias(a: CType, b: CType) -> bool:
    """May an lvalue of type ``b`` access an object of effective type
    ``a`` (§6.5p7)? Signed/unsigned siblings and qualifier differences
    are permitted."""
    if a == b:
        return True
    if isinstance(a, Integer) and isinstance(b, Integer):
        return a.signed_variant() == b.signed_variant()
    if isinstance(a, Pointer) and isinstance(b, Pointer):
        return True  # all pointer-to-object types alias each other here
    if isinstance(a, Array):
        return _types_alias(a.of.ty, b)
    return False
