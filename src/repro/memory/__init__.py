"""Memory object models (paper §2, §5.9).

The Core operational semantics is parameterised on a memory object model;
this package provides the byte/value representations shared by all models
(:mod:`values`), the model interface and allocation machinery
(:mod:`base`), and four models:

* :mod:`concrete` — no provenance checking: "what the hardware does";
* :mod:`provenance` — the paper's candidate de facto model (§5.9);
* :mod:`strict` — a strict ISO-leaning model (effective types etc.);
* :mod:`cheri` — a CHERI-capability model reproducing §4's findings.
"""

from .values import (
    Provenance, PROV_EMPTY, PROV_WILDCARD, IntegerValue, PointerValue,
    FloatingValue, MemValue, MVUnspecified, MVInteger, MVFloating,
    MVPointer, MVArray, MVStruct, MVUnion, AByte,
)
from .base import (
    Allocation, AllocationKind, MemoryModel, MemoryOptions, MemoryError_,
    Footprint,
)
from .concrete import ConcreteModel
from .provenance import ProvenanceModel
from .strict import StrictIsoModel
from .cheri import CheriModel, Capability

__all__ = [
    "Provenance", "PROV_EMPTY", "PROV_WILDCARD", "IntegerValue",
    "PointerValue", "FloatingValue", "MemValue", "MVUnspecified",
    "MVInteger", "MVFloating", "MVPointer", "MVArray", "MVStruct",
    "MVUnion", "AByte",
    "Allocation", "AllocationKind", "MemoryModel", "MemoryOptions",
    "MemoryError_", "Footprint",
    "ConcreteModel", "ProvenanceModel", "StrictIsoModel", "CheriModel",
    "Capability",
]
