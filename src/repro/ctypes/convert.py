"""Integer promotions, usual arithmetic conversions, and value conversion
(ISO C11 §6.3.1).

These are used twice, as in the paper: by the Ail type checker to compute
result types statically, and by the elaboration's runtime auxiliaries
(``integer_promotion``, ``is_representable`` — visible in Fig. 3) to
convert the mathematical-integer values that Core computes with (§5.5).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import InternalError
from .implementation import Implementation
from .types import Floating, FloatKind, Integer, IntKind

# §6.3.1.1p1 conversion ranks. char/schar/uchar share a rank, etc.
_RANK = {
    IntKind.BOOL: 5,
    IntKind.CHAR: 10, IntKind.SCHAR: 10, IntKind.UCHAR: 10,
    IntKind.SHORT: 20, IntKind.USHORT: 20,
    IntKind.INT: 30, IntKind.UINT: 30,
    IntKind.LONG: 40, IntKind.ULONG: 40,
    IntKind.LLONG: 50, IntKind.ULLONG: 50,
}


def integer_rank(ty: Integer) -> int:
    return _RANK[ty.kind]


def integer_promotion(ty: Integer, impl: Implementation) -> Integer:
    """§6.3.1.1p2: types of rank < int promote to int (or unsigned int if
    int cannot represent all their values)."""
    if _RANK[ty.kind] >= _RANK[IntKind.INT]:
        return ty
    # Can int represent all values of ty?
    if impl.int_max(ty.kind) <= impl.int_max(IntKind.INT) and \
            impl.int_min(ty.kind) >= impl.int_min(IntKind.INT):
        return Integer(IntKind.INT)
    return Integer(IntKind.UINT)


def usual_arithmetic_conversions(
        a: Integer, b: Integer, impl: Implementation) -> Integer:
    """§6.3.1.8p1, the integer half (floating handled separately)."""
    a = integer_promotion(a, impl)
    b = integer_promotion(b, impl)
    if a == b:
        return a
    sa, sb = impl.is_signed(a.kind), impl.is_signed(b.kind)
    ra, rb = _RANK[a.kind], _RANK[b.kind]
    if sa == sb:
        return a if ra >= rb else b
    unsigned, signed = (a, b) if not sa else (b, a)
    ru, rs = _RANK[unsigned.kind], _RANK[signed.kind]
    if ru >= rs:
        return unsigned
    if impl.int_max(signed.kind) >= impl.int_max(unsigned.kind):
        return signed
    return signed.unsigned_variant()


def arithmetic_result_type(a, b, impl: Implementation):
    """Usual arithmetic conversions over arithmetic (incl. floating)
    operand types; returns the common type."""
    if isinstance(a, Floating) or isinstance(b, Floating):
        order = [FloatKind.FLOAT, FloatKind.DOUBLE, FloatKind.LDOUBLE]
        kinds = [t.kind for t in (a, b) if isinstance(t, Floating)]
        return Floating(max(kinds, key=order.index))
    if isinstance(a, Integer) and isinstance(b, Integer):
        return usual_arithmetic_conversions(a, b, impl)
    raise InternalError(f"arithmetic conversion of {a} and {b}")


def is_representable(value: int, ty: Integer, impl: Implementation) -> bool:
    """Whether a mathematical integer fits the type's range — the Core
    auxiliary of the same name (Fig. 3)."""
    return impl.int_min(ty.kind) <= value <= impl.int_max(ty.kind)


def convert_integer_value(
        value: int, to: Integer,
        impl: Implementation) -> Tuple[int, Optional[str]]:
    """§6.3.1.3: convert a mathematical integer to type ``to``.

    Returns ``(converted, note)``. For unsigned targets the value is
    reduced modulo 2^N (p2). For signed targets that cannot represent the
    value the result is implementation-defined (p3); like GCC/Clang we
    wrap modulo 2^N (two's complement), and return note="impl-defined"
    so strict personae can flag it.
    """
    if to.kind is IntKind.BOOL:
        return (0 if value == 0 else 1), None
    if is_representable(value, to, impl):
        return value, None
    w = impl.width(to.kind)
    wrapped = value & ((1 << w) - 1)
    if impl.is_signed(to.kind):
        if wrapped >= (1 << (w - 1)):
            wrapped -= 1 << w
        return wrapped, "impl-defined"
    return wrapped, None
