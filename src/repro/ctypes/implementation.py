"""Implementation-defined environments (ISO C11 §J.3).

The paper's elaboration consults "definitions of implementation-defined
constants" (Fig. 2 caption); we package those as an
:class:`Implementation` object: integer sizes and alignments, char
signedness, endianness, and struct/union layout. Three environments are
provided: LP64 (the mainstream x86-64 ABI — the default), ILP32, and
CHERI128 (capability pointers of 16 bytes, as on the CHERI processor of
paper §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InternalError
from .types import (
    Array, CType, Floating, FloatKind, Function, Integer, IntKind, Pointer,
    QualType, StructRef, TagEnv, UnionRef, VarArray, Void,
)


@dataclass(frozen=True)
class Implementation:
    """One implementation-defined environment.

    All mainstream assumptions the paper highlights (§1: 8-bit bytes,
    two's complement, non-segmented memory) are baked in; what varies is
    parameterised here.
    """

    name: str
    int_sizes: Dict[IntKind, int] = field(default_factory=dict)
    int_aligns: Dict[IntKind, int] = field(default_factory=dict)
    float_sizes: Dict[FloatKind, int] = field(default_factory=dict)
    pointer_size: int = 8
    pointer_align: int = 8
    char_is_signed: bool = True
    little_endian: bool = True
    # Whether plain `int` bitwise ops on uintptr_t act on the capability
    # offset (the CHERI misbehaviour of paper §4); only CHERI sets this.
    capability_pointers: bool = False

    # -- integer ranges ------------------------------------------------------

    def sizeof_int(self, kind: IntKind) -> int:
        return self.int_sizes[kind]

    def alignof_int(self, kind: IntKind) -> int:
        return self.int_aligns[kind]

    def is_signed(self, kind: IntKind) -> bool:
        if kind is IntKind.CHAR:
            return self.char_is_signed
        return kind in (IntKind.SCHAR, IntKind.SHORT, IntKind.INT,
                        IntKind.LONG, IntKind.LLONG)

    def width(self, kind: IntKind) -> int:
        if kind is IntKind.BOOL:
            return 1
        return self.sizeof_int(kind) * 8

    def int_min(self, kind: IntKind) -> int:
        if not self.is_signed(kind):
            return 0
        return -(1 << (self.width(kind) - 1))

    def int_max(self, kind: IntKind) -> int:
        if kind is IntKind.BOOL:
            return 1
        w = self.width(kind)
        if self.is_signed(kind):
            return (1 << (w - 1)) - 1
        return (1 << w) - 1

    # -- sizeof / alignof over full types ------------------------------------

    def sizeof(self, ty: CType, tags: TagEnv) -> int:
        if isinstance(ty, Integer):
            return self.sizeof_int(ty.kind)
        if isinstance(ty, Floating):
            return self.float_sizes[ty.kind]
        if isinstance(ty, Pointer):
            return self.pointer_size
        if isinstance(ty, Array):
            if ty.size is None:
                raise InternalError("sizeof incomplete array type")
            return ty.size * self.sizeof(ty.of.ty, tags)
        if isinstance(ty, VarArray):
            raise InternalError(
                "sizeof of a variable length array type is a runtime "
                "value (the elaboration loads its hidden size variable)")
        if isinstance(ty, (StructRef, UnionRef)):
            return self.layout(ty, tags).size
        if isinstance(ty, Void):
            raise InternalError("sizeof void")
        if isinstance(ty, Function):
            raise InternalError("sizeof function type")
        raise InternalError(f"sizeof: unhandled type {ty}")

    def alignof(self, ty: CType, tags: TagEnv) -> int:
        if isinstance(ty, Integer):
            return self.alignof_int(ty.kind)
        if isinstance(ty, Floating):
            return self.float_sizes[ty.kind] if ty.kind is not \
                FloatKind.LDOUBLE else 16
        if isinstance(ty, Pointer):
            return self.pointer_align
        if isinstance(ty, (Array, VarArray)):
            return self.alignof(ty.of.ty, tags)
        if isinstance(ty, (StructRef, UnionRef)):
            return self.layout(ty, tags).align
        raise InternalError(f"alignof: unhandled type {ty}")

    def layout(self, ty: CType, tags: TagEnv) -> "RecordLayout":
        """Compute the layout of a struct/union, including bit-field
        allocation-unit packing (§6.7.2.1p11, the SysV-style rules all
        four LP64 environments and CHERI128 share): consecutive
        bit-fields pack into the storage units of their declared types,
        a bit-field never straddles a storage-unit boundary of its
        declared type, a zero-width bit-field closes the current unit,
        and (unlike GCC's ``-mms-bitfields``) a non-zero-width
        bit-field contributes its declared type's alignment to the
        struct."""
        assert isinstance(ty, (StructRef, UnionRef))
        defn = tags.require(ty.tag)
        if not defn.complete:
            raise InternalError(f"layout of incomplete type {ty}")
        fields: List[FieldLayout] = []
        if isinstance(ty, UnionRef):
            size = 0
            align = 1
            for m in defn.members:
                if m.bit_width is not None and (m.name is None
                                                or m.bit_width == 0):
                    continue  # anonymous bit-fields do not pack unions
                msize = self.sizeof(m.qty.ty, tags)
                malign = self.alignof(m.qty.ty, tags)
                if m.bit_width is not None:
                    fields.append(FieldLayout(m.name, 0, m.qty,
                                              bit_offset=0,
                                              bit_width=m.bit_width))
                else:
                    fields.append(FieldLayout(m.name, 0, m.qty))
                size = max(size, msize)
                align = max(align, malign)
            size = _round_up(max(size, 1), align)
            return RecordLayout(size, align, fields)
        bit = 0  # running offset in *bits* from the start of the struct
        align = 1
        for m in defn.members:
            if m.bit_width is not None:
                unit_bits = self.sizeof(m.qty.ty, tags) * 8
                if m.bit_width == 0:
                    # §6.7.2.1p12: close the current allocation unit.
                    bit = _round_up(bit, unit_bits)
                    continue
                if bit // unit_bits != \
                        (bit + m.bit_width - 1) // unit_bits:
                    # Would straddle a storage-unit boundary of the
                    # declared type: start a fresh unit.
                    bit = _round_up(bit, unit_bits)
                if m.name is not None:
                    fields.append(FieldLayout(m.name, bit // 8, m.qty,
                                              bit_offset=bit % 8,
                                              bit_width=m.bit_width))
                align = max(align, self.alignof(m.qty.ty, tags))
                bit += m.bit_width
                continue
            malign = self.alignof(m.qty.ty, tags)
            msize = self.sizeof(m.qty.ty, tags)
            off = _round_up(_round_up(bit, 8) // 8, malign)
            fields.append(FieldLayout(m.name, off, m.qty))
            bit = (off + msize) * 8
            align = max(align, malign)
        size = _round_up(max((bit + 7) // 8, 1), align)
        return RecordLayout(size, align, fields)

    def offsetof(self, ty: CType, member: str, tags: TagEnv) -> int:
        """Byte offset of a member.  For a bit-field this is the offset
        of the first byte its bits occupy (the target of
        ``member_shift``; user-level ``offsetof`` of a bit-field is
        rejected by the type checker, §7.19p3)."""
        lay = self.layout(ty, tags)
        for f in lay.fields:
            if f.name == member:
                return f.offset
        raise InternalError(f"offsetof: no member {member} in {ty}")

    def field_layout(self, tag: str, member: str,
                     tags: TagEnv) -> "FieldLayout":
        """The full layout record of one member of a tagged type."""
        defn = tags.require(tag)
        ref: CType = UnionRef(tag) if defn.is_union else StructRef(tag)
        for f in self.layout(ref, tags).fields:
            if f.name == member:
                return f
        raise InternalError(f"no member {member} in {ref}")

    def padding_bytes(self, ty: CType, tags: TagEnv) -> List[int]:
        """Offsets (within the record) of bytes that are entirely
        padding — used by the padding-semantics experiments (paper
        §2.5, Q37-Q49).  Recurses into nested structs/unions and array
        elements so interior and trailing padding of nested records is
        reported at its element offsets, and treats the bytes of
        bit-field storage units as covered when any member's bits touch
        them."""
        size = self.sizeof(ty, tags)
        covered = [False] * size
        self._mark_covered(ty, 0, covered, tags)
        return [i for i, c in enumerate(covered) if not c]

    def _mark_covered(self, ty: CType, base: int, covered: List[bool],
                      tags: TagEnv) -> None:
        if isinstance(ty, Array):
            assert ty.size is not None
            esize = self.sizeof(ty.of.ty, tags)
            for i in range(ty.size):
                self._mark_covered(ty.of.ty, base + i * esize, covered,
                                   tags)
            return
        if isinstance(ty, (StructRef, UnionRef)):
            for f in self.layout(ty, tags).fields:
                if f.bit_width is not None:
                    first = base + f.offset
                    last = base + f.offset + \
                        (f.bit_offset + f.bit_width - 1) // 8
                    for i in range(first, last + 1):
                        covered[i] = True
                    continue
                self._mark_covered(f.qty.ty, base + f.offset, covered,
                                   tags)
            return
        for i in range(base, base + self.sizeof(ty, tags)):
            covered[i] = True


@dataclass(frozen=True)
class FieldLayout:
    """Layout of one member.  Ordinary members have ``bit_offset is
    None``; a bit-field member occupies ``bit_width`` bits starting
    ``bit_offset`` bits (0-7) into the byte at ``offset``.  Iterating
    yields the historical ``(name, offset, qty)`` triple so existing
    ``for name, off, qty in lay.fields`` loops keep working."""

    name: str
    offset: int
    qty: QualType
    bit_offset: Optional[int] = None
    bit_width: Optional[int] = None

    def __iter__(self):
        return iter((self.name, self.offset, self.qty))


@dataclass(frozen=True)
class RecordLayout:
    size: int
    align: int
    fields: List[FieldLayout]


def _round_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


def _sizes(char=1, short=2, int_=4, long=8, llong=8) -> Dict[IntKind, int]:
    return {
        IntKind.BOOL: 1, IntKind.CHAR: char, IntKind.SCHAR: char,
        IntKind.UCHAR: char, IntKind.SHORT: short, IntKind.USHORT: short,
        IntKind.INT: int_, IntKind.UINT: int_, IntKind.LONG: long,
        IntKind.ULONG: long, IntKind.LLONG: llong, IntKind.ULLONG: llong,
    }


LP64 = Implementation(
    name="LP64",
    int_sizes=_sizes(long=8),
    int_aligns=_sizes(long=8),
    float_sizes={FloatKind.FLOAT: 4, FloatKind.DOUBLE: 8,
                 FloatKind.LDOUBLE: 16},
    pointer_size=8,
    pointer_align=8,
    char_is_signed=True,
    little_endian=True,
)

ILP32 = Implementation(
    name="ILP32",
    int_sizes=_sizes(long=4),
    int_aligns=_sizes(long=4),
    float_sizes={FloatKind.FLOAT: 4, FloatKind.DOUBLE: 8,
                 FloatKind.LDOUBLE: 12},
    pointer_size=4,
    pointer_align=4,
    char_is_signed=True,
    little_endian=True,
)

# CHERI-128: integer sizes as LP64 but pointers are 16-byte capabilities
# (the concentrate compression of the real hardware is not modelled; the
# capability metadata lives beside the 8 address bytes).
CHERI128 = Implementation(
    name="CHERI128",
    int_sizes=_sizes(long=8),
    int_aligns=_sizes(long=8),
    float_sizes={FloatKind.FLOAT: 4, FloatKind.DOUBLE: 8,
                 FloatKind.LDOUBLE: 16},
    pointer_size=16,
    pointer_align=16,
    char_is_signed=True,
    little_endian=True,
    capability_pointers=True,
)
