"""Implementation-defined environments (ISO C11 §J.3).

The paper's elaboration consults "definitions of implementation-defined
constants" (Fig. 2 caption); we package those as an
:class:`Implementation` object: integer sizes and alignments, char
signedness, endianness, and struct/union layout. Three environments are
provided: LP64 (the mainstream x86-64 ABI — the default), ILP32, and
CHERI128 (capability pointers of 16 bytes, as on the CHERI processor of
paper §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InternalError
from .types import (
    Array, CType, Floating, FloatKind, Function, Integer, IntKind, Pointer,
    QualType, StructRef, TagEnv, UnionRef, Void,
)


@dataclass(frozen=True)
class Implementation:
    """One implementation-defined environment.

    All mainstream assumptions the paper highlights (§1: 8-bit bytes,
    two's complement, non-segmented memory) are baked in; what varies is
    parameterised here.
    """

    name: str
    int_sizes: Dict[IntKind, int] = field(default_factory=dict)
    int_aligns: Dict[IntKind, int] = field(default_factory=dict)
    float_sizes: Dict[FloatKind, int] = field(default_factory=dict)
    pointer_size: int = 8
    pointer_align: int = 8
    char_is_signed: bool = True
    little_endian: bool = True
    # Whether plain `int` bitwise ops on uintptr_t act on the capability
    # offset (the CHERI misbehaviour of paper §4); only CHERI sets this.
    capability_pointers: bool = False

    # -- integer ranges ------------------------------------------------------

    def sizeof_int(self, kind: IntKind) -> int:
        return self.int_sizes[kind]

    def alignof_int(self, kind: IntKind) -> int:
        return self.int_aligns[kind]

    def is_signed(self, kind: IntKind) -> bool:
        if kind is IntKind.CHAR:
            return self.char_is_signed
        return kind in (IntKind.SCHAR, IntKind.SHORT, IntKind.INT,
                        IntKind.LONG, IntKind.LLONG)

    def width(self, kind: IntKind) -> int:
        if kind is IntKind.BOOL:
            return 1
        return self.sizeof_int(kind) * 8

    def int_min(self, kind: IntKind) -> int:
        if not self.is_signed(kind):
            return 0
        return -(1 << (self.width(kind) - 1))

    def int_max(self, kind: IntKind) -> int:
        if kind is IntKind.BOOL:
            return 1
        w = self.width(kind)
        if self.is_signed(kind):
            return (1 << (w - 1)) - 1
        return (1 << w) - 1

    # -- sizeof / alignof over full types ------------------------------------

    def sizeof(self, ty: CType, tags: TagEnv) -> int:
        if isinstance(ty, Integer):
            return self.sizeof_int(ty.kind)
        if isinstance(ty, Floating):
            return self.float_sizes[ty.kind]
        if isinstance(ty, Pointer):
            return self.pointer_size
        if isinstance(ty, Array):
            if ty.size is None:
                raise InternalError("sizeof incomplete array type")
            return ty.size * self.sizeof(ty.of.ty, tags)
        if isinstance(ty, (StructRef, UnionRef)):
            return self.layout(ty, tags).size
        if isinstance(ty, Void):
            raise InternalError("sizeof void")
        if isinstance(ty, Function):
            raise InternalError("sizeof function type")
        raise InternalError(f"sizeof: unhandled type {ty}")

    def alignof(self, ty: CType, tags: TagEnv) -> int:
        if isinstance(ty, Integer):
            return self.alignof_int(ty.kind)
        if isinstance(ty, Floating):
            return self.float_sizes[ty.kind] if ty.kind is not \
                FloatKind.LDOUBLE else 16
        if isinstance(ty, Pointer):
            return self.pointer_align
        if isinstance(ty, Array):
            return self.alignof(ty.of.ty, tags)
        if isinstance(ty, (StructRef, UnionRef)):
            return self.layout(ty, tags).align
        raise InternalError(f"alignof: unhandled type {ty}")

    def layout(self, ty: CType, tags: TagEnv) -> "RecordLayout":
        """Compute (and cache per call) the layout of a struct/union."""
        assert isinstance(ty, (StructRef, UnionRef))
        defn = tags.require(ty.tag)
        if not defn.complete:
            raise InternalError(f"layout of incomplete type {ty}")
        offsets: List[Tuple[str, int, QualType]] = []
        if isinstance(ty, UnionRef):
            size = 0
            align = 1
            for m in defn.members:
                msize = self.sizeof(m.qty.ty, tags)
                malign = self.alignof(m.qty.ty, tags)
                offsets.append((m.name, 0, m.qty))
                size = max(size, msize)
                align = max(align, malign)
            size = _round_up(size, align)
            return RecordLayout(size, align, offsets)
        off = 0
        align = 1
        for m in defn.members:
            malign = self.alignof(m.qty.ty, tags)
            msize = self.sizeof(m.qty.ty, tags)
            off = _round_up(off, malign)
            offsets.append((m.name, off, m.qty))
            off += msize
            align = max(align, malign)
        size = _round_up(max(off, 1), align)
        return RecordLayout(size, align, offsets)

    def offsetof(self, ty: CType, member: str, tags: TagEnv) -> int:
        lay = self.layout(ty, tags)
        for name, off, _ in lay.fields:
            if name == member:
                return off
        raise InternalError(f"offsetof: no member {member} in {ty}")

    def padding_bytes(self, ty: CType, tags: TagEnv) -> List[int]:
        """Offsets (within the record) of bytes that are padding — used by
        the padding-semantics experiments (paper §2.5, Q37-Q49)."""
        lay = self.layout(ty, tags)
        covered = [False] * lay.size
        for _, off, qty in lay.fields:
            msize = self.sizeof(qty.ty, tags)
            for i in range(off, off + msize):
                covered[i] = True
        return [i for i, c in enumerate(covered) if not c]


@dataclass(frozen=True)
class RecordLayout:
    size: int
    align: int
    fields: List[Tuple[str, int, QualType]]


def _round_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


def _sizes(char=1, short=2, int_=4, long=8, llong=8) -> Dict[IntKind, int]:
    return {
        IntKind.BOOL: 1, IntKind.CHAR: char, IntKind.SCHAR: char,
        IntKind.UCHAR: char, IntKind.SHORT: short, IntKind.USHORT: short,
        IntKind.INT: int_, IntKind.UINT: int_, IntKind.LONG: long,
        IntKind.ULONG: long, IntKind.LLONG: llong, IntKind.ULLONG: llong,
    }


LP64 = Implementation(
    name="LP64",
    int_sizes=_sizes(long=8),
    int_aligns=_sizes(long=8),
    float_sizes={FloatKind.FLOAT: 4, FloatKind.DOUBLE: 8,
                 FloatKind.LDOUBLE: 16},
    pointer_size=8,
    pointer_align=8,
    char_is_signed=True,
    little_endian=True,
)

ILP32 = Implementation(
    name="ILP32",
    int_sizes=_sizes(long=4),
    int_aligns=_sizes(long=4),
    float_sizes={FloatKind.FLOAT: 4, FloatKind.DOUBLE: 8,
                 FloatKind.LDOUBLE: 12},
    pointer_size=4,
    pointer_align=4,
    char_is_signed=True,
    little_endian=True,
)

# CHERI-128: integer sizes as LP64 but pointers are 16-byte capabilities
# (the concentrate compression of the real hardware is not modelled; the
# capability metadata lives beside the 8 address bytes).
CHERI128 = Implementation(
    name="CHERI128",
    int_sizes=_sizes(long=8),
    int_aligns=_sizes(long=8),
    float_sizes={FloatKind.FLOAT: 4, FloatKind.DOUBLE: 8,
                 FloatKind.LDOUBLE: 16},
    pointer_size=16,
    pointer_align=16,
    char_is_signed=True,
    little_endian=True,
    capability_pointers=True,
)
