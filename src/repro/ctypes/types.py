"""C type ASTs (ISO C11 §6.2.5).

Types are immutable and hashable. Struct and union types are *references*
to entries of a :class:`TagEnv` (definitions are interned by tag id), which
keeps recursive types finite and lets two phases share one definition
table, mirroring Ail's normalised canonical type forms (paper §5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class IntKind(enum.Enum):
    """The standard integer type kinds (§6.2.5p4-7). ``CHAR`` is the
    distinct type ``char`` (§6.2.5p15); its signedness is
    implementation-defined."""

    BOOL = "_Bool"
    CHAR = "char"
    SCHAR = "signed char"
    UCHAR = "unsigned char"
    SHORT = "short"
    USHORT = "unsigned short"
    INT = "int"
    UINT = "unsigned int"
    LONG = "long"
    ULONG = "unsigned long"
    LLONG = "long long"
    ULLONG = "unsigned long long"


_UNSIGNED_KINDS = frozenset({
    IntKind.BOOL, IntKind.UCHAR, IntKind.USHORT, IntKind.UINT,
    IntKind.ULONG, IntKind.ULLONG,
})

_SIGNED_OF = {
    IntKind.UCHAR: IntKind.SCHAR, IntKind.USHORT: IntKind.SHORT,
    IntKind.UINT: IntKind.INT, IntKind.ULONG: IntKind.LONG,
    IntKind.ULLONG: IntKind.LLONG,
}
_UNSIGNED_OF = {v: k for k, v in _SIGNED_OF.items()}


class FloatKind(enum.Enum):
    FLOAT = "float"
    DOUBLE = "double"
    LDOUBLE = "long double"


class CType:
    """Base class of all C types (unqualified)."""

    def is_object_type(self) -> bool:
        return not isinstance(self, Function)

    def is_complete(self, tags: "TagEnv") -> bool:
        return True


@dataclass(frozen=True)
class Void(CType):
    def __str__(self) -> str:
        return "void"

    def is_complete(self, tags: "TagEnv") -> bool:
        return False


@dataclass(frozen=True)
class Integer(CType):
    kind: IntKind

    def __str__(self) -> str:
        return self.kind.value

    @property
    def is_unsigned_literal(self) -> bool:
        """Unsigned by spelling; ``char`` resolves via the implementation."""
        return self.kind in _UNSIGNED_KINDS

    def signed_variant(self) -> "Integer":
        if self.kind in (IntKind.CHAR, IntKind.SCHAR):
            return Integer(IntKind.SCHAR)
        return Integer(_SIGNED_OF.get(self.kind, self.kind))

    def unsigned_variant(self) -> "Integer":
        if self.kind in (IntKind.CHAR, IntKind.SCHAR):
            return Integer(IntKind.UCHAR)
        return Integer(_UNSIGNED_OF.get(self.kind, self.kind))


@dataclass(frozen=True)
class Floating(CType):
    kind: FloatKind

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class Qualifiers:
    const: bool = False
    volatile: bool = False
    restrict: bool = False
    atomic: bool = False

    def __or__(self, other: "Qualifiers") -> "Qualifiers":
        return Qualifiers(self.const or other.const,
                          self.volatile or other.volatile,
                          self.restrict or other.restrict,
                          self.atomic or other.atomic)

    def __str__(self) -> str:
        parts = []
        if self.const:
            parts.append("const")
        if self.volatile:
            parts.append("volatile")
        if self.restrict:
            parts.append("restrict")
        if self.atomic:
            parts.append("_Atomic")
        return " ".join(parts)

    def is_empty(self) -> bool:
        return not (self.const or self.volatile or self.restrict
                    or self.atomic)


NO_QUALS = Qualifiers()
CONST = Qualifiers(const=True)


@dataclass(frozen=True)
class QualType:
    """A possibly-qualified type — the thing declarations bind."""

    ty: CType
    quals: Qualifiers = NO_QUALS

    def __str__(self) -> str:
        q = str(self.quals)
        return f"{q} {self.ty}".strip()

    def with_quals(self, quals: Qualifiers) -> "QualType":
        return QualType(self.ty, self.quals | quals)

    def unqualified(self) -> "QualType":
        return QualType(self.ty, NO_QUALS)


@dataclass(frozen=True)
class Pointer(CType):
    to: QualType

    def __str__(self) -> str:
        return f"{self.to}*"


@dataclass(frozen=True)
class Array(CType):
    of: QualType
    size: Optional[int]  # None for incomplete array types

    def __str__(self) -> str:
        n = "" if self.size is None else str(self.size)
        return f"{self.of}[{n}]"

    def is_complete(self, tags: "TagEnv") -> bool:
        return self.size is not None


@dataclass(frozen=True)
class VarArray(CType):
    """A variable length array type (§6.7.6.2p4): element type plus the
    desugarer-introduced *hidden size variable* holding the runtime
    element count.  ``size_sym`` is the Ail symbol of that variable
    (an ``A.Symbol``; typed as ``object`` to avoid a circular import) —
    the elaboration loads it wherever the size is needed (the
    declaration's ``create``, ``sizeof``).  Only the outermost array
    dimension of a declarator may be variable in this fragment."""

    of: QualType
    size_sym: object  # repro.ail.ast.Symbol (hashable, picklable)

    def __str__(self) -> str:
        return f"{self.of}[{self.size_sym}]"

    def is_complete(self, tags: "TagEnv") -> bool:
        # Complete in the variable sense: the size exists at runtime.
        return True


@dataclass(frozen=True)
class Function(CType):
    ret: QualType
    params: Tuple[QualType, ...]
    variadic: bool = False
    # True for old-style () declarations with unspecified parameters.
    no_proto: bool = False

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.variadic:
            ps += ", ..."
        if self.no_proto:
            ps = ""
        return f"{self.ret}({ps})"


@dataclass(frozen=True)
class StructRef(CType):
    tag: str  # unique tag id issued by the TagEnv

    def __str__(self) -> str:
        return f"struct {self.tag}"

    def is_complete(self, tags: "TagEnv") -> bool:
        defn = tags.get(self.tag)
        return defn is not None and defn.complete


@dataclass(frozen=True)
class UnionRef(CType):
    tag: str

    def __str__(self) -> str:
        return f"union {self.tag}"

    def is_complete(self, tags: "TagEnv") -> bool:
        defn = tags.get(self.tag)
        return defn is not None and defn.complete


@dataclass
class Member:
    """One struct/union member.  ``bit_width`` is None for ordinary
    members; a bit-field member carries its declared width in bits.
    Anonymous bit-fields (``int : 4``, ``int : 0``) have ``name is
    None`` — they participate in layout but are not accessible, are
    skipped by positional initialisation (§6.7.9p9), and never match a
    member lookup."""

    name: Optional[str]
    qty: QualType
    bit_width: Optional[int] = None

    @property
    def is_bitfield(self) -> bool:
        return self.bit_width is not None


@dataclass
class TagDef:
    """Definition of a struct or union tag."""

    tag: str
    is_union: bool
    members: List[Member] = field(default_factory=list)
    complete: bool = False

    def member(self, name: str) -> Optional[Member]:
        for m in self.members:
            if m.name == name:
                return m
        return None


class TagEnv:
    """The program-wide struct/union definition table.

    Tag ids are globally unique strings (``name#k`` for source tag `name`,
    ``anon#k`` for anonymous ones); scoping is resolved during desugaring,
    so later phases can treat tags as global.
    """

    def __init__(self) -> None:
        self._defs: Dict[str, TagDef] = {}
        self._counter = 0

    def fresh_tag(self, source_name: Optional[str], is_union: bool) -> str:
        self._counter += 1
        base = source_name if source_name else "anon"
        tag = f"{base}#{self._counter}"
        self._defs[tag] = TagDef(tag, is_union)
        return tag

    def get(self, tag: str) -> Optional[TagDef]:
        return self._defs.get(tag)

    def require(self, tag: str) -> TagDef:
        defn = self._defs.get(tag)
        if defn is None:
            raise KeyError(f"unknown tag {tag}")
        return defn

    def define(self, tag: str, members: List[Member]) -> None:
        defn = self.require(tag)
        defn.members = members
        defn.complete = True

    def all_tags(self) -> Dict[str, TagDef]:
        return dict(self._defs)


# ---- convenience constructors ----------------------------------------------

def q(ty: CType, quals: Qualifiers = NO_QUALS) -> QualType:
    return QualType(ty, quals)


VOID = Void()
BOOL = Integer(IntKind.BOOL)
CHAR = Integer(IntKind.CHAR)
SCHAR = Integer(IntKind.SCHAR)
UCHAR = Integer(IntKind.UCHAR)
SHORT = Integer(IntKind.SHORT)
USHORT = Integer(IntKind.USHORT)
INT = Integer(IntKind.INT)
UINT = Integer(IntKind.UINT)
LONG = Integer(IntKind.LONG)
ULONG = Integer(IntKind.ULONG)
LLONG = Integer(IntKind.LLONG)
ULLONG = Integer(IntKind.ULLONG)
FLOAT = Floating(FloatKind.FLOAT)
DOUBLE = Floating(FloatKind.DOUBLE)
LDOUBLE = Floating(FloatKind.LDOUBLE)

CHAR_PTR = Pointer(q(CHAR))
VOID_PTR = Pointer(q(VOID))


def is_integer(ty: CType) -> bool:
    return isinstance(ty, Integer)


def is_floating(ty: CType) -> bool:
    return isinstance(ty, Floating)


def is_arithmetic(ty: CType) -> bool:
    return isinstance(ty, (Integer, Floating))


def is_scalar(ty: CType) -> bool:
    return isinstance(ty, (Integer, Floating, Pointer))


def is_pointer(ty: CType) -> bool:
    return isinstance(ty, Pointer)


def is_character(ty: CType) -> bool:
    return isinstance(ty, Integer) and ty.kind in (
        IntKind.CHAR, IntKind.SCHAR, IntKind.UCHAR)
