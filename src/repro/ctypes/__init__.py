"""C type representations, implementation-defined environments, and the
integer conversion/promotion machinery (ISO C11 §6.2.5-6.3)."""

from .types import (
    CType, Void, Integer, IntKind, Floating, FloatKind, Pointer, Array,
    VarArray, Function, StructRef, UnionRef, Qualifiers, QualType,
    TagEnv, TagDef, Member, NO_QUALS, CONST,
)
from .implementation import (
    Implementation, FieldLayout, RecordLayout, LP64, ILP32, CHERI128,
)
from .convert import (
    integer_promotion, usual_arithmetic_conversions, integer_rank,
    convert_integer_value, is_representable,
)

__all__ = [
    "CType", "Void", "Integer", "IntKind", "Floating", "FloatKind",
    "Pointer", "Array", "VarArray", "Function", "StructRef", "UnionRef",
    "Qualifiers", "QualType", "TagEnv", "TagDef", "Member",
    "NO_QUALS", "CONST",
    "Implementation", "FieldLayout", "RecordLayout",
    "LP64", "ILP32", "CHERI128",
    "integer_promotion", "usual_arithmetic_conversions", "integer_rank",
    "convert_integer_value", "is_representable",
]
