"""The Core language abstract syntax (paper Fig. 2).

Core is "a typed call-by-value language of function definitions and
expressions, with first-order recursive functions, lists, tuples,
booleans, mathematical integers, a type of the values of C pointers, and
a type of C function designators". It includes a type ``ctype`` of
first-class values representing C type AST terms, and the novel
sequencing constructs (unseq / let weak / let strong / let atomic /
indet / bound / nd / save / run / par / wait).

Deviation from the paper (documented in DESIGN.md): ``save``/``run`` are
given *dynamically-enclosing re-establishment* semantics — ``run l(args)``
re-enters the dynamically enclosing ``save l`` with rebound parameters —
and the elaboration encodes break/continue/return/goto with guard
parameters accordingly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..ctypes.types import CType, QualType, TagEnv
from ..ctypes.implementation import Implementation
from ..source import Loc
from ..ub import UBName

_name_counter = itertools.count(1)


def fresh_name(base: str) -> str:
    """E.fresh_symbol of the paper's elaboration monad (Fig. 3)."""
    return f"{base}.{next(_name_counter)}"


# --------------------------------------------------------------------------
# Core base types (bTy of Fig. 2) — used by the Core type checker.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CoreTy:
    pass


@dataclass(frozen=True)
class TyUnit(CoreTy):
    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class TyBoolean(CoreTy):
    def __str__(self) -> str:
        return "boolean"


@dataclass(frozen=True)
class TyCtype(CoreTy):
    def __str__(self) -> str:
        return "ctype"


@dataclass(frozen=True)
class TyList(CoreTy):
    elem: CoreTy

    def __str__(self) -> str:
        return f"[{self.elem}]"


@dataclass(frozen=True)
class TyTuple(CoreTy):
    elems: Tuple[CoreTy, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(t) for t in self.elems) + ")"


@dataclass(frozen=True)
class TyObject(CoreTy):
    """oTy: a C object value (integer/floating/pointer/array/...)."""

    kind: str  # "integer"|"floating"|"pointer"|"cfunction"|"array"|
    #            "struct"|"union"

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class TyLoaded(CoreTy):
    """``loaded oTy``: an oTy or an unspecified value."""

    obj: TyObject

    def __str__(self) -> str:
        return f"loaded {self.obj}"


@dataclass(frozen=True)
class TyEff(CoreTy):
    """``eff bTy``: the type of effectful expressions."""

    result: CoreTy

    def __str__(self) -> str:
        return f"eff {self.result}"


# --------------------------------------------------------------------------
# Patterns
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Pattern:
    pass


@dataclass(frozen=True)
class PatWild(Pattern):
    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class PatSym(Pattern):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PatCtor(Pattern):
    """Constructor patterns: Specified/Unspecified/Tuple/Cons/Nil/
    True/False/IVmax-style value constructors."""

    ctor: str
    args: Tuple[Pattern, ...] = ()

    def __str__(self) -> str:
        if self.ctor == "Tuple":
            return "(" + ", ".join(str(a) for a in self.args) + ")"
        if not self.args:
            return self.ctor
        return f"{self.ctor}({', '.join(str(a) for a in self.args)})"


# --------------------------------------------------------------------------
# Pure expressions (pe of Fig. 2)
# --------------------------------------------------------------------------

@dataclass
class Pexpr:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class PSym(Pexpr):
    name: str


@dataclass
class PVal(Pexpr):
    value: object  # a runtime value (see dynamics.evaluator)


@dataclass
class PImpl(Pexpr):
    """<impl-const>: an implementation-defined constant."""

    name: str


@dataclass
class PUndef(Pexpr):
    """undef(ub-name): reaching this is undefined behaviour (§5.4)."""

    ub: UBName


@dataclass
class PError(Pexpr):
    """error(msg): an implementation-defined static error."""

    msg: str


@dataclass
class PCtor(Pexpr):
    """Constructor application: Specified/Unspecified/Tuple/Cons/Nil/
    Array/IVmax..."""

    ctor: str
    args: List[Pexpr]


@dataclass
class PCase(Pexpr):
    scrutinee: Pexpr
    branches: List[Tuple[Pattern, Pexpr]]


@dataclass
class PArrayShift(Pexpr):
    ptr: Pexpr
    elem_ty: CType
    index: Pexpr


@dataclass
class PMemberShift(Pexpr):
    ptr: Pexpr
    tag: str
    member: str


@dataclass
class PNot(Pexpr):
    operand: Pexpr


@dataclass
class PBinop(Pexpr):
    """Core binary operators over mathematical integers / booleans:
    + - * / rem_t rem_f ^ (exponentiation) == != < <= > >= /\\ \\/ ."""

    op: str
    lhs: Pexpr
    rhs: Pexpr


@dataclass
class PStruct(Pexpr):
    tag: str
    members: List[Tuple[str, Pexpr]]


@dataclass
class PUnion(Pexpr):
    tag: str
    member: str
    value: Pexpr


@dataclass
class PCall(Pexpr):
    """Pure Core function call — either a Core-defined fun or one of the
    native auxiliary functions the elaboration uses (integer_promotion,
    ctype_width, is_representable, conv_int, catch_exceptional_condition,
    is_unsigned, ...)."""

    name: str
    args: List[Pexpr]


@dataclass
class PLet(Pexpr):
    pat: Pattern
    bound: Pexpr
    body: Pexpr


@dataclass
class PIf(Pexpr):
    cond: Pexpr
    then: Pexpr
    els: Pexpr


# --------------------------------------------------------------------------
# Memory actions (a / pa of Fig. 2)
# --------------------------------------------------------------------------

@dataclass
class Action:
    """One memory action; ``polarity`` is positive by default — negative
    actions (``neg``) are sequenced only by ``let strong`` (§5.6)."""

    kind: str  # "create"|"alloc"|"kill"|"store"|"load"|"rmw"|"fence"
    # create: (align, ctype, prefix)     alloc: (align, size)
    # kill: (ptr, dyn)  store: (ctype, ptr, value, order)
    # load: (ctype, ptr, order)  rmw: (ctype, ptr, expected, desired, ...)
    args: List[Pexpr]
    polarity: str = "pos"  # "pos" | "neg"
    order: str = "na"      # memory order for atomics ("na" non-atomic)
    loc: Loc = field(default_factory=Loc.unknown)


# --------------------------------------------------------------------------
# Effectful expressions (e of Fig. 2)
# --------------------------------------------------------------------------

@dataclass
class Expr:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class EPure(Expr):
    pe: Pexpr


@dataclass
class EPtrOp(Expr):
    """ptrop: pointer operations involving the memory state."""

    op: str  # "eq"|"ne"|"lt"|"gt"|"le"|"ge"|"ptrdiff"|"intFromPtr"|
    #          "ptrFromInt"|"ptrValidForDeref"
    args: List[Pexpr]
    # auxiliary static payload (e.g. the element ctype for ptrdiff,
    # target integer ctype for intFromPtr)
    aux: Optional[object] = None


@dataclass
class EAction(Expr):
    action: Action


@dataclass
class ECase(Expr):
    scrutinee: Pexpr
    branches: List[Tuple[Pattern, Expr]]


@dataclass
class ELet(Expr):
    pat: Pattern
    bound: Pexpr
    body: Expr


@dataclass
class EIf(Expr):
    cond: Pexpr
    then: Expr
    els: Expr


@dataclass
class ESkip(Expr):
    pass


@dataclass
class EProc(Expr):
    """pcall of a named Core procedure."""

    name: str
    args: List[Pexpr]


@dataclass
class ECcall(Expr):
    """Call of a C function through a function-designator value; the
    body is indeterminately sequenced w.r.t. the enclosing expression
    (§5.6 point 6)."""

    fn: Pexpr
    args: List[Pexpr]
    ret_ty: Optional[QualType] = None


@dataclass
class EUnseq(Expr):
    """unseq(e1..en): arbitrary interleaving, reduces to a tuple."""

    exprs: List[Expr]


@dataclass
class EWseq(Expr):
    """let weak pat = e1 in e2: positive actions of e1 sequence before
    e2."""

    pat: Pattern
    first: Expr
    second: Expr


@dataclass
class ESseq(Expr):
    """let strong pat = e1 in e2: all actions of e1 sequence before e2."""

    pat: Pattern
    first: Expr
    second: Expr


@dataclass
class EAtomicSeq(Expr):
    """let atomic (sym : oTy) = a1 in pa2: the two actions are
    sequenced and form an atomic unit no other action may come between
    (postfix ++/--)."""

    sym: str
    first: Action
    second: Action


@dataclass
class EIndet(Expr):
    """indet[n](e): e is indeterminately sequenced w.r.t. its context."""

    n: int
    body: Expr


@dataclass
class EBound(Expr):
    """bound[n](e): delimits the context of indet[n]."""

    n: int
    body: Expr


@dataclass
class ENd(Expr):
    """nd(e1..en): nondeterministic choice."""

    exprs: List[Expr]


@dataclass
class ESave(Expr):
    """save label(x_i := default_i) in e  (see module docstring for the
    re-establishment semantics used here)."""

    label: str
    params: List[Tuple[str, Pexpr]]
    body: Expr


@dataclass
class ERun(Expr):
    label: str
    args: List[Pexpr]


@dataclass
class EPar(Expr):
    exprs: List[Expr]


@dataclass
class EWait(Expr):
    thread: Pexpr


@dataclass
class EReturn(Expr):
    """return(pe): return from the current Core procedure."""

    pe: Pexpr


@dataclass
class EScope(Expr):
    """Block-structured object lifetime (deviation, see DESIGN.md): on
    entry, a ``create`` is performed for every declared object of the C
    block (§6.2.4p5-6: lifetimes start at block entry) and the resulting
    pointers are bound to the given Core symbols; on any exit — normal,
    ``run``, or procedure return — the objects are killed. Equivalent to
    Cerberus's save/run annotations carrying scope create/kill sets
    (paper §5.8)."""

    creates: List["ScopedCreate"]
    body: Expr


@dataclass
class ScopedCreate:
    sym: str
    ty: CType
    prefix: str            # human-readable object name
    readonly: bool = False
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class EVlaCreate(Expr):
    """Create a variable length array object at its declaration point
    (§6.2.4p7: a VLA's lifetime starts at the declaration, not at block
    entry).  ``size`` is a pure expression computing the (already
    positivity- and bound-checked) element count; the resulting pointer
    is the expression's value, and the object is registered with the
    dynamically innermost :class:`EScope` so every exit path kills it."""

    elem_ty: CType
    size: Pexpr
    prefix: str


# --------------------------------------------------------------------------
# Definitions and programs
# --------------------------------------------------------------------------

@dataclass
class FunDef:
    """A pure Core function definition."""

    name: str
    params: List[str]
    body: Pexpr


@dataclass
class ProcDef:
    """An effectful Core procedure definition."""

    name: str
    params: List[str]
    body: Expr
    # C-level metadata for procedures elaborated from C functions:
    ret_ty: Optional[QualType] = None
    param_tys: List[QualType] = field(default_factory=list)
    variadic: bool = False
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class GlobDef:
    """A C object with static storage duration: name, ctype, and the
    Core expression computing its initial value (or None for
    zero/unspecified initialisation)."""

    name: str
    qty: QualType
    init: Optional[Expr]
    readonly: bool = False
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class Program:
    """The result of elaborating a C program (paper Fig. 2 caption)."""

    tags: TagEnv
    impl: Implementation
    funs: Dict[str, FunDef] = field(default_factory=dict)
    procs: Dict[str, ProcDef] = field(default_factory=dict)
    globs: List[GlobDef] = field(default_factory=list)
    main: Optional[str] = None
    # implementation-defined constants
    impl_constants: Dict[str, object] = field(default_factory=dict)
