"""A pretty-printer for Core, using the concrete syntax of paper Fig. 2
(``let weak``, ``unseq``, ``save``/``run``, ``undef(...)``, ...).

Used by the Fig. 3 reproduction (bench E10) and by ``cerberus-py
--pp-core``.
"""

from __future__ import annotations

from typing import List

from . import ast as K

_INDENT = "  "


def pretty_program(program: K.Program) -> str:
    out: List[str] = []
    for g in program.globs:
        init = " := <init>" if g.init is not None else ""
        out.append(f"glob {g.name}: {g.qty}{init}")
    for fun in program.funs.values():
        params = ", ".join(fun.params)
        out.append(f"fun {fun.name}({params}) :=")
        out.append(_ind(pretty_pure(fun.body), 1))
    for proc in program.procs.values():
        params = ", ".join(proc.params)
        out.append(f"proc {proc.name}({params}): eff :=")
        out.append(_ind(pretty_expr(proc.body), 1))
        out.append("")
    if program.main:
        out.append(f"-- startup: {program.main}")
    return "\n".join(out)


def _ind(text: str, n: int) -> str:
    pad = _INDENT * n
    return "\n".join(pad + line for line in text.split("\n"))


def pretty_pure(pe: K.Pexpr) -> str:
    if isinstance(pe, K.PSym):
        return pe.name
    if isinstance(pe, K.PVal):
        return repr(pe.value)
    if isinstance(pe, K.PImpl):
        return f"<{pe.name}>"
    if isinstance(pe, K.PUndef):
        return f"undef({pe.ub.name})"
    if isinstance(pe, K.PError):
        return f"error({pe.msg!r})"
    if isinstance(pe, K.PCtor):
        args = ", ".join(pretty_pure(a) for a in pe.args)
        if pe.ctor == "Tuple":
            return f"({args})"
        return f"{pe.ctor}({args})"
    if isinstance(pe, K.PCase):
        branches = "\n".join(
            f"| {pat} =>\n{_ind(pretty_pure(body), 2)}"
            for pat, body in pe.branches)
        return (f"case {pretty_pure(pe.scrutinee)} with\n"
                f"{_ind(branches, 1)}\nend")
    if isinstance(pe, K.PArrayShift):
        return (f"array_shift({pretty_pure(pe.ptr)}, '{pe.elem_ty}', "
                f"{pretty_pure(pe.index)})")
    if isinstance(pe, K.PMemberShift):
        return (f"member_shift({pretty_pure(pe.ptr)}, "
                f"{pe.tag}.{pe.member})")
    if isinstance(pe, K.PNot):
        return f"not({pretty_pure(pe.operand)})"
    if isinstance(pe, K.PBinop):
        return (f"({pretty_pure(pe.lhs)} {pe.op} "
                f"{pretty_pure(pe.rhs)})")
    if isinstance(pe, K.PStruct):
        ms = ", ".join(f".{n} = {pretty_pure(v)}" for n, v in pe.members)
        return f"(struct {pe.tag}){{{ms}}}"
    if isinstance(pe, K.PUnion):
        return (f"(union {pe.tag}){{.{pe.member} = "
                f"{pretty_pure(pe.value)}}}")
    if isinstance(pe, K.PCall):
        args = ", ".join(pretty_pure(a) for a in pe.args)
        return f"{pe.name}({args})"
    if isinstance(pe, K.PLet):
        return (f"let {pe.pat} = {pretty_pure(pe.bound)} in\n"
                f"{pretty_pure(pe.body)}")
    if isinstance(pe, K.PIf):
        return (f"if {pretty_pure(pe.cond)} then\n"
                f"{_ind(pretty_pure(pe.then), 1)}\nelse\n"
                f"{_ind(pretty_pure(pe.els), 1)}")
    return f"<?pure {type(pe).__name__}>"


def pretty_action(a: K.Action) -> str:
    args = ", ".join(pretty_pure(x) if isinstance(x, K.Pexpr)
                     else repr(x) for x in a.args)
    body = f"{a.kind}({args})"
    if a.polarity == "neg":
        return f"neg({body})"
    return body


def pretty_expr(e: K.Expr) -> str:
    if isinstance(e, K.EPure):
        return f"pure({pretty_pure(e.pe)})"
    if isinstance(e, K.EPtrOp):
        args = ", ".join(pretty_pure(a) for a in e.args)
        return f"ptrop({e.op}, {args})"
    if isinstance(e, K.EAction):
        return pretty_action(e.action)
    if isinstance(e, K.ECase):
        branches = "\n".join(
            f"| {pat} =>\n{_ind(pretty_expr(body), 2)}"
            for pat, body in e.branches)
        return (f"case {pretty_pure(e.scrutinee)} with\n"
                f"{_ind(branches, 1)}\nend")
    if isinstance(e, K.ELet):
        return (f"let {e.pat} = {pretty_pure(e.bound)} in\n"
                f"{pretty_expr(e.body)}")
    if isinstance(e, K.EIf):
        return (f"if {pretty_pure(e.cond)} then\n"
                f"{_ind(pretty_expr(e.then), 1)}\nelse\n"
                f"{_ind(pretty_expr(e.els), 1)}")
    if isinstance(e, K.ESkip):
        return "skip"
    if isinstance(e, K.EProc):
        args = ", ".join(pretty_pure(a) for a in e.args)
        return f"pcall({e.name}, {args})"
    if isinstance(e, K.ECcall):
        args = ", ".join(pretty_pure(a) for a in e.args)
        return f"ccall({pretty_pure(e.fn)}, {args})"
    if isinstance(e, K.EUnseq):
        inner = ",\n".join(_ind(pretty_expr(x), 1) for x in e.exprs)
        return f"unseq(\n{inner})"
    if isinstance(e, K.EWseq):
        return (f"let weak {e.pat} =\n{_ind(pretty_expr(e.first), 1)}\n"
                f"in\n{pretty_expr(e.second)}")
    if isinstance(e, K.ESseq):
        return (f"let strong {e.pat} =\n"
                f"{_ind(pretty_expr(e.first), 1)}\n"
                f"in\n{pretty_expr(e.second)}")
    if isinstance(e, K.EAtomicSeq):
        return (f"let atomic {e.sym} = {pretty_action(e.first)} in "
                f"{pretty_action(e.second)}")
    if isinstance(e, K.EIndet):
        return f"indet[{e.n}](\n{_ind(pretty_expr(e.body), 1)})"
    if isinstance(e, K.EBound):
        return f"bound[{e.n}](\n{_ind(pretty_expr(e.body), 1)})"
    if isinstance(e, K.ENd):
        inner = ",\n".join(_ind(pretty_expr(x), 1) for x in e.exprs)
        return f"nd(\n{inner})"
    if isinstance(e, K.ESave):
        params = ", ".join(f"{n} := {pretty_pure(d)}"
                           for n, d in e.params)
        return (f"save {e.label}({params}) in\n"
                f"{_ind(pretty_expr(e.body), 1)}")
    if isinstance(e, K.ERun):
        args = ", ".join(pretty_pure(a) for a in e.args)
        return f"run {e.label}({args})"
    if isinstance(e, K.EPar):
        inner = " ||| ".join(pretty_expr(x) for x in e.exprs)
        return f"par({inner})"
    if isinstance(e, K.EWait):
        return f"wait({pretty_pure(e.thread)})"
    if isinstance(e, K.EReturn):
        return f"return({pretty_pure(e.pe)})"
    if isinstance(e, K.EScope):
        creates = "; ".join(f"{c.sym}: '{c.ty}'" for c in e.creates)
        return (f"scope [{creates}] in\n"
                f"{_ind(pretty_expr(e.body), 1)}")
    if isinstance(e, K.EVlaCreate):
        return (f"create_vla('{e.elem_ty}', {pretty_pure(e.size)}, "
                f"{e.prefix!r})")
    return f"<?expr {type(e).__name__}>"
