"""Core: the typed call-by-value target calculus of the elaboration
(paper §5.2, Fig. 2)."""

from . import ast
from .pretty import pretty_program, pretty_expr, pretty_pure
from .typecheck import typecheck_program

__all__ = ["ast", "pretty_program", "pretty_expr", "pretty_pure",
           "typecheck_program"]
