"""A structural well-formedness checker for Core programs.

The paper's elaboration "is total and designed to produce well-typed Core
programs" (§5.1); this checker enforces the structural half of that
property on our Core: every symbol referenced is bound, every ``run``
targets a (statically) enclosing ``save`` with matching arity, case
branches are non-empty, and actions carry the right argument counts.
(A full bTy-level type reconstruction would add little safety on top of
Python's runtime checks, so this deliberately checks binding/arity
structure — the properties whose violation would make the dynamics
raise ``InternalError``.)
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import CoreTypeError
from . import ast as K

_ACTION_ARITY = {"create": (3, 4), "alloc": (2, 2), "kill": (2, 2),
                 "store": (3, 4), "load": (2, 3), "rmw": (3, 6),
                 # Bit-field member accesses: (ctype, ptr, bit-offset,
                 # width[, value]).
                 "loadbf": (4, 4), "storebf": (5, 5)}


class _Checker:
    def __init__(self, program: K.Program):
        self.program = program
        self.errors: List[str] = []

    def error(self, msg: str, loc) -> None:
        self.errors.append(f"{loc}: {msg}")

    # -- pure ------------------------------------------------------------------

    def pure(self, pe: K.Pexpr, bound: Set[str]) -> None:
        if isinstance(pe, K.PSym):
            if pe.name not in bound:
                self.error(f"unbound Core symbol '{pe.name}'", pe.loc)
        elif isinstance(pe, K.PCtor):
            for a in pe.args:
                self.pure(a, bound)
        elif isinstance(pe, K.PCase):
            self.pure(pe.scrutinee, bound)
            if not pe.branches:
                self.error("empty case", pe.loc)
            for pat, body in pe.branches:
                self.pure(body, bound | _pattern_syms(pat))
        elif isinstance(pe, K.PArrayShift):
            self.pure(pe.ptr, bound)
            self.pure(pe.index, bound)
        elif isinstance(pe, K.PMemberShift):
            self.pure(pe.ptr, bound)
            defn = self.program.tags.get(pe.tag)
            if defn is None or defn.member(pe.member) is None:
                self.error(f"member_shift to unknown "
                           f"{pe.tag}.{pe.member}", pe.loc)
        elif isinstance(pe, K.PNot):
            self.pure(pe.operand, bound)
        elif isinstance(pe, K.PBinop):
            self.pure(pe.lhs, bound)
            self.pure(pe.rhs, bound)
        elif isinstance(pe, (K.PStruct,)):
            for _, v in pe.members:
                self.pure(v, bound)
        elif isinstance(pe, K.PUnion):
            self.pure(pe.value, bound)
        elif isinstance(pe, K.PCall):
            for a in pe.args:
                self.pure(a, bound)
            fun = self.program.funs.get(pe.name)
            if fun is not None and len(fun.params) != len(pe.args):
                self.error(f"pure call arity mismatch for {pe.name}",
                           pe.loc)
        elif isinstance(pe, K.PLet):
            self.pure(pe.bound, bound)
            self.pure(pe.body, bound | _pattern_syms(pe.pat))
        elif isinstance(pe, K.PIf):
            self.pure(pe.cond, bound)
            self.pure(pe.then, bound)
            self.pure(pe.els, bound)

    # -- effectful ---------------------------------------------------------------

    def expr(self, e: K.Expr, bound: Set[str],
             saves: Dict[str, int]) -> None:
        if isinstance(e, K.EPure):
            self.pure(e.pe, bound)
        elif isinstance(e, K.EPtrOp):
            for a in e.args:
                self.pure(a, bound)
        elif isinstance(e, K.EAction):
            self.action(e.action, bound)
        elif isinstance(e, K.ECase):
            self.pure(e.scrutinee, bound)
            if not e.branches:
                self.error("empty case", e.loc)
            for pat, body in e.branches:
                self.expr(body, bound | _pattern_syms(pat), saves)
        elif isinstance(e, K.ELet):
            self.pure(e.bound, bound)
            self.expr(e.body, bound | _pattern_syms(e.pat), saves)
        elif isinstance(e, K.EIf):
            self.pure(e.cond, bound)
            self.expr(e.then, bound, saves)
            self.expr(e.els, bound, saves)
        elif isinstance(e, K.ESkip):
            pass
        elif isinstance(e, K.EProc):
            for a in e.args:
                self.pure(a, bound)
            if e.name not in self.program.procs:
                from ..libc.builtins import NATIVE_PROCS
                if e.name not in NATIVE_PROCS:
                    self.error(f"pcall of unknown procedure {e.name}",
                               e.loc)
        elif isinstance(e, K.ECcall):
            self.pure(e.fn, bound)
            for a in e.args:
                self.pure(a, bound)
        elif isinstance(e, K.EUnseq):
            if len(e.exprs) < 2:
                self.error("unseq with fewer than 2 components", e.loc)
            for sub in e.exprs:
                self.expr(sub, bound, saves)
        elif isinstance(e, (K.EWseq, K.ESseq)):
            self.expr(e.first, bound, saves)
            self.expr(e.second, bound | _pattern_syms(e.pat), saves)
        elif isinstance(e, K.EAtomicSeq):
            self.action(e.first, bound)
            self.action(e.second, bound | {e.sym})
        elif isinstance(e, (K.EIndet, K.EBound)):
            self.expr(e.body, bound, saves)
        elif isinstance(e, K.ENd):
            for sub in e.exprs:
                self.expr(sub, bound, saves)
        elif isinstance(e, K.ESave):
            for _, d in e.params:
                self.pure(d, bound)
            inner = dict(saves)
            inner[e.label] = len(e.params)
            self.expr(e.body, bound | {n for n, _ in e.params}, inner)
        elif isinstance(e, K.ERun):
            for a in e.args:
                self.pure(a, bound)
            if e.label not in saves:
                self.error(f"run of label '{e.label}' with no "
                           "enclosing save", e.loc)
            elif saves[e.label] != len(e.args):
                self.error(f"run {e.label} arity {len(e.args)} != "
                           f"save arity {saves[e.label]}", e.loc)
        elif isinstance(e, K.EPar):
            for sub in e.exprs:
                self.expr(sub, bound, saves)
        elif isinstance(e, K.EWait):
            self.pure(e.thread, bound)
        elif isinstance(e, K.EReturn):
            self.pure(e.pe, bound)
        elif isinstance(e, K.EScope):
            inner_bound = bound | {c.sym for c in e.creates}
            self.expr(e.body, inner_bound, saves)
        elif isinstance(e, K.EVlaCreate):
            self.pure(e.size, bound)
        else:
            self.error(f"unknown Core expression {type(e).__name__}",
                       e.loc)

    def action(self, a: K.Action, bound: Set[str]) -> None:
        arity = _ACTION_ARITY.get(a.kind)
        if arity is None:
            self.error(f"unknown action kind {a.kind}", a.loc)
            return
        lo, hi = arity
        if not (lo <= len(a.args) <= hi):
            self.error(f"action {a.kind} arity {len(a.args)}", a.loc)
        for x in a.args:
            if isinstance(x, K.Pexpr):
                self.pure(x, bound)


def _pattern_syms(pat: K.Pattern) -> Set[str]:
    if isinstance(pat, K.PatSym):
        return {pat.name}
    if isinstance(pat, K.PatCtor):
        out: Set[str] = set()
        for sub in pat.args:
            out |= _pattern_syms(sub)
        return out
    return set()


def typecheck_program(program: K.Program) -> List[str]:
    """Check a Core program; returns a list of error strings (empty when
    well-formed)."""
    checker = _Checker(program)
    globals_bound = {g.name for g in program.globs}
    globals_bound |= set(program.procs)
    from ..libc.builtins import NATIVE_PROCS
    globals_bound |= set(NATIVE_PROCS)
    for fun in program.funs.values():
        checker.pure(fun.body, globals_bound | set(fun.params))
    for proc in program.procs.values():
        checker.expr(proc.body, globals_bound | set(proc.params), {})
    for g in program.globs:
        if g.init is not None:
            checker.expr(g.init, globals_bound, {})
    return checker.errors
