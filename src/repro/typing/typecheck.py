"""Type inference/checking over Ail, producing Typed Ail.

Adds explicit type annotations to every expression (``ty`` / ``is_lvalue``)
and inserts explicit conversion nodes (:class:`repro.ail.ast.EConv`) for
lvalue conversion, array-to-pointer decay and function designator decay
(§6.3.2.1), so that the elaboration never has to guess whether an operand
denotes an object or a value. On failure it identifies the violated
constraint of the standard (paper §5.1).

The usual arithmetic conversions themselves are *not* applied here as
tree rewrites: as in Cerberus, the elaboration re-derives them from the
annotated operand types, keeping this phase free of commitments about
implementation-defined behaviour where possible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ail import ast as A
from ..ctypes import convert
from ..ctypes.implementation import Implementation
from ..ctypes.types import (
    Array, CType, Floating, FloatKind, Function, Integer, IntKind, Pointer,
    QualType, StructRef, UnionRef, VarArray, Void, NO_QUALS,
    is_arithmetic, is_integer, is_scalar,
)
from ..errors import TypeCheckError, UnsupportedError
from ..source import Loc

_INT = Integer(IntKind.INT)
_SIZE_T = Integer(IntKind.ULONG)
_PTRDIFF_T = Integer(IntKind.LONG)


def _qt(ty: CType) -> QualType:
    return QualType(ty)


class TypeChecker:
    def __init__(self, program: A.Program, impl: Implementation):
        self.program = program
        self.impl = impl
        self.tags = program.tags
        # Symbol -> declared type, built from the program.
        self.env: Dict[A.Symbol, QualType] = {}
        self._current_ret: Optional[QualType] = None
        for obj in program.objects:
            self.env[obj.sym] = obj.qty
        for sym, fdef in program.functions.items():
            self.env[sym] = fdef.qty

    # -- entry ----------------------------------------------------------------

    def run(self) -> A.Program:
        for obj in self.program.objects:
            if obj.init is not None:
                self.check_init(obj.qty, obj.init)
        for fdef in self.program.functions.values():
            if fdef.body is None:
                continue
            fty = fdef.qty.ty
            assert isinstance(fty, Function)
            for psym, pqty in zip(fdef.param_syms, fty.params):
                self.env[psym] = pqty
            self._current_ret = fty.ret
            self.stmt(fdef.body)
        return self.program

    # -- helpers ------------------------------------------------------------------

    def error(self, message: str, loc: Loc, iso: str) -> TypeCheckError:
        return TypeCheckError(message, loc, iso=iso)

    def rvalue(self, e: A.Expr) -> A.Expr:
        """Apply lvalue conversion / decay (§6.3.2.1), wrapping in EConv."""
        assert e.ty is not None
        ty = e.ty.ty
        if isinstance(ty, (Array, VarArray)):
            conv = A.EConv("decay", _qt(Pointer(ty.of)), e, loc=e.loc)
            conv.ty = conv.to
            return conv
        if isinstance(ty, Function):
            conv = A.EConv("fn-decay", _qt(Pointer(e.ty)), e, loc=e.loc)
            conv.ty = conv.to
            return conv
        if e.is_lvalue:
            conv = A.EConv("lvalue", e.ty.unqualified(), e, loc=e.loc)
            conv.ty = conv.to
            return conv
        return e

    def require_modifiable(self, e: A.Expr, what: str) -> None:
        assert e.ty is not None
        if not e.is_lvalue:
            raise self.error(f"{what} requires an lvalue", e.loc,
                             iso="6.5.16p2")
        if e.ty.quals.const:
            raise self.error(
                f"{what} of const-qualified object", e.loc, iso="6.5.16p2")
        if isinstance(e.ty.ty, (Array, VarArray)):
            raise self.error(f"{what} of array", e.loc, iso="6.5.16p2")
        if not e.ty.ty.is_complete(self.tags) and \
                not isinstance(e.ty.ty, Pointer) and \
                not is_arithmetic(e.ty.ty):
            raise self.error(f"{what} of incomplete type", e.loc,
                             iso="6.5.16p2")

    def int_const_type(self, e: A.EConstInt) -> Integer:
        """§6.4.4.1p5: the type of an integer constant."""
        decimal = e.base == 10
        suffix = e.suffix
        candidates: List[IntKind]
        if suffix == "":
            candidates = [IntKind.INT, IntKind.LONG, IntKind.LLONG] \
                if decimal else [IntKind.INT, IntKind.UINT, IntKind.LONG,
                                 IntKind.ULONG, IntKind.LLONG,
                                 IntKind.ULLONG]
        elif suffix == "u":
            candidates = [IntKind.UINT, IntKind.ULONG, IntKind.ULLONG]
        elif suffix == "l":
            candidates = [IntKind.LONG, IntKind.LLONG] if decimal else \
                [IntKind.LONG, IntKind.ULONG, IntKind.LLONG, IntKind.ULLONG]
        elif suffix == "ul":
            candidates = [IntKind.ULONG, IntKind.ULLONG]
        elif suffix == "ll":
            candidates = [IntKind.LLONG] if decimal else \
                [IntKind.LLONG, IntKind.ULLONG]
        else:  # "ull"
            candidates = [IntKind.ULLONG]
        for kind in candidates:
            ty = Integer(kind)
            if convert.is_representable(e.value, ty, self.impl):
                return ty
        raise self.error(
            f"integer constant {e.value} too large for any type", e.loc,
            iso="6.4.4.1p6")

    # -- expression checking ----------------------------------------------------------

    def expr(self, e: A.Expr) -> A.Expr:
        """Annotate ``e`` (returning a possibly-wrapped node)."""
        method = getattr(self, "_e_" + type(e).__name__, None)
        if method is None:
            raise self.error(f"unhandled expression {type(e).__name__}",
                             e.loc, iso="6.5")
        return method(e)

    def _e_EId(self, e: A.EId) -> A.Expr:
        qty = self.env.get(e.sym)
        if qty is None:
            raise self.error(f"untyped symbol {e.sym}", e.loc, iso="6.5.1")
        e.ty = qty
        e.is_lvalue = not isinstance(qty.ty, Function)
        return e

    def _e_EConstInt(self, e: A.EConstInt) -> A.Expr:
        e.ty = _qt(self.int_const_type(e))
        return e

    def _e_EConstFloat(self, e: A.EConstFloat) -> A.Expr:
        kind = {"f": FloatKind.FLOAT, "l": FloatKind.LDOUBLE}.get(
            e.suffix, FloatKind.DOUBLE)
        e.ty = _qt(Floating(kind))
        return e

    def _e_EString(self, e: A.EString) -> A.Expr:
        char = Integer(IntKind.CHAR)
        e.ty = _qt(Array(_qt(char), len(e.value) + 1))
        e.is_lvalue = True
        return e

    def _e_EIndex(self, e: A.EIndex) -> A.Expr:
        e.base = self.rvalue(self.expr(e.base))
        e.index = self.rvalue(self.expr(e.index))
        bty, ity = e.base.ty.ty, e.index.ty.ty
        if is_integer(bty) and isinstance(ity, Pointer):
            e.base, e.index = e.index, e.base  # a[i] == i[a] (§6.5.2.1p2)
            bty, ity = ity, bty
        if not isinstance(bty, Pointer):
            raise self.error("subscripted value is not a pointer (after "
                             "decay)", e.loc, iso="6.5.2.1p1")
        if not is_integer(ity):
            raise self.error("array subscript is not an integer", e.loc,
                             iso="6.5.2.1p1")
        if not bty.to.ty.is_complete(self.tags):
            raise self.error("subscript of pointer to incomplete type",
                             e.loc, iso="6.5.2.1p1")
        e.ty = bty.to
        e.is_lvalue = True
        return e

    def _e_ECall(self, e: A.ECall) -> A.Expr:
        e.func = self.rvalue(self.expr(e.func))
        fty = e.func.ty.ty
        if not (isinstance(fty, Pointer)
                and isinstance(fty.to.ty, Function)):
            raise self.error("called object is not a function", e.loc,
                             iso="6.5.2.2p1")
        fn = fty.to.ty
        args = [self.rvalue(self.expr(a)) for a in e.args]
        if not fn.no_proto:
            if len(args) < len(fn.params) or \
                    (len(args) > len(fn.params) and not fn.variadic):
                raise self.error(
                    f"wrong number of arguments ({len(args)} for "
                    f"{len(fn.params)})", e.loc, iso="6.5.2.2p2")
            for i, (arg, pqty) in enumerate(zip(args, fn.params)):
                args[i] = self.check_assignable(
                    pqty, arg, f"argument {i + 1}")
        # Default argument promotions for variadic/no-proto tails
        # (§6.5.2.2p6-7) are applied by the elaboration.
        e.args = args
        e.ty = fn.ret
        return e

    def _e_EMember(self, e: A.EMember) -> A.Expr:
        e.base = self.expr(e.base)
        if e.arrow:
            e.base = self.rvalue(e.base)
            bty = e.base.ty.ty
            if not isinstance(bty, Pointer) or not isinstance(
                    bty.to.ty, (StructRef, UnionRef)):
                raise self.error("-> on non-pointer-to-record", e.loc,
                                 iso="6.5.2.3p2")
            rec = bty.to
        else:
            bty = e.base.ty.ty
            if not isinstance(bty, (StructRef, UnionRef)):
                raise self.error(". on non-record", e.loc, iso="6.5.2.3p1")
            rec = e.base.ty
        defn = self.tags.require(rec.ty.tag)  # type: ignore[union-attr]
        if not defn.complete:
            raise self.error(f"member access on incomplete type {rec.ty}",
                             e.loc, iso="6.5.2.3")
        member = defn.member(e.member)
        if member is None:
            raise self.error(f"no member named '{e.member}' in {rec.ty}",
                             e.loc, iso="6.5.2.3p1")
        e.ty = member.qty.with_quals(rec.quals)
        e.is_lvalue = e.arrow or e.base.is_lvalue
        return e

    def _bitfield_member(self, e: A.Expr):
        """The :class:`Member` when ``e`` designates a bit-field
        (§6.5.3.2p1, §6.5.3.4p1 forbid ``&`` and ``sizeof`` on them)."""
        if not isinstance(e, A.EMember) or e.base.ty is None:
            return None
        bty = e.base.ty.ty
        rec = bty.to.ty if e.arrow and isinstance(bty, Pointer) else bty
        if not isinstance(rec, (StructRef, UnionRef)):
            return None
        member = self.tags.require(rec.tag).member(e.member)
        if member is not None and member.bit_width is not None:
            return member
        return None

    def _e_EUnary(self, e: A.EUnary) -> A.Expr:
        if e.op == "&":
            e.operand = self.expr(e.operand)
            oty = e.operand.ty
            if isinstance(oty.ty, Function):
                e.ty = _qt(Pointer(oty))
                return e
            if not e.operand.is_lvalue:
                raise self.error("& requires an lvalue", e.loc,
                                 iso="6.5.3.2p1")
            if self._bitfield_member(e.operand) is not None:
                raise self.error("& applied to a bit-field", e.loc,
                                 iso="6.5.3.2p1")
            if isinstance(oty.ty, VarArray):
                raise UnsupportedError(
                    "address of a variable length array (pointers to "
                    "VLA types are outside the fragment)", e.loc)
            e.ty = _qt(Pointer(oty))
            return e
        if e.op == "sizeof":
            e.operand = self.expr(e.operand)  # unevaluated, no decay
            if isinstance(e.operand.ty.ty, Function):
                raise self.error("sizeof function type", e.loc,
                                 iso="6.5.3.4p1")
            if not e.operand.ty.ty.is_complete(self.tags):
                raise self.error("sizeof incomplete type", e.loc,
                                 iso="6.5.3.4p1")
            if self._bitfield_member(e.operand) is not None:
                raise self.error("sizeof applied to a bit-field",
                                 e.loc, iso="6.5.3.4p1")
            e.ty = _qt(_SIZE_T)
            return e
        e.operand = self.rvalue(self.expr(e.operand))
        oty = e.operand.ty.ty
        if e.op == "*":
            if not isinstance(oty, Pointer):
                raise self.error("indirection of non-pointer", e.loc,
                                 iso="6.5.3.2p2")
            e.ty = oty.to
            e.is_lvalue = not isinstance(oty.to.ty, Function)
            return e
        if e.op in ("+", "-"):
            if not is_arithmetic(oty):
                raise self.error(f"unary {e.op} of non-arithmetic type",
                                 e.loc, iso="6.5.3.3p1")
            e.ty = _qt(convert.integer_promotion(oty, self.impl)
                       if is_integer(oty) else oty)
            return e
        if e.op == "~":
            if not is_integer(oty):
                raise self.error("~ of non-integer type", e.loc,
                                 iso="6.5.3.3p1")
            e.ty = _qt(convert.integer_promotion(oty, self.impl))
            return e
        if e.op == "!":
            if not is_scalar(oty):
                raise self.error("! of non-scalar type", e.loc,
                                 iso="6.5.3.3p1")
            e.ty = _qt(_INT)
            return e
        raise self.error(f"unhandled unary '{e.op}'", e.loc, iso="6.5.3")

    def _e_EBinary(self, e: A.EBinary) -> A.Expr:
        e.lhs = self.rvalue(self.expr(e.lhs))
        e.rhs = self.rvalue(self.expr(e.rhs))
        e.ty = self.binary_result(e.op, e.lhs, e.rhs, e.loc)
        return e

    def binary_result(self, op: str, lhs: A.Expr, rhs: A.Expr,
                      loc: Loc) -> QualType:
        lt, rt = lhs.ty.ty, rhs.ty.ty
        if op in ("*", "/"):
            if not (is_arithmetic(lt) and is_arithmetic(rt)):
                raise self.error(f"invalid operands to '{op}'", loc,
                                 iso="6.5.5p2")
            return _qt(convert.arithmetic_result_type(lt, rt, self.impl))
        if op == "%":
            if not (is_integer(lt) and is_integer(rt)):
                raise self.error("invalid operands to '%'", loc,
                                 iso="6.5.5p2")
            return _qt(convert.arithmetic_result_type(lt, rt, self.impl))
        if op == "+":
            if isinstance(lt, Pointer) and is_integer(rt):
                self._check_ptr_arith(lt, loc)
                return lhs.ty
            if is_integer(lt) and isinstance(rt, Pointer):
                self._check_ptr_arith(rt, loc)
                return rhs.ty
            if is_arithmetic(lt) and is_arithmetic(rt):
                return _qt(convert.arithmetic_result_type(lt, rt,
                                                          self.impl))
            raise self.error("invalid operands to '+'", loc, iso="6.5.6p2")
        if op == "-":
            if isinstance(lt, Pointer) and isinstance(rt, Pointer):
                self._check_ptr_arith(lt, loc)
                return _qt(_PTRDIFF_T)
            if isinstance(lt, Pointer) and is_integer(rt):
                self._check_ptr_arith(lt, loc)
                return lhs.ty
            if is_arithmetic(lt) and is_arithmetic(rt):
                return _qt(convert.arithmetic_result_type(lt, rt,
                                                          self.impl))
            raise self.error("invalid operands to '-'", loc, iso="6.5.6p3")
        if op in ("<<", ">>"):
            if not (is_integer(lt) and is_integer(rt)):
                raise self.error(f"invalid operands to '{op}'", loc,
                                 iso="6.5.7p2")
            return _qt(convert.integer_promotion(lt, self.impl))
        if op in ("<", ">", "<=", ">=", "==", "!="):
            if is_arithmetic(lt) and is_arithmetic(rt):
                return _qt(_INT)
            if isinstance(lt, Pointer) or isinstance(rt, Pointer):
                # Null pointer constants and void* mixes are permitted
                # for ==/!= (§6.5.9p2); relational needs object pointers
                # (§6.5.8p2). Deeper compatibility left to the memory
                # model at runtime (this is where the de facto questions
                # live — Q2, Q25).
                return _qt(_INT)
            raise self.error(f"invalid operands to '{op}'", loc,
                             iso="6.5.8p2")
        if op in ("&", "^", "|"):
            if not (is_integer(lt) and is_integer(rt)):
                raise self.error(f"invalid operands to '{op}'", loc,
                                 iso="6.5.10p2")
            return _qt(convert.arithmetic_result_type(lt, rt, self.impl))
        if op in ("&&", "||"):
            if not (is_scalar(lt) and is_scalar(rt)):
                raise self.error(f"invalid operands to '{op}'", loc,
                                 iso="6.5.13p2")
            return _qt(_INT)
        raise self.error(f"unhandled binary '{op}'", loc, iso="6.5")

    def _check_ptr_arith(self, ty: Pointer, loc: Loc) -> None:
        to = ty.to.ty
        if isinstance(to, Void):
            raise self.error("arithmetic on void*", loc, iso="6.5.6p2")
        if isinstance(to, Function):
            raise self.error("arithmetic on function pointer", loc,
                             iso="6.5.6p2")
        if not to.is_complete(self.tags):
            raise self.error("arithmetic on pointer to incomplete type",
                             loc, iso="6.5.6p2")

    def _e_ECast(self, e: A.ECast) -> A.Expr:
        e.operand = self.rvalue(self.expr(e.operand))
        to = e.to.ty
        fr = e.operand.ty.ty
        if isinstance(to, Void):
            e.ty = e.to
            return e
        if not is_scalar(to):
            raise self.error(f"cast to non-scalar type {to}", e.loc,
                             iso="6.5.4p2")
        if not is_scalar(fr):
            raise self.error(f"cast of non-scalar type {fr}", e.loc,
                             iso="6.5.4p2")
        if isinstance(to, Pointer) and isinstance(fr, Floating):
            raise self.error("cast of floating value to pointer", e.loc,
                             iso="6.5.4p4")
        if isinstance(fr, Pointer) and isinstance(to, Floating):
            raise self.error("cast of pointer to floating type", e.loc,
                             iso="6.5.4p4")
        e.ty = _qt(to)
        return e

    def _e_EAssign(self, e: A.EAssign) -> A.Expr:
        e.lhs = self.expr(e.lhs)
        self.require_modifiable(e.lhs, "assignment")
        e.rhs = self.rvalue(self.expr(e.rhs))
        if e.op == "=":
            e.rhs = self.check_assignable(e.lhs.ty, e.rhs, "assignment")
        else:
            # Validate the compound operator against the operand types by
            # treating the lhs as an already-loaded value (§6.5.16.2p3).
            binop = e.op[:-1]
            fake_lhs = A.EConv("lvalue", e.lhs.ty.unqualified(), e.lhs,
                               loc=e.loc)
            fake_lhs.ty = fake_lhs.to
            self.binary_result(binop, fake_lhs, e.rhs, e.loc)
        e.ty = e.lhs.ty.unqualified()
        return e

    def _e_ECond(self, e: A.ECond) -> A.Expr:
        e.cond = self.rvalue(self.expr(e.cond))
        if not is_scalar(e.cond.ty.ty):
            raise self.error("?: condition is not scalar", e.loc,
                             iso="6.5.15p2")
        e.then = self.rvalue(self.expr(e.then))
        e.els = self.rvalue(self.expr(e.els))
        tt, et = e.then.ty.ty, e.els.ty.ty
        if is_arithmetic(tt) and is_arithmetic(et):
            e.ty = _qt(convert.arithmetic_result_type(tt, et, self.impl))
        elif isinstance(tt, Void) and isinstance(et, Void):
            e.ty = _qt(Void())
        elif isinstance(tt, Pointer) and isinstance(et, Pointer):
            # Composite (§6.5.15p6): prefer void* if either side is.
            if isinstance(tt.to.ty, Void):
                e.ty = e.then.ty
            elif isinstance(et.to.ty, Void):
                e.ty = e.els.ty
            else:
                e.ty = e.then.ty
        elif isinstance(tt, Pointer) and _is_null_const(e.els):
            e.ty = e.then.ty
        elif isinstance(et, Pointer) and _is_null_const(e.then):
            e.ty = e.els.ty
        elif isinstance(tt, (StructRef, UnionRef)) and tt == et:
            e.ty = e.then.ty
        else:
            raise self.error("incompatible ?: branches", e.loc,
                             iso="6.5.15p3")
        return e

    def _e_EComma(self, e: A.EComma) -> A.Expr:
        e.lhs = self.rvalue(self.expr(e.lhs))
        e.rhs = self.rvalue(self.expr(e.rhs))
        e.ty = e.rhs.ty
        return e

    def _e_EIncrDecr(self, e: A.EIncrDecr) -> A.Expr:
        e.base = self.expr(e.base)
        self.require_modifiable(e.base, f"'{e.op}'")
        bty = e.base.ty.ty
        if not (is_arithmetic(bty) or isinstance(bty, Pointer)):
            raise self.error(f"'{e.op}' requires arithmetic or pointer "
                             "type", e.loc, iso="6.5.2.4p1")
        if isinstance(bty, Pointer):
            self._check_ptr_arith(bty, e.loc)
        e.ty = e.base.ty.unqualified()
        return e

    def _e_ESizeofType(self, e: A.ESizeofType) -> A.Expr:
        if not e.of.ty.is_complete(self.tags):
            raise self.error("sizeof incomplete type", e.loc,
                             iso="6.5.3.4p1")
        e.ty = _qt(_SIZE_T)
        return e

    def _e_EAlignofType(self, e: A.EAlignofType) -> A.Expr:
        e.ty = _qt(_SIZE_T)
        return e

    def _e_EOffsetof(self, e: A.EOffsetof) -> A.Expr:
        if not isinstance(e.record.ty, (StructRef, UnionRef)):
            raise self.error("offsetof on non-record type", e.loc,
                             iso="7.19p3")
        member = self.tags.require(e.record.ty.tag).member(e.member)
        if member is not None and member.bit_width is not None:
            raise self.error("offsetof of a bit-field member", e.loc,
                             iso="7.19p3")
        e.ty = _qt(_SIZE_T)
        return e

    def _e_ECompound(self, e: A.ECompound) -> A.Expr:
        self.check_init(e.of, e.init)
        e.ty = e.of
        e.is_lvalue = True
        return e

    def _e_EConv(self, e: A.EConv) -> A.Expr:
        e.operand = self.expr(e.operand)
        e.ty = e.to
        return e

    # -- assignment compatibility -------------------------------------------------------

    def check_assignable(self, to: QualType, rhs: A.Expr,
                         what: str) -> A.Expr:
        """§6.5.16.1p1 constraints; wraps the rhs in an "assign"
        conversion to the target type."""
        tt = to.ty
        rt = rhs.ty.ty
        ok = False
        if is_arithmetic(tt) and is_arithmetic(rt):
            ok = True
        elif isinstance(tt, Pointer) and isinstance(rt, Pointer):
            a, b = tt.to.ty, rt.to.ty
            ok = (_compatible(a, b) or isinstance(a, Void)
                  or isinstance(b, Void))
        elif isinstance(tt, Pointer) and _is_null_const(rhs):
            ok = True
        elif isinstance(tt, Integer) and tt.kind is IntKind.BOOL and \
                isinstance(rt, Pointer):
            ok = True
        elif isinstance(tt, (StructRef, UnionRef)) and tt == rt:
            ok = True
        if not ok:
            raise self.error(
                f"{what}: incompatible types ({rhs.ty} -> {to})",
                rhs.loc, iso="6.5.16.1p1")
        conv = A.EConv("assign", to.unqualified(), rhs, loc=rhs.loc)
        conv.ty = conv.to
        return conv

    # -- initialisers ----------------------------------------------------------------------

    def check_init(self, qty: QualType, init: A.Init) -> None:
        if isinstance(init, A.InitScalar):
            init.expr = self.rvalue(self.expr(init.expr))
            init.expr = self.check_assignable(qty, init.expr,
                                              "initialisation")
            return
        if isinstance(init, A.InitString):
            return
        if isinstance(init, A.InitArray):
            assert isinstance(qty.ty, Array)
            for _, sub in init.elems:
                self.check_init(qty.ty.of, sub)
            return
        if isinstance(init, A.InitStruct):
            assert isinstance(qty.ty, StructRef)
            defn = self.tags.require(qty.ty.tag)
            for name, sub in init.members:
                member = defn.member(name)
                assert member is not None
                self.check_init(member.qty, sub)
            return
        if isinstance(init, A.InitUnion):
            assert isinstance(qty.ty, UnionRef)
            defn = self.tags.require(qty.ty.tag)
            member = defn.member(init.member)
            assert member is not None
            self.check_init(member.qty, init.init)
            return
        raise self.error(f"unhandled init {type(init).__name__}", init.loc,
                         iso="6.7.9")

    # -- statements -------------------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.SBlock):
            for item in s.items:
                self.stmt(item)
        elif isinstance(s, A.SDecl):
            self.env[s.sym] = s.qty
            if s.init is not None:
                self.check_init(s.qty, s.init)
        elif isinstance(s, A.SExpr):
            if s.expr is not None:
                s.expr = self.rvalue(self.expr(s.expr))
        elif isinstance(s, A.SIf):
            s.cond = self.rvalue(self.expr(s.cond))
            self._require_scalar(s.cond, "if condition", "6.8.4.1p1")
            self.stmt(s.then)
            if s.els is not None:
                self.stmt(s.els)
        elif isinstance(s, A.SWhile):
            s.cond = self.rvalue(self.expr(s.cond))
            self._require_scalar(s.cond, "loop condition", "6.8.5p2")
            if s.step is not None:
                s.step = self.rvalue(self.expr(s.step))
            self.stmt(s.body)
        elif isinstance(s, A.SSwitch):
            s.cond = self.rvalue(self.expr(s.cond))
            if not is_integer(s.cond.ty.ty):
                raise self.error("switch condition is not an integer",
                                 s.loc, iso="6.8.4.2p1")
            self.stmt(s.body)
        elif isinstance(s, A.SLabel):
            self.stmt(s.body)
        elif isinstance(s, A.SReturn):
            assert self._current_ret is not None
            if s.expr is not None:
                if isinstance(self._current_ret.ty, Void):
                    raise self.error("return with value in void function",
                                     s.loc, iso="6.8.6.4p1")
                s.expr = self.rvalue(self.expr(s.expr))
                s.expr = self.check_assignable(self._current_ret, s.expr,
                                               "return")
            elif not isinstance(self._current_ret.ty, Void):
                raise self.error("return without value in non-void "
                                 "function", s.loc, iso="6.8.6.4p1")
        elif isinstance(s, (A.SGoto, A.SBreak, A.SContinue,
                            A.SCaseMarker)):
            pass
        elif isinstance(s, A.SPar):
            for b in s.branches:
                self.stmt(b)
        else:
            raise self.error(f"unhandled statement {type(s).__name__}",
                             s.loc, iso="6.8")

    def _require_scalar(self, e: A.Expr, what: str, iso: str) -> None:
        if not is_scalar(e.ty.ty):
            raise self.error(f"{what} is not scalar", e.loc, iso=iso)


def _is_null_const(e: A.Expr) -> bool:
    """A null pointer constant (§6.3.2.3p3): integer constant 0, possibly
    cast to void*."""
    if isinstance(e, A.EConstInt) and e.value == 0:
        return True
    if isinstance(e, A.ECast) and isinstance(e.to.ty, Pointer) and \
            isinstance(e.to.ty.to.ty, Void):
        return _is_null_const(e.operand)
    if isinstance(e, A.EConv):
        return _is_null_const(e.operand)
    return False


def _compatible(a: CType, b: CType) -> bool:
    """Type compatibility (§6.2.7), structurally and ignoring top quals."""
    if isinstance(a, Pointer) and isinstance(b, Pointer):
        return _compatible(a.to.ty, b.to.ty)
    if isinstance(a, Array) and isinstance(b, Array):
        return _compatible(a.of.ty, b.of.ty) and \
            (a.size is None or b.size is None or a.size == b.size)
    if isinstance(a, Function) and isinstance(b, Function):
        if a.no_proto or b.no_proto:
            return _compatible(a.ret.ty, b.ret.ty)
        return (_compatible(a.ret.ty, b.ret.ty)
                and len(a.params) == len(b.params)
                and a.variadic == b.variadic
                and all(_compatible(pa.ty, pb.ty)
                        for pa, pb in zip(a.params, b.params)))
    return a == b


def typecheck(program: A.Program, impl: Implementation) -> A.Program:
    """Type-check an Ail program in place, producing Typed Ail."""
    return TypeChecker(program, impl).run()
