"""The Ail type checker, producing Typed Ail (paper §5.1)."""

from .typecheck import TypeChecker, typecheck

__all__ = ["TypeChecker", "typecheck"]
