"""A typedef-aware recursive-descent parser for C11, producing Cabs.

Follows the grammar of ISO C11 §6.5 (expressions), §6.7 (declarations),
§6.8 (statements) and §6.9 (external definitions). As in Cerberus, it is
a clean-slate parser: no CIL or compiler front end is involved, so no
semantic choices are smuggled in by a pre-existing AST (paper §1).

The classic declaration/expression ambiguity is resolved the standard way:
the parser tracks typedef names in lexical scopes and classifies an
identifier token as a type name when it is visible as a typedef.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

from ..cabs import ast as C
from ..errors import ParseError
from ..lex.tokens import KEYWORDS, Token, TokenKind
from ..source import Loc

_TYPE_SPEC_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "_Bool", "_Complex", "struct", "union", "enum", "_Atomic",
})
_STORAGE_KEYWORDS = frozenset({
    "typedef", "extern", "static", "auto", "register", "_Thread_local",
})
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile", "restrict"})
_FUNCTION_SPEC_KEYWORDS = frozenset({"inline", "_Noreturn"})

_ASSIGN_OPS = frozenset({
    "=", "*=", "/=", "%=", "+=", "-=", "<<=", ">>=", "&=", "^=", "|=",
})

# Binary operator precedence (higher binds tighter), §6.5.5-6.5.14.
_BINOP_PREC = {
    "*": 10, "/": 10, "%": 10,
    "+": 9, "-": 9,
    "<<": 8, ">>": 8,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "==": 6, "!=": 6,
    "&": 5, "^": 4, "|": 3,
    "&&": 2, "||": 1,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        # Keywords were just IDENTs to the preprocessor; classify now
        # (translation phase 7).
        self.toks: List[Token] = []
        for t in tokens:
            if t.kind is TokenKind.IDENT and t.text in KEYWORDS:
                t = Token(TokenKind.KEYWORD, t.text, t.loc)
            self.toks.append(t)
        self.i = 0
        self.typedef_scopes: List[Set[str]] = [set()]
        # Names declared as ordinary identifiers, to let a shadowing
        # variable hide an outer typedef (e.g. `typedef int T; { int T; }`).
        self.ordinary_scopes: List[Set[str]] = [set()]

    # ---- token helpers -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        j = min(self.i + ahead, len(self.toks) - 1)
        return self.toks[j]

    def next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    def error(self, message: str, tok: Optional[Token] = None,
              iso: str = "6") -> ParseError:
        tok = tok or self.peek()
        return ParseError(f"{message} (found {tok.text!r})", tok.loc,
                          iso=iso)

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(text):
            raise self.error(f"expected '{text}'")
        return self.next()

    def accept_punct(self, text: str) -> Optional[Token]:
        if self.peek().is_punct(text):
            return self.next()
        return None

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise self.error("expected identifier")
        return self.next()

    # ---- typedef scoping -----------------------------------------------------

    def push_scope(self) -> None:
        self.typedef_scopes.append(set())
        self.ordinary_scopes.append(set())

    def pop_scope(self) -> None:
        self.typedef_scopes.pop()
        self.ordinary_scopes.pop()

    def declare(self, name: Optional[str], is_typedef: bool) -> None:
        if name is None:
            return
        if is_typedef:
            self.typedef_scopes[-1].add(name)
            self.ordinary_scopes[-1].discard(name)
        else:
            self.ordinary_scopes[-1].add(name)
            self.typedef_scopes[-1].discard(name)

    def is_typedef_name(self, name: str) -> bool:
        for tds, ords in zip(reversed(self.typedef_scopes),
                             reversed(self.ordinary_scopes)):
            if name in ords:
                return False
            if name in tds:
                return True
        return False

    def starts_type(self, tok: Token) -> bool:
        if tok.kind is TokenKind.KEYWORD and (
                tok.text in _TYPE_SPEC_KEYWORDS
                or tok.text in _QUALIFIER_KEYWORDS
                or tok.text in ("_Alignas",)):
            return True
        return tok.kind is TokenKind.IDENT and self.is_typedef_name(tok.text)

    def starts_declaration(self, tok: Token) -> bool:
        if tok.kind is TokenKind.KEYWORD and (
                tok.text in _STORAGE_KEYWORDS
                or tok.text in _FUNCTION_SPEC_KEYWORDS
                or tok.text == "_Static_assert"):
            return True
        return self.starts_type(tok)

    # ---- translation unit ------------------------------------------------------

    def parse_translation_unit(self) -> C.TranslationUnit:
        unit = C.TranslationUnit()
        while not self.at_eof():
            unit.decls.append(self.parse_external_declaration())
        return unit

    def parse_external_declaration(
            self) -> Union[C.Declaration, C.FunctionDef, C.StaticAssert]:
        if self.peek().is_keyword("_Static_assert"):
            return self.parse_static_assert()
        loc = self.peek().loc
        specs = self.parse_decl_specs()
        if self.accept_punct(";"):
            return C.Declaration(specs, [], loc)
        decl = self.parse_declarator()
        # Function definition: declarator is a function and next is '{'.
        if self.peek().is_punct("{") and _declares_function(decl):
            name = _declarator_name(decl)
            self.declare(name, is_typedef=False)
            self.push_scope()
            for p in _function_params(decl):
                if p.declarator is not None:
                    self.declare(_declarator_name(p.declarator), False)
            body = self.parse_compound_statement(push=False)
            self.pop_scope()
            return C.FunctionDef(specs, decl, body, loc)
        is_typedef = "typedef" in specs.storage
        declarators = [self.parse_init_declarator_tail(decl, is_typedef)]
        while self.accept_punct(","):
            d = self.parse_declarator()
            declarators.append(self.parse_init_declarator_tail(d, is_typedef))
        self.expect_punct(";")
        return C.Declaration(specs, declarators, loc)

    def parse_init_declarator_tail(self, decl: C.Declarator,
                                   is_typedef: bool) -> C.InitDeclarator:
        name = _declarator_name(decl)
        self.declare(name, is_typedef)
        init: Optional[C.Initializer] = None
        if self.accept_punct("="):
            init = self.parse_initializer()
        return C.InitDeclarator(decl, init, decl.loc)

    def parse_static_assert(self) -> C.StaticAssert:
        loc = self.next().loc  # _Static_assert
        self.expect_punct("(")
        cond = self.parse_conditional()
        message = None
        if self.accept_punct(","):
            tok = self.peek()
            if tok.kind is not TokenKind.STRING:
                raise self.error("expected string literal in _Static_assert",
                                 iso="6.7.10")
            self.next()
            message = tok.value.decode() if isinstance(tok.value, bytes) \
                else tok.text
        self.expect_punct(")")
        self.expect_punct(";")
        return C.StaticAssert(cond, message, loc)

    # ---- declaration specifiers -------------------------------------------------

    def parse_decl_specs(self) -> C.DeclSpecs:
        specs = C.DeclSpecs(loc=self.peek().loc)
        saw_type_spec = False
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.KEYWORD:
                kw = tok.text
                if kw in _STORAGE_KEYWORDS:
                    specs.storage.append(self.next().text)
                    continue
                if kw in _QUALIFIER_KEYWORDS:
                    specs.qualifiers.append(self.next().text)
                    continue
                if kw in _FUNCTION_SPEC_KEYWORDS:
                    specs.functions.append(self.next().text)
                    continue
                if kw == "_Alignas":
                    self.next()
                    self.expect_punct("(")
                    if self.starts_type(self.peek()):
                        specs.alignment.append(self.parse_type_name())
                    else:
                        specs.alignment.append(self.parse_conditional())
                    self.expect_punct(")")
                    continue
                if kw in ("struct", "union"):
                    specs.type_specs.append(self.parse_struct_or_union())
                    saw_type_spec = True
                    continue
                if kw == "enum":
                    specs.type_specs.append(self.parse_enum())
                    saw_type_spec = True
                    continue
                if kw == "_Atomic":
                    # _Atomic(type) specifier vs _Atomic qualifier.
                    if self.peek(1).is_punct("("):
                        loc = self.next().loc
                        self.expect_punct("(")
                        tn = self.parse_type_name()
                        self.expect_punct(")")
                        specs.type_specs.append(C.TSAtomic(tn, loc=loc))
                        saw_type_spec = True
                    else:
                        specs.qualifiers.append(self.next().text)
                    continue
                if kw in _TYPE_SPEC_KEYWORDS:
                    specs.type_specs.append(
                        C.TSKeyword(self.next().text, loc=tok.loc))
                    saw_type_spec = True
                    continue
                break
            if (tok.kind is TokenKind.IDENT and not saw_type_spec
                    and self.is_typedef_name(tok.text)):
                specs.type_specs.append(
                    C.TSTypedefName(self.next().text, loc=tok.loc))
                saw_type_spec = True
                continue
            break
        if not specs.type_specs and not specs.storage and \
                not specs.qualifiers and not specs.functions and \
                not specs.alignment:
            raise self.error("expected declaration specifiers", iso="6.7")
        return specs

    def parse_struct_or_union(self) -> C.TSStructOrUnion:
        tok = self.next()
        is_union = tok.text == "union"
        tag: Optional[str] = None
        if self.peek().kind is TokenKind.IDENT:
            tag = self.next().text
        members: Optional[List[C.StructDeclaration]] = None
        if self.accept_punct("{"):
            members = []
            while not self.peek().is_punct("}"):
                if self.peek().is_keyword("_Static_assert"):
                    self.parse_static_assert()  # checked later; keep simple
                    continue
                members.append(self.parse_struct_declaration())
            self.expect_punct("}")
        if tag is None and members is None:
            raise self.error("struct/union with neither tag nor members",
                             tok, iso="6.7.2.1")
        return C.TSStructOrUnion(is_union, tag, members, loc=tok.loc)

    def parse_struct_declaration(self) -> C.StructDeclaration:
        loc = self.peek().loc
        specs = self.parse_decl_specs()
        declarators: List[Tuple[Optional[C.Declarator],
                                Optional[C.Expr]]] = []
        if not self.peek().is_punct(";"):
            while True:
                decl: Optional[C.Declarator] = None
                width: Optional[C.Expr] = None
                if not self.peek().is_punct(":"):
                    decl = self.parse_declarator()
                if self.accept_punct(":"):
                    width = self.parse_conditional()
                declarators.append((decl, width))
                if not self.accept_punct(","):
                    break
        self.expect_punct(";")
        return C.StructDeclaration(specs, declarators, loc)

    def parse_enum(self) -> C.TSEnum:
        tok = self.next()
        tag: Optional[str] = None
        if self.peek().kind is TokenKind.IDENT:
            tag = self.next().text
        enumerators: Optional[List[Tuple[str, Optional[C.Expr]]]] = None
        if self.accept_punct("{"):
            enumerators = []
            while True:
                name_tok = self.expect_ident()
                value: Optional[C.Expr] = None
                if self.accept_punct("="):
                    value = self.parse_conditional()
                enumerators.append((name_tok.text, value))
                self.declare(name_tok.text, is_typedef=False)
                if not self.accept_punct(","):
                    break
                if self.peek().is_punct("}"):
                    break  # trailing comma
            self.expect_punct("}")
        if tag is None and enumerators is None:
            raise self.error("enum with neither tag nor enumerators", tok,
                             iso="6.7.2.2")
        return C.TSEnum(tag, enumerators, loc=tok.loc)

    # ---- declarators -----------------------------------------------------------

    def parse_declarator(self, abstract: bool = False) -> C.Declarator:
        tok = self.peek()
        if tok.is_punct("*"):
            self.next()
            quals: List[str] = []
            while self.peek().is_keyword("const", "volatile", "restrict",
                                         "_Atomic"):
                quals.append(self.next().text)
            inner = self.parse_declarator(abstract)
            return C.DPointer(quals, inner, loc=tok.loc)
        return self.parse_direct_declarator(abstract)

    def parse_direct_declarator(self, abstract: bool) -> C.Declarator:
        tok = self.peek()
        base: C.Declarator
        if tok.kind is TokenKind.IDENT and not abstract:
            self.next()
            base = C.DIdent(tok.text, loc=tok.loc)
        elif tok.is_punct("(") and self._paren_is_declarator(abstract):
            self.next()
            base = self.parse_declarator(abstract)
            self.expect_punct(")")
        else:
            base = C.DIdent(None, loc=tok.loc)
        return self.parse_declarator_suffixes(base)

    def _paren_is_declarator(self, abstract: bool) -> bool:
        """Disambiguate `(` in a (possibly abstract) declarator: it opens a
        nested declarator unless it starts a parameter list."""
        nxt = self.peek(1)
        if nxt.is_punct(")"):
            return False  # `()` is an empty parameter list
        if self.starts_declaration(nxt):
            return False  # parameter list
        if not abstract:
            return True
        return nxt.is_punct("*", "(", "[")

    def parse_declarator_suffixes(self, base: C.Declarator) -> C.Declarator:
        while True:
            tok = self.peek()
            if tok.is_punct("["):
                self.next()
                quals: List[str] = []
                is_static = False
                while self.peek().is_keyword("const", "volatile", "restrict",
                                             "static"):
                    t = self.next().text
                    if t == "static":
                        is_static = True
                    else:
                        quals.append(t)
                if self.accept_punct("*"):
                    self.expect_punct("]")
                    base = C.DArray(base, None, quals, is_static,
                                    is_star=True, loc=tok.loc)
                    continue
                size: Optional[C.Expr] = None
                if not self.peek().is_punct("]"):
                    size = self.parse_assignment()
                self.expect_punct("]")
                base = C.DArray(base, size, quals, is_static, loc=tok.loc)
            elif tok.is_punct("("):
                self.next()
                params, variadic, ident_list = self.parse_param_list()
                base = C.DFunction(base, params, variadic, ident_list,
                                   loc=tok.loc)
            else:
                return base

    def parse_param_list(
            self) -> Tuple[List[C.ParamDecl], bool, Optional[List[str]]]:
        if self.accept_punct(")"):
            return [], False, []  # () — no prototype
        # K&R identifier list? (ident, ident, ...) where idents aren't types.
        if (self.peek().kind is TokenKind.IDENT
                and not self.is_typedef_name(self.peek().text)):
            idents = [self.next().text]
            while self.accept_punct(","):
                idents.append(self.expect_ident().text)
            self.expect_punct(")")
            return [], False, idents
        params: List[C.ParamDecl] = []
        variadic = False
        self.push_scope()
        while True:
            if self.accept_punct("..."):
                variadic = True
                break
            loc = self.peek().loc
            specs = self.parse_decl_specs()
            decl: Optional[C.Declarator] = None
            if not (self.peek().is_punct(",") or self.peek().is_punct(")")):
                decl = self.parse_declarator_maybe_abstract()
                self.declare(_declarator_name(decl), is_typedef=False)
            params.append(C.ParamDecl(specs, decl, loc))
            if not self.accept_punct(","):
                break
        self.pop_scope()
        self.expect_punct(")")
        return params, variadic, None

    def parse_declarator_maybe_abstract(self) -> C.Declarator:
        """Parameter declarators may be concrete or abstract; we parse
        permissively (the grammar union), since Cabs records both the
        same way."""
        return self.parse_declarator(abstract=True) \
            if self._looks_abstract() else self.parse_declarator()

    def _looks_abstract(self) -> bool:
        """Peek whether the upcoming declarator has no identifier."""
        depth = 0
        j = self.i
        while j < len(self.toks):
            tok = self.toks[j]
            if tok.kind is TokenKind.IDENT:
                return self.is_typedef_name(tok.text)
            if tok.is_punct("*") or tok.kind is TokenKind.KEYWORD:
                j += 1
                continue
            if tok.is_punct("("):
                depth += 1
                j += 1
                continue
            if tok.is_punct("["):
                return True
            if tok.is_punct(")") or tok.is_punct(","):
                return True
            return True
        return True

    def parse_type_name(self) -> C.TypeName:
        loc = self.peek().loc
        specs = self.parse_decl_specs()
        decl: Optional[C.Declarator] = None
        if not (self.peek().is_punct(")") or self.peek().is_punct(",")):
            decl = self.parse_declarator(abstract=True)
        return C.TypeName(specs, decl, loc)

    # ---- initializers -----------------------------------------------------------

    def parse_initializer(self) -> C.Initializer:
        tok = self.peek()
        if tok.is_punct("{"):
            return self.parse_initializer_list()
        return C.InitExpr(self.parse_assignment(), loc=tok.loc)

    def parse_initializer_list(self) -> C.InitList:
        loc = self.expect_punct("{").loc
        items: List[Tuple[List[C.Designator], C.Initializer]] = []
        while not self.peek().is_punct("}"):
            designators: List[C.Designator] = []
            while True:
                tok = self.peek()
                if tok.is_punct("."):
                    self.next()
                    name = self.expect_ident().text
                    designators.append(C.DesignMember(name, loc=tok.loc))
                elif tok.is_punct("["):
                    self.next()
                    idx = self.parse_conditional()
                    self.expect_punct("]")
                    designators.append(C.DesignIndex(idx, loc=tok.loc))
                else:
                    break
            if designators:
                self.expect_punct("=")
            items.append((designators, self.parse_initializer()))
            if not self.accept_punct(","):
                break
        self.expect_punct("}")
        return C.InitList(items, loc=loc)

    # ---- statements ---------------------------------------------------------------

    def parse_compound_statement(self, push: bool = True) -> C.SCompound:
        loc = self.expect_punct("{").loc
        if push:
            self.push_scope()
        items: List[Union[C.Declaration, C.Stmt, C.StaticAssert]] = []
        while not self.peek().is_punct("}"):
            if self.at_eof():
                raise self.error("unterminated compound statement",
                                 iso="6.8.2")
            items.append(self.parse_block_item())
        self.expect_punct("}")
        if push:
            self.pop_scope()
        return C.SCompound(items, loc=loc)

    def parse_block_item(self) -> Union[C.Declaration, C.Stmt,
                                        C.StaticAssert]:
        tok = self.peek()
        if tok.is_keyword("_Static_assert"):
            return self.parse_static_assert()
        if self.starts_declaration(tok):
            # `T;` `T x;` etc. But beware `x:` labels — identifiers
            # followed by ':' are labels even if typedef'd.
            if not (tok.kind is TokenKind.IDENT
                    and self.peek(1).is_punct(":")):
                return self.parse_declaration()
        return self.parse_statement()

    def parse_declaration(self) -> C.Declaration:
        loc = self.peek().loc
        specs = self.parse_decl_specs()
        declarators: List[C.InitDeclarator] = []
        is_typedef = "typedef" in specs.storage
        if not self.peek().is_punct(";"):
            while True:
                d = self.parse_declarator()
                declarators.append(
                    self.parse_init_declarator_tail(d, is_typedef))
                if not self.accept_punct(","):
                    break
        self.expect_punct(";")
        return C.Declaration(specs, declarators, loc)

    def parse_statement(self) -> C.Stmt:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT and self.peek(1).is_punct(":"):
            self.next()
            self.next()
            body = self.parse_statement()
            return C.SLabeled(tok.text, body, loc=tok.loc)
        if tok.is_keyword("case"):
            self.next()
            expr = self.parse_conditional()
            self.expect_punct(":")
            return C.SCase(expr, self.parse_statement(), loc=tok.loc)
        if tok.is_keyword("default"):
            self.next()
            self.expect_punct(":")
            return C.SDefault(self.parse_statement(), loc=tok.loc)
        if tok.is_punct("{"):
            return self.parse_compound_statement()
        if tok.is_punct(";"):
            self.next()
            return C.SExpr(None, loc=tok.loc)
        if tok.is_keyword("if"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            then = self.parse_statement()
            els: Optional[C.Stmt] = None
            if self.peek().is_keyword("else"):
                self.next()
                els = self.parse_statement()
            return C.SIf(cond, then, els, loc=tok.loc)
        if tok.is_keyword("switch"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            return C.SSwitch(cond, self.parse_statement(), loc=tok.loc)
        if tok.is_keyword("while"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            return C.SWhile(cond, self.parse_statement(), loc=tok.loc)
        if tok.is_keyword("do"):
            self.next()
            body = self.parse_statement()
            if not self.peek().is_keyword("while"):
                raise self.error("expected 'while' after do-body",
                                 iso="6.8.5")
            self.next()
            self.expect_punct("(")
            cond = self.parse_expression()
            self.expect_punct(")")
            self.expect_punct(";")
            return C.SDoWhile(body, cond, loc=tok.loc)
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("goto"):
            self.next()
            label = self.expect_ident().text
            self.expect_punct(";")
            return C.SGoto(label, loc=tok.loc)
        if tok.is_keyword("continue"):
            self.next()
            self.expect_punct(";")
            return C.SContinue(loc=tok.loc)
        if tok.is_keyword("break"):
            self.next()
            self.expect_punct(";")
            return C.SBreak(loc=tok.loc)
        if tok.is_keyword("return"):
            self.next()
            expr: Optional[C.Expr] = None
            if not self.peek().is_punct(";"):
                expr = self.parse_expression()
            self.expect_punct(";")
            return C.SReturn(expr, loc=tok.loc)
        expr = self.parse_expression()
        self.expect_punct(";")
        return C.SExpr(expr, loc=tok.loc)

    def parse_for(self) -> C.SFor:
        loc = self.next().loc  # for
        self.expect_punct("(")
        self.push_scope()
        init: Optional[Union[C.Declaration, C.Expr]] = None
        if self.accept_punct(";"):
            pass
        elif self.starts_declaration(self.peek()):
            init = self.parse_declaration()
        else:
            init = self.parse_expression()
            self.expect_punct(";")
        cond: Optional[C.Expr] = None
        if not self.peek().is_punct(";"):
            cond = self.parse_expression()
        self.expect_punct(";")
        step: Optional[C.Expr] = None
        if not self.peek().is_punct(")"):
            step = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        self.pop_scope()
        return C.SFor(init, cond, step, body, loc=loc)

    # ---- expressions -----------------------------------------------------------

    def parse_expression(self) -> C.Expr:
        expr = self.parse_assignment()
        while self.peek().is_punct(","):
            loc = self.next().loc
            rhs = self.parse_assignment()
            expr = C.EComma(expr, rhs, loc=loc)
        return expr

    def parse_assignment(self) -> C.Expr:
        lhs = self.parse_conditional()
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            return C.EAssign(tok.text, lhs, rhs, loc=tok.loc)
        return lhs

    def parse_conditional(self) -> C.Expr:
        cond = self.parse_binary(1)
        tok = self.peek()
        if tok.is_punct("?"):
            self.next()
            then = self.parse_expression()
            self.expect_punct(":")
            els = self.parse_conditional()
            return C.EConditional(cond, then, els, loc=tok.loc)
        return cond

    def parse_binary(self, min_prec: int) -> C.Expr:
        lhs = self.parse_cast_expression()
        while True:
            tok = self.peek()
            prec = _BINOP_PREC.get(tok.text) \
                if tok.kind is TokenKind.PUNCT else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            lhs = C.EBinary(tok.text, lhs, rhs, loc=tok.loc)

    def parse_cast_expression(self) -> C.Expr:
        tok = self.peek()
        if tok.is_punct("(") and self.starts_type(self.peek(1)):
            self.next()
            tn = self.parse_type_name()
            self.expect_punct(")")
            if self.peek().is_punct("{"):
                init = self.parse_initializer_list()
                lit = C.ECompoundLiteral(tn, init, loc=tok.loc)
                return self.parse_postfix_suffixes(lit)
            operand = self.parse_cast_expression()
            return C.ECast(tn, operand, loc=tok.loc)
        return self.parse_unary()

    def parse_unary(self) -> C.Expr:
        tok = self.peek()
        if tok.is_punct("++") or tok.is_punct("--"):
            self.next()
            operand = self.parse_unary()
            return C.EPreIncr(operand, tok.text, loc=tok.loc)
        if tok.kind is TokenKind.PUNCT and tok.text in "&*+-~!":
            self.next()
            operand = self.parse_cast_expression()
            return C.EUnary(tok.text, operand, loc=tok.loc)
        if tok.is_keyword("sizeof"):
            self.next()
            if self.peek().is_punct("(") and self.starts_type(self.peek(1)):
                self.next()
                tn = self.parse_type_name()
                self.expect_punct(")")
                return C.ESizeofType(tn, loc=tok.loc)
            return C.ESizeofExpr(self.parse_unary(), loc=tok.loc)
        if tok.is_keyword("_Alignof"):
            self.next()
            self.expect_punct("(")
            tn = self.parse_type_name()
            self.expect_punct(")")
            return C.EAlignofType(tn, loc=tok.loc)
        return self.parse_postfix()

    def parse_postfix(self) -> C.Expr:
        return self.parse_postfix_suffixes(self.parse_primary())

    def parse_postfix_suffixes(self, expr: C.Expr) -> C.Expr:
        while True:
            tok = self.peek()
            if tok.is_punct("["):
                self.next()
                idx = self.parse_expression()
                self.expect_punct("]")
                expr = C.EIndex(expr, idx, loc=tok.loc)
            elif tok.is_punct("("):
                self.next()
                args: List[C.Expr] = []
                if not self.peek().is_punct(")"):
                    args.append(self.parse_assignment())
                    while self.accept_punct(","):
                        args.append(self.parse_assignment())
                self.expect_punct(")")
                expr = C.ECall(expr, args, loc=tok.loc)
            elif tok.is_punct(".") or tok.is_punct("->"):
                self.next()
                member = self.expect_ident().text
                expr = C.EMember(expr, member, tok.text == "->",
                                 loc=tok.loc)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self.next()
                expr = C.EPostIncr(expr, tok.text, loc=tok.loc)
            else:
                return expr

    def parse_primary(self) -> C.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            self.next()
            if tok.text == "__cerberus_offsetof" and self.peek().is_punct(
                    "("):
                self.next()
                tn = self.parse_type_name()
                self.expect_punct(",")
                member = self.expect_ident().text
                self.expect_punct(")")
                return C.EOffsetof(tn, member, loc=tok.loc)
            return C.EIdent(tok.text, loc=tok.loc)
        if tok.kind is TokenKind.NUMBER:
            self.next()
            return _parse_number(tok)
        if tok.kind is TokenKind.CHAR_CONST:
            self.next()
            return C.ECharConst(tok.text, int(tok.value),
                                tok.text.startswith("L"), loc=tok.loc)
        if tok.kind is TokenKind.STRING:
            # Phase 6: concatenate adjacent string literals.
            parts: List[bytes] = []
            wide = False
            text_parts: List[str] = []
            while self.peek().kind is TokenKind.STRING:
                t = self.next()
                parts.append(t.value if isinstance(t.value, bytes) else b"")
                text_parts.append(t.text)
                wide = wide or t.text.startswith(("L", "u", "U"))
            return C.EStringLit(" ".join(text_parts), b"".join(parts), wide,
                                loc=tok.loc)
        if tok.is_punct("("):
            self.next()
            inner = self.parse_expression()
            self.expect_punct(")")
            return C.EParen(inner, loc=tok.loc)
        if tok.is_keyword("_Generic"):
            return self.parse_generic()
        raise self.error("expected expression", iso="6.5.1")

    def parse_generic(self) -> C.EGeneric:
        loc = self.next().loc
        self.expect_punct("(")
        control = self.parse_assignment()
        assocs: List[Tuple[Optional[C.TypeName], C.Expr]] = []
        while self.accept_punct(","):
            if self.peek().is_keyword("default"):
                self.next()
                self.expect_punct(":")
                assocs.append((None, self.parse_assignment()))
            else:
                tn = self.parse_type_name()
                self.expect_punct(":")
                assocs.append((tn, self.parse_assignment()))
        self.expect_punct(")")
        return C.EGeneric(control, assocs, loc=loc)


# ---- helpers over declarators ------------------------------------------------

def _declarator_name(decl: C.Declarator) -> Optional[str]:
    while True:
        if isinstance(decl, C.DIdent):
            return decl.name
        if isinstance(decl, (C.DPointer, C.DArray, C.DFunction)):
            decl = decl.inner
        else:
            return None


def _declares_function(decl: C.Declarator) -> bool:
    """True when the outermost derivation applied to the identifier is a
    function — i.e. this is a function declarator."""
    # Walk inwards; the declarator declares a function iff we reach a
    # DFunction whose inner chain is only DIdent (possibly via parens).
    while isinstance(decl, C.DPointer):
        # `T *f(...)` — pointer applies to the return type; keep walking.
        decl = decl.inner
    if isinstance(decl, C.DFunction):
        inner = decl.inner
        while isinstance(inner, C.DIdent):
            return True
        return isinstance(inner, C.DIdent)
    return False


def _function_params(decl: C.Declarator) -> List[C.ParamDecl]:
    while not isinstance(decl, C.DIdent):
        if isinstance(decl, C.DFunction):
            return decl.params
        decl = decl.inner  # type: ignore[attr-defined]
    return []


def _parse_number(tok: Token) -> C.Expr:
    """Classify a pp-number as an integer or floating constant
    (§6.4.4.1, §6.4.4.2)."""
    text = tok.text
    lowered = text.lower()
    is_float = False
    if lowered.startswith("0x"):
        if "p" in lowered:
            is_float = True
        elif "." in lowered:
            is_float = True
    else:
        if "." in lowered or (("e" in lowered) and not
                              lowered.startswith("0x")):
            is_float = True
    if is_float:
        body = text
        suffix = ""
        if body[-1] in "fFlL":
            suffix = body[-1].lower()
            body = body[:-1]
        try:
            value = float.fromhex(body) if body.lower().startswith("0x") \
                else float(body)
        except ValueError:
            raise ParseError(f"bad floating constant '{text}'", tok.loc,
                             iso="6.4.4.2") from None
        return C.EFloatConst(text, value, suffix, loc=tok.loc)
    body = text
    suffix = ""
    while body and body[-1] in "uUlL":
        suffix = body[-1].lower() + suffix
        body = body[:-1]
    norm_suffix = suffix.replace("ll", "L")
    # normalise to one of "", u, l, ul, ll, ull
    has_u = "u" in norm_suffix
    has_ll = "L" in norm_suffix
    has_l = "l" in norm_suffix
    if has_ll:
        suffix = "ull" if has_u else "ll"
    elif has_l:
        suffix = "ul" if has_u else "l"
    else:
        suffix = "u" if has_u else ""
    try:
        if body.lower().startswith("0x"):
            value, base = int(body, 16), 16
        elif body.startswith("0") and len(body) > 1:
            value, base = int(body, 8), 8
        else:
            value, base = int(body, 10), 10
    except ValueError:
        raise ParseError(f"bad integer constant '{text}'", tok.loc,
                         iso="6.4.4.1") from None
    return C.EIntConst(text, value, base, suffix, loc=tok.loc)


def parse_tokens(tokens: List[Token]) -> C.TranslationUnit:
    return Parser(tokens).parse_translation_unit()


def parse_text(text: str, name: str = "<string>",
               predefined=None) -> C.TranslationUnit:
    """Preprocess and parse C source text into a Cabs translation unit."""
    from ..cpp.preprocessor import preprocess
    return parse_tokens(preprocess(text, name, predefined=predefined))
