"""The clean-slate C parser (ISO C11 §6.5-6.9), producing Cabs."""

from .parser import Parser, parse_tokens, parse_text

__all__ = ["Parser", "parse_tokens", "parse_text"]
